"""Setuptools shim.

Allows ``python setup.py develop`` in offline environments where the
``wheel`` package (needed by PEP 660 editable installs) is unavailable.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
