"""Tier-1 guard for the lane-packing benchmark subject.

Asserts the ISSUE's perf claim at smoke scale: on a 512-bit key,
packed FC matvec beats the unpacked engine path at batch >= 8 (the
advantage is ~batch-fold, so even a noisy CI box clears the bar), and
the packed decode is value-identical to the unpacked reference (the
bench itself raises otherwise).  Runs in tier-1 (it is not ``slow``)
and is ``smoke``-selectable alongside the other bench guards.
"""

import pytest

from repro.bench import run_packing_bench


@pytest.mark.smoke
@pytest.mark.timeout(120)
def test_packed_fc_beats_unpacked_at_batch_8():
    results = run_packing_bench(
        key_sizes=(512,), batch_sizes=(8,), fc_shape=(12, 12),
        seed=0, repeats=1, workers=0,
    )
    entry = results["key_sizes"]["512"]["batches"]["8"]
    assert not entry.get("skipped"), entry
    assert entry["decode_identical"]
    fc = entry["fc_matvec"]
    # ~8x in theory; require >2x so scheduler noise can't flake it.
    assert fc["speedup"] > 2.0, fc
    # the packed ciphertext count is batch-independent, so encrypt and
    # decrypt win too — a weaker sanity bound is enough here
    assert entry["decrypt"]["speedup"] > 1.0
