"""Tests for dataset persistence and plan serialization."""

import json

import numpy as np
import pytest

from repro.datasets import (
    load_dataset,
    load_saved_dataset,
    save_dataset,
)
from repro.errors import DatasetError, PlannerError
from repro.planner import (
    ClusterSpec,
    allocate_even,
    plan_from_dict,
)
from repro.planner.primitive import model_stages
from repro.nn import model_zoo


class TestDatasetIO:
    def test_round_trip(self, tmp_path):
        original = load_dataset("heart")
        path = tmp_path / "heart.npz"
        save_dataset(original, path)
        restored = load_saved_dataset(path)
        assert restored.name == original.name
        assert restored.num_classes == original.num_classes
        assert np.array_equal(restored.train_x, original.train_x)
        assert np.array_equal(restored.test_y, original.test_y)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no such"):
            load_saved_dataset(tmp_path / "nope.npz")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DatasetError):
            load_saved_dataset(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(DatasetError):
            load_saved_dataset(path)


class TestPlanSerialization:
    @pytest.fixture()
    def plan_and_stages(self):
        stages = model_stages(model_zoo.build_model("breast"))
        cluster = ClusterSpec.homogeneous(2, 1, 4)
        plan = allocate_even(stages, cluster).plan
        return plan, stages

    def test_round_trip(self, plan_and_stages):
        plan, stages = plan_and_stages
        state = plan.to_dict()
        # survives a real JSON round trip
        state = json.loads(json.dumps(state))
        restored = plan_from_dict(state, stages)
        assert restored.assignments == plan.assignments
        assert restored.use_tensor_partitioning == \
            plan.use_tensor_partitioning
        assert restored.cluster.total_cores == plan.cluster.total_cores

    def test_descriptions_included(self, plan_and_stages):
        plan, _ = plan_and_stages
        state = plan.to_dict()
        assert len(state["stage_descriptions"]) == len(plan.stages)
        assert "linear" in state["stage_descriptions"][0]

    def test_format_checked(self, plan_and_stages):
        _, stages = plan_and_stages
        with pytest.raises(PlannerError, match="repro-plan-v1"):
            plan_from_dict({"format": "something-else"}, stages)

    def test_stage_count_checked(self, plan_and_stages):
        plan, stages = plan_and_stages
        state = plan.to_dict()
        with pytest.raises(PlannerError, match="assignments"):
            plan_from_dict(state, stages[:-1])

    def test_restored_plan_revalidates(self, plan_and_stages):
        """Tampered thread counts are caught by Plan's Eq. 5-8 checks."""
        plan, stages = plan_and_stages
        state = plan.to_dict()
        state["assignments"][0]["threads"] = 10 ** 6
        with pytest.raises(Exception):
            plan_from_dict(state, stages)
