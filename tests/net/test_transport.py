"""Unit tests for the framed TCP transport: envelope codec,
malformed-frame rejection (including a corruption fuzz sweep), and the
Connection round-trip discipline."""

import json
import random
import socket
import struct
import threading

import pytest

from repro.errors import TransportError
from repro.net.transport import (
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HEARTBEAT_ACK,
    KIND_HELLO,
    KIND_RESULT,
    KIND_SHUTDOWN,
    KIND_TASK,
    KIND_WELCOME,
    MAGIC,
    VERSION,
    Connection,
    Envelope,
    dial,
    read_envelope,
    wait_for_port,
)
from repro.observability import Observability

_FRAME = struct.Struct(">4sBBII")
ALL_KINDS = (KIND_HELLO, KIND_WELCOME, KIND_TASK, KIND_RESULT,
             KIND_ERROR, KIND_HEARTBEAT, KIND_HEARTBEAT_ACK,
             KIND_SHUTDOWN)
LIMIT = 1 << 20


def _pipe():
    return socket.socketpair()


def _ship(blob: bytes):
    """Write raw bytes into a socket, close the writer, return reader."""
    writer, reader = _pipe()
    writer.sendall(blob)
    writer.close()
    return reader


class TestEnvelopeCodec:
    def test_round_trip_every_kind(self):
        for kind in ALL_KINDS:
            envelope = Envelope(kind, {"n": 3, "s": "x"}, b"payload")
            reader = _ship(envelope.encode(LIMIT))
            restored = read_envelope(reader, LIMIT)
            assert restored.kind == kind
            assert restored.header == {"n": 3, "s": "x"}
            assert restored.payload == b"payload"
            reader.close()

    def test_empty_header_and_payload(self):
        reader = _ship(Envelope(KIND_SHUTDOWN).encode(LIMIT))
        restored = read_envelope(reader, LIMIT)
        assert restored.header == {} and restored.payload == b""
        reader.close()

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(TransportError):
            Envelope("telepathy").encode(LIMIT)

    def test_encode_enforces_frame_limit(self):
        with pytest.raises(TransportError):
            Envelope(KIND_TASK, payload=b"x" * 64).encode(32)

    def test_two_frames_back_to_back(self):
        blob = (Envelope(KIND_TASK, {"i": 1}).encode(LIMIT)
                + Envelope(KIND_RESULT, {"i": 2}).encode(LIMIT))
        reader = _ship(blob)
        assert read_envelope(reader, LIMIT).header == {"i": 1}
        assert read_envelope(reader, LIMIT).header == {"i": 2}
        reader.close()


def _frame(magic=MAGIC, version=VERSION, kind_byte=3, header=b"{}",
           payload=b""):
    return (_FRAME.pack(magic, version, kind_byte, len(header),
                        len(payload)) + header + payload)


class TestMalformedFrames:
    def _reject(self, blob):
        reader = _ship(blob)
        with pytest.raises(TransportError):
            read_envelope(reader, LIMIT)
        reader.close()

    def test_bad_magic(self):
        self._reject(_frame(magic=b"HTTP"))

    def test_bad_version(self):
        self._reject(_frame(version=VERSION + 9))

    def test_unknown_kind_byte(self):
        self._reject(_frame(kind_byte=0))
        self._reject(_frame(kind_byte=200))

    def test_oversized_declared_length_rejected_before_alloc(self):
        # Declares a 512 MiB payload with no bytes behind it: the limit
        # check must fire on the declared size, not after allocation.
        blob = _FRAME.pack(MAGIC, VERSION, 3, 2, 512 * 1024 * 1024)
        self._reject(blob + b"{}")

    def test_truncated_header(self):
        self._reject(_frame(header=b'{"x": 1}')[:-4])

    def test_truncated_payload(self):
        self._reject(_frame(payload=b"abcdef")[:-3])

    def test_eof_mid_frame_header(self):
        self._reject(_frame()[:6])

    def test_header_not_json(self):
        self._reject(_frame(header=b"not json"))

    def test_header_not_a_dict(self):
        self._reject(_frame(header=b"[1, 2]"))

    def test_fuzz_corruption_never_garbage(self):
        """Randomly corrupted/truncated frames either still parse (the
        mutation hit the payload) or raise TransportError — never any
        other exception, never a hang (conftest timeout guard)."""
        rng = random.Random(20260806)
        base = Envelope(
            KIND_TASK, {"request_id": 5, "stage_index": 2},
            payload=bytes(rng.randrange(256) for _ in range(48)),
        ).encode(LIMIT)
        for _ in range(300):
            blob = bytearray(base)
            mode = rng.randrange(3)
            if mode == 0:  # flip a byte
                index = rng.randrange(len(blob))
                blob[index] ^= 1 << rng.randrange(8)
            elif mode == 1:  # truncate
                blob = blob[:rng.randrange(len(blob))]
            else:  # both
                index = rng.randrange(len(blob))
                blob[index] = rng.randrange(256)
                blob = blob[:rng.randrange(1, len(blob) + 1)]
            reader = _ship(bytes(blob))
            try:
                envelope = read_envelope(reader, LIMIT)
                assert envelope.kind in ALL_KINDS
                assert isinstance(envelope.header, dict)
            except TransportError:
                pass
            finally:
                reader.close()


class TestConnection:
    def _pair(self, obs=None):
        a, b = _pipe()
        return (Connection(a, LIMIT, obs=obs, peer="server"),
                Connection(b, LIMIT, peer="client"))

    def test_request_response(self):
        client, server = self._pair()
        def serve():
            envelope = server.recv(timeout=5)
            server.send(Envelope(
                KIND_HEARTBEAT_ACK,
                {"nonce": envelope.header["nonce"]},
            ))
        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        reply = client.request(Envelope(KIND_HEARTBEAT, {"nonce": 7}),
                               timeout=5)
        assert reply.kind == KIND_HEARTBEAT_ACK
        assert reply.header["nonce"] == 7
        thread.join(5)
        client.close()
        server.close()

    def test_byte_counters(self):
        obs = Observability(enabled=True)
        client, server = self._pair(obs=obs)
        def serve():
            server.recv(timeout=5)
            server.send(Envelope(KIND_WELCOME))
        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client.request(Envelope(KIND_HELLO, {"role": "model"}),
                       timeout=5)
        thread.join(5)
        sent = obs.registry.counter("net_bytes_sent", peer="server")
        received = obs.registry.counter("net_bytes_received",
                                        peer="server")
        assert sent.value >= _FRAME.size
        assert received.value >= _FRAME.size
        client.close()
        server.close()

    def test_recv_timeout_is_transport_error(self):
        client, server = self._pair()
        with pytest.raises(TransportError):
            client.recv(timeout=0.1)
        client.close()
        server.close()

    def test_close_wakes_blocked_recv(self):
        client, server = self._pair()
        failures = []
        def blocked():
            try:
                client.recv(timeout=30)
            except TransportError as exc:
                failures.append(exc)
        thread = threading.Thread(target=blocked, daemon=True)
        thread.start()
        client.close()
        thread.join(5)
        assert not thread.is_alive()
        assert failures
        server.close()

    def test_send_after_close_raises(self):
        client, server = self._pair()
        client.close()
        with pytest.raises(TransportError):
            client.send(Envelope(KIND_SHUTDOWN))
        server.close()

    def test_peer_disconnect_surfaces_as_transport_error(self):
        client, server = self._pair()
        server.close()
        with pytest.raises(TransportError):
            client.recv(timeout=5)
        client.close()


class TestDialing:
    def test_dial_and_wait_for_port(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        wait_for_port(host, port, deadline=5.0)
        connection = dial(host, port)
        assert not connection.closed
        connection.close()
        listener.close()

    def test_dial_refused(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        host, port = listener.getsockname()
        listener.close()  # bound then released: nothing listens here
        with pytest.raises(TransportError):
            dial(host, port, connect_timeout=0.5)

    def test_wait_for_port_gives_up(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        host, port = listener.getsockname()
        listener.close()
        with pytest.raises(TransportError):
            wait_for_port(host, port, deadline=0.3)

    def test_header_survives_json_round_trip(self):
        # Belt-and-braces: headers with unicode and nesting.
        header = {"msg": "café", "nested": {"a": [1, 2, 3]}}
        blob = Envelope(KIND_ERROR, header).encode(LIMIT)
        reader = _ship(blob)
        assert read_envelope(reader, LIMIT).header == \
            json.loads(json.dumps(header))
        reader.close()
