"""Chaos-injection tests: deterministic scripts, and the acceptance
criterion that transient connection drops heal via reconnect-with-
backoff *without* consuming the worker restart budget."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.net import (
    ChaosInjector,
    ChaosPlan,
    Coordinator,
    WorkerServer,
)
from repro.net.chaos import ChaosScript, ChaosStats
from repro.planner.plan import ClusterSpec
from repro.stream import RetryPolicy


class TestChaosPlan:
    def test_zero_rates_is_falsy_and_from_config_none(self):
        assert not ChaosPlan()
        assert ChaosPlan.from_config(RuntimeConfig(key_size=128)) is None

    def test_from_config_carries_knobs(self):
        config = RuntimeConfig(key_size=128, seed=9).with_chaos(
            drop_rate=0.25, delay_rate=0.5, delay_seconds=0.001
        )
        plan = ChaosPlan.from_config(config)
        assert plan is not None and plan
        assert plan.drop_rate == 0.25
        assert plan.delay_rate == 0.5
        assert plan.delay_seconds == 0.001

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(delay_seconds=-1.0)

    def test_config_chaos_enabled_property(self):
        config = RuntimeConfig(key_size=128)
        assert not config.chaos_enabled
        assert config.with_chaos(drop_rate=0.1).chaos_enabled


class TestChaosScriptDeterminism:
    def test_same_seed_same_schedule(self):
        plan = ChaosPlan(seed=42, drop_rate=0.3, delay_rate=0.3,
                         dup_heartbeat_rate=0.5, slow_read_rate=0.3)
        kinds = ["task", "heartbeat", "task", "task", "heartbeat"] * 8

        def schedule(index):
            script = ChaosScript(plan, index, ChaosStats())
            return ([script.send_verdict(kind) for kind in kinds],
                    [script.recv_verdict() for _ in range(20)])

        assert schedule(0) == schedule(0)
        assert schedule(3) == schedule(3)
        # Different connection index -> a different stream.
        assert schedule(0) != schedule(1)

    def test_handshake_kinds_exempt(self):
        plan = ChaosPlan(seed=1, drop_rate=1.0, delay_rate=1.0,
                         dup_heartbeat_rate=1.0)
        script = ChaosScript(plan, 0, ChaosStats())
        assert script.send_verdict("hello") == (False, False, False)
        assert script.send_verdict("welcome") == (False, False, False)
        # Non-exempt kinds do draw.
        assert script.send_verdict("task")[0] is True

    def test_dup_only_applies_to_heartbeats(self):
        plan = ChaosPlan(seed=1, dup_heartbeat_rate=1.0)
        script = ChaosScript(plan, 0, ChaosStats())
        assert script.send_verdict("task") == (False, False, False)
        assert script.send_verdict("heartbeat") == (False, False, True)

    def test_injector_hands_out_sequential_scripts(self):
        injector = ChaosInjector(ChaosPlan(seed=5, drop_rate=0.1))
        first, second = injector.script(), injector.script()
        assert (first.index, second.index) == (0, 1)
        assert injector.stats.connections == 2


class TestChaosHealsViaReconnect:
    def test_drops_heal_without_restart_budget(
            self, make_providers, make_plan, reference_results,
            net_inputs, worker_farm):
        """ISSUE acceptance: chaos-injected connection drops must heal
        via reconnect-with-backoff — bit-identical results, zero dead
        letters, zero restart-budget consumed, and at least one actual
        reconnect observed."""
        config = RuntimeConfig(key_size=128, seed=78).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_chaos(
            seed=7, drop_rate=0.08, delay_rate=0.1,
            delay_seconds=0.002,
        ).with_reconnect(
            attempts=4, base_delay=0.02, max_delay=0.2,
        )
        providers = make_providers(config)
        plan = make_plan(ClusterSpec.homogeneous(2, 1, 2))
        expected = reference_results(plan)
        _, addresses = worker_farm(
            WorkerServer(), WorkerServer(), WorkerServer()
        )
        respawn_calls = []

        def respawn(server_id, role):  # pragma: no cover - must not run
            respawn_calls.append(server_id)
            raise AssertionError("respawn must not be consulted for "
                                 "a transient drop")

        model_provider, data_provider = providers
        coordinator = Coordinator(
            model_provider, data_provider, plan, addresses,
            respawn=respawn, worker_restart_budget=2,
            retry_policy=RetryPolicy(max_retries=8, base_delay=0.02,
                                     jitter_seed=78),
        )
        with coordinator as coord:
            assert coord.chaos is not None
            stats = coord.run_stream(net_inputs)
            # The workers never died for real: every drop was a chaos
            # cut that reconnect healed at the same address.
            drops = coord.chaos.stats.drops
            reconnects = sum(h.reconnects for h in coord.handles)
        assert drops > 0, "chaos plan injected no drops; rate too low"
        assert reconnects > 0, "drops never exercised the reconnect path"
        assert not respawn_calls
        assert all(h.restarts == 0 for h in coord.handles)
        assert not stats.dead_letters
        assert len(stats.results) == len(net_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  expected[result.request_id])

    def test_chaos_off_means_plain_connections(
            self, make_providers, make_plan, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        _, addresses = worker_farm(WorkerServer(), WorkerServer())
        model_provider, data_provider = make_providers()
        with Coordinator(model_provider, data_provider, plan,
                         addresses) as coord:
            assert coord.chaos is None
