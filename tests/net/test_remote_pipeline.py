"""Integration tests: coordinator + in-thread workers over real TCP.

The acceptance bar is bit-identity: the distributed runtime must
produce byte-for-byte the same probability vectors as the in-process
thread pipeline, because both run the identical deterministic
plaintext arithmetic — only the transport differs.
"""

import numpy as np
import pytest

from repro.errors import HandshakeError, PoisonedRequestError
from repro.net import Coordinator, WorkerServer, build_worker_spec
from repro.net.transport import (
    KIND_ERROR,
    KIND_HELLO,
    KIND_TASK,
    KIND_WELCOME,
    Envelope,
    dial,
)
from repro.net.wire import (
    CLASS_PERMANENT,
    ROLE_DATA,
    ROLE_MODEL,
    raise_remote_error,
)
from repro.nn.layers import LayerKind
from repro.observability import Observability
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.stream import RetryPolicy


def _coordinator(providers, plan, addresses, **kwargs):
    model_provider, data_provider = providers
    kwargs.setdefault("retry_policy",
                      RetryPolicy(max_retries=3, base_delay=0.02))
    return Coordinator(model_provider, data_provider, plan, addresses,
                       **kwargs)


class TestBitIdentity:
    def test_distributed_matches_in_process(
            self, make_providers, make_plan, reference_results,
            net_inputs, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        expected = reference_results(plan)
        servers, addresses = worker_farm(WorkerServer(), WorkerServer())
        with _coordinator(make_providers(), plan, addresses) as coord:
            stats = coord.run_stream(net_inputs)
        assert not stats.dead_letters
        assert len(stats.results) == len(net_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  expected[result.request_id])

    def test_second_stream_reuses_the_same_workers(
            self, make_providers, make_plan, reference_results,
            net_inputs, worker_farm):
        """Worker-side executors (and obfuscator round counters) are
        cached across streams; stateless deobfuscation must keep every
        later stream bit-identical too."""
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        expected = reference_results(plan)
        _, addresses = worker_farm(WorkerServer(), WorkerServer())
        with _coordinator(make_providers(), plan, addresses) as coord:
            coord.run_stream(net_inputs)
            stats = coord.run_stream(net_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  expected[result.request_id])

    def test_multi_server_cluster(self, make_providers, make_plan,
                                  reference_results, net_inputs,
                                  worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(2, 1, 2))
        expected = reference_results(plan)
        _, addresses = worker_farm(WorkerServer(), WorkerServer(),
                                   WorkerServer())
        with _coordinator(make_providers(), plan, addresses) as coord:
            stats = coord.run_stream(net_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  expected[result.request_id])


class TestObservabilityAcrossTheWire:
    def test_trace_ids_cross_the_wire(self, make_providers, make_plan,
                                      net_inputs, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        worker_obs = Observability(enabled=True)
        coord_obs = Observability(enabled=True)
        _, addresses = worker_farm(WorkerServer(obs=worker_obs),
                                   WorkerServer(obs=worker_obs))
        with _coordinator(make_providers(), plan, addresses,
                          obs=coord_obs) as coord:
            stats = coord.run_stream(net_inputs[:2])
        assert len(stats.results) == 2
        remote_spans = [s for s in worker_obs.tracer.spans()
                        if s.name.startswith("remote-stage-")]
        assert remote_spans, "worker recorded no remote stage spans"
        coordinator_traces = set(coord_obs.tracer.trace_ids())
        for span in remote_spans:
            assert span.trace_id in coordinator_traces

    def test_byte_counters_accumulate(self, make_providers, make_plan,
                                      net_inputs, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        obs = Observability(enabled=True)
        _, addresses = worker_farm(WorkerServer(), WorkerServer())
        with _coordinator(make_providers(), plan, addresses,
                          obs=obs) as coord:
            coord.run_stream(net_inputs[:2])
        snapshot = obs.registry.snapshot()
        sent = sum(m["value"] for m in snapshot["counters"]
                   if m["name"] == "net_bytes_sent")
        received = sum(m["value"] for m in snapshot["counters"]
                       if m["name"] == "net_bytes_received")
        # Each request crosses the wire once per stage, ciphertexts
        # are ~32 bytes each — both directions must be way past zero.
        assert sent > 1000
        assert received > 1000
        roundtrips = [m for m in snapshot["histograms"]
                      if m["name"] == "net_stage_roundtrip_seconds"]
        assert roundtrips and sum(m["count"] for m in roundtrips) > 0


class TestHandshake:
    def test_worker_count_must_match_cluster(self, make_providers,
                                             make_plan, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        _, addresses = worker_farm(WorkerServer())
        with pytest.raises(HandshakeError):
            _coordinator(make_providers(), plan, [addresses[0]])

    def test_role_pinning_refuses_cross_role_handshake(
            self, make_providers, make_plan, net_config, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        _, addresses = worker_farm(WorkerServer())
        host, port = addresses[0]
        model_spec = build_worker_spec(model_provider, data_provider,
                                       plan, ROLE_MODEL)
        data_spec = build_worker_spec(model_provider, data_provider,
                                      plan, ROLE_DATA)
        first = dial(host, port)
        reply = first.request(Envelope(KIND_HELLO, model_spec),
                              timeout=5)
        assert reply.kind == KIND_WELCOME
        assert reply.header["role"] == ROLE_MODEL
        second = dial(host, port)
        refusal = second.request(Envelope(KIND_HELLO, data_spec),
                                 timeout=5)
        assert refusal.kind == KIND_ERROR
        assert "pinned" in refusal.header["message"]
        first.close()
        second.close()

    def test_rehandshake_same_key_changed_spec_rebuilds_session(
            self, make_providers, make_plan, net_config, worker_farm):
        """A tenant session is pinned to the whole handshake spec, not
        just the keypair: a re-handshake with the same key but a
        changed config must rebuild the worker-side session instead of
        silently reusing stale executors."""
        import copy

        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        servers, addresses = worker_farm(WorkerServer())
        host, port = addresses[0]
        spec = build_worker_spec(model_provider, data_provider,
                                 plan, ROLE_MODEL)
        first = dial(host, port)
        assert first.request(Envelope(KIND_HELLO, spec),
                             timeout=5).kind == KIND_WELCOME
        original = servers[0]._sessions["default"]
        changed = copy.deepcopy(spec)
        changed["config"]["net_request_timeout"] = 77.0
        second = dial(host, port)
        reply = second.request(Envelope(KIND_HELLO, changed),
                               timeout=5)
        assert reply.kind == KIND_WELCOME
        rebuilt = servers[0]._sessions["default"]
        assert rebuilt is not original
        assert rebuilt.config.net_request_timeout == 77.0
        first.close()
        second.close()

    def test_rehandshake_identical_spec_reuses_session(
            self, make_providers, make_plan, worker_farm):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        servers, addresses = worker_farm(WorkerServer())
        host, port = addresses[0]
        spec = build_worker_spec(model_provider, data_provider,
                                 plan, ROLE_MODEL)
        connections = []
        for _ in range(2):
            connection = dial(host, port)
            assert connection.request(Envelope(KIND_HELLO, spec),
                                      timeout=5).kind == KIND_WELCOME
            connections.append(connection)
        assert len(servers[0]._sessions) == 1
        for connection in connections:
            connection.close()

    def test_rehandshake_different_key_refused(
            self, net_model, make_plan, net_config, worker_farm):
        """Same tenant, different keypair: refused outright (tenant
        isolation), never rebuilt."""
        from repro.protocol import DataProvider, ModelProvider

        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        specs = []
        for seed in (78, 79):
            config = net_config.with_seed(seed)
            model_provider = ModelProvider(net_model, decimals=2,
                                           config=config)
            data_provider = DataProvider(value_decimals=2,
                                         config=config)
            model_provider.register_public_key(
                data_provider.public_key
            )
            specs.append(build_worker_spec(
                model_provider, data_provider, plan, ROLE_MODEL
            ))
        assert specs[0]["public_key"] != specs[1]["public_key"]
        _, addresses = worker_farm(WorkerServer())
        host, port = addresses[0]
        first = dial(host, port)
        assert first.request(Envelope(KIND_HELLO, specs[0]),
                             timeout=5).kind == KIND_WELCOME
        second = dial(host, port)
        refusal = second.request(Envelope(KIND_HELLO, specs[1]),
                                 timeout=5)
        assert refusal.kind == KIND_ERROR
        assert "different keypair" in refusal.header["message"]
        first.close()
        second.close()

    def test_model_spec_never_carries_the_private_key(
            self, make_providers, make_plan):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        model_spec = build_worker_spec(model_provider, data_provider,
                                       plan, ROLE_MODEL)
        assert "private_key" not in model_spec
        assert any("affines" in stage
                   for stage in model_spec["stages"].values())

    def test_data_spec_never_carries_model_parameters(
            self, make_providers, make_plan):
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        data_spec = build_worker_spec(model_provider, data_provider,
                                      plan, ROLE_DATA)
        assert "private_key" in data_spec
        for stage in data_spec["stages"].values():
            assert "affines" not in stage

    def test_wrong_kind_stage_rejected_as_permanent(
            self, make_providers, make_plan, net_inputs, worker_farm):
        """A model worker asked to run a non-linear stage must refuse
        (privacy separation), classified permanent on the wire."""
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        model_provider, data_provider = make_providers()
        model_provider.register_public_key(data_provider.public_key)
        _, addresses = worker_farm(WorkerServer())
        host, port = addresses[0]
        spec = build_worker_spec(model_provider, data_provider, plan,
                                 ROLE_MODEL)
        connection = dial(host, port)
        assert connection.request(Envelope(KIND_HELLO, spec),
                                  timeout=5).kind == KIND_WELCOME
        nonlinear = next(s.index for s in plan.stages
                         if s.kind is LayerKind.NONLINEAR)
        from repro.crypto.serialize import tensor_to_bytes
        from repro.crypto.tensor import EncryptedTensor

        tensor = EncryptedTensor.encrypt(
            np.arange(3), data_provider.public_key,
            engine=data_provider.engine,
        )
        reply = connection.request(Envelope(
            KIND_TASK,
            {"request_id": 0, "stage_index": nonlinear,
             "obfuscation_round": None, "trace_id": None,
             "trace_parent": None},
            payload=tensor_to_bytes(tensor),
        ), timeout=5)
        assert reply.kind == KIND_ERROR
        assert reply.header["classification"] == CLASS_PERMANENT
        with pytest.raises(PoisonedRequestError):
            raise_remote_error(reply)
        connection.close()
