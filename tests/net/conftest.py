"""Shared fixtures for the networked-runtime tests.

Built around a tiny untrained conv model (no training cost) with a
128-bit key: small enough that a full distributed stream runs in well
under a second, so worker-kill tests can stage deterministic mid-batch
deaths via :class:`DyingWorker` rather than wall-clock timers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.net import WorkerServer
from repro.nn import model_zoo
from repro.planner.allocation import allocate_even
from repro.protocol import DataProvider, ModelProvider
from repro.stream import Pipeline


class DyingWorker(WorkerServer):
    """A worker that crashes (hard-closes every connection) after
    serving ``die_after`` tasks — the deterministic stand-in for
    kill -9 mid-batch."""

    def __init__(self, die_after: int, **kwargs):
        super().__init__(**kwargs)
        self.die_after = die_after
        self.tasks_done = 0

    def _run_task(self, session, envelope):
        self.tasks_done += 1
        if self.tasks_done > self.die_after:
            self.stop(abort=True)
        return super()._run_task(session, envelope)


@pytest.fixture(scope="session")
def net_model():
    return model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="tiny-conv",
    )


@pytest.fixture(scope="session")
def net_config():
    # Lax heartbeat timeout: GIL-bound crypto work can starve the
    # monitor thread for over a second, and the executor path already
    # detects closed connections instantly — heartbeats only need to
    # catch silent stalls.
    return RuntimeConfig(key_size=128, seed=78).with_net(
        heartbeat_interval=0.2, heartbeat_timeout=3.0,
    )


@pytest.fixture(scope="session")
def net_inputs():
    rng = np.random.default_rng(1)
    return [rng.uniform(0, 1, (1, 8, 8)) for _ in range(6)]


@pytest.fixture()
def make_providers(net_model, net_config):
    """Fresh provider pair per call (in-process runs mutate obfuscator
    state, so reference and distributed runs each get their own)."""

    def build(config=None):
        config = config or net_config
        return (
            ModelProvider(net_model, decimals=2, config=config),
            DataProvider(value_decimals=2, config=config),
        )

    return build


@pytest.fixture()
def make_plan(make_providers):
    def build(cluster):
        model_provider, _ = make_providers()
        return allocate_even(model_provider.stages, cluster).plan

    return build


@pytest.fixture()
def reference_results(make_providers, net_inputs):
    """request_id -> probabilities from the in-process pipeline."""

    def build(plan):
        model_provider, data_provider = make_providers()
        stats = Pipeline(model_provider, data_provider,
                         plan).run_stream(net_inputs)
        assert not stats.dead_letters
        return {r.request_id: r.probabilities for r in stats.results}

    return build


@pytest.fixture()
def worker_farm():
    """Start in-thread workers; guarantees teardown stops them all."""
    started = []

    def launch(*servers):
        addresses = []
        for server in servers:
            started.append(server)
            addresses.append(server.start())
        return list(servers), addresses

    yield launch
    for server in started:
        server.stop(abort=True)
