"""Reconnect-with-backoff, circuit breaker, connect-path deadlines and
per-worker heartbeat independence."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import TransportError
from repro.net import CircuitBreaker, Coordinator, WorkerServer, dial
from repro.net.reconnect import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.net.transport import Envelope, KIND_HELLO
from repro.planner.plan import ClusterSpec
from repro.stream import RetryPolicy


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown,
                                 clock=lambda: clock["now"])
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_run(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 4.9
        assert not breaker.allow()
        clock["now"] = 5.0
        assert breaker.allow()  # the probe
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_half_open_failure_reopens_immediately(self):
        breaker, clock = self.make(threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 5.0
        assert breaker.allow()
        breaker.record_failure()  # single half-open failure re-opens
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        clock["now"] = 9.0
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestReconnectRecovery:
    def test_report_failure_heals_by_reconnect_not_budget(
            self, make_providers, make_plan, worker_farm):
        """A failure report against a still-listening worker heals by
        re-dialing the same address: generation bumps, alive returns,
        restarts stays zero and the reconnect is counted."""
        config = RuntimeConfig(key_size=128, seed=78).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_reconnect(attempts=4, base_delay=0.02, max_delay=0.2)
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        _, addresses = worker_farm(WorkerServer(), WorkerServer())
        model_provider, data_provider = make_providers(config)
        with Coordinator(model_provider, data_provider, plan,
                         addresses) as coord:
            handle = coord.handles[0]
            generation = handle.generation
            coord.report_failure(handle, generation)
            deadline = time.monotonic() + 5.0
            while not handle.alive and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.alive, "reconnect never healed the slot"
            assert handle.generation == generation + 1
            assert handle.restarts == 0
            assert handle.reconnects == 1
            assert handle.breaker.state == STATE_CLOSED

    def test_dead_address_exhausts_then_respawns(
            self, make_providers, make_plan, worker_farm):
        """With the original address truly dead, reconnect attempts
        exhaust and the respawn hook runs — once, within budget."""
        config = RuntimeConfig(key_size=128, seed=78).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_reconnect(attempts=2, base_delay=0.02, max_delay=0.1)
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        victim, data_worker = WorkerServer(), WorkerServer()
        _, addresses = worker_farm(victim, data_worker)
        spawned = []

        def respawn(server_id, role):
            replacement = WorkerServer()
            spawned.append(replacement)
            return replacement.start()

        model_provider, data_provider = make_providers(config)
        try:
            with Coordinator(model_provider, data_provider, plan,
                             addresses, respawn=respawn,
                             worker_restart_budget=1) as coord:
                handle = coord.handles[0]
                victim.stop(abort=True)  # address now refuses dials
                coord.report_failure(handle, handle.generation)
                deadline = time.monotonic() + 8.0
                while not handle.alive \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert handle.alive, "respawn never revived the slot"
                assert handle.restarts == 1
                assert handle.reconnects == 0
                assert len(spawned) == 1
                assert tuple(handle.address) == spawned[0].address
        finally:
            for server in spawned:
                server.stop(abort=True)


class TestConnectDeadline:
    def test_silent_listener_fails_fast_not_forever(self, net_config):
        """A socket that accepts (kernel backlog) but never speaks the
        protocol must fail the dial+handshake within the configured
        deadlines instead of hanging the coordinator."""
        silent = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)  # never accept()ed or served
        host, port = silent.getsockname()[:2]
        try:
            started = time.monotonic()
            connection = dial(host, port, connect_timeout=0.3)
            with pytest.raises(TransportError):
                connection.request(Envelope(KIND_HELLO, header={}),
                                   timeout=0.5)
            elapsed = time.monotonic() - started
            assert elapsed < 3.0, (
                f"silent peer stalled the connect path for {elapsed:.1f}s"
            )
            connection.close()
        finally:
            silent.close()

    def test_dial_send_is_deadlined_before_handshake(self):
        """The dial leaves the connect timeout armed, so even the
        *send* half of the handshake cannot block unbounded when the
        peer never reads (zero receive window)."""
        silent = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        host, port = silent.getsockname()[:2]
        try:
            connection = dial(host, port, connect_timeout=0.2)
            big = Envelope(KIND_HELLO, header={},
                           payload=b"x" * (8 << 20))
            started = time.monotonic()
            with pytest.raises(TransportError):
                # 8MB into a never-read socket overflows the buffers;
                # the armed timeout must surface it quickly.
                for _ in range(64):
                    connection.send(big)
            assert time.monotonic() - started < 5.0
            connection.close()
        finally:
            silent.close()


class StallingWorker(WorkerServer):
    """Acks heartbeats only after a long stall — a live-but-wedged
    worker that the old sequential monitor would let poison every
    other worker's probe cadence."""

    def __init__(self, stall: float, **kwargs):
        super().__init__(**kwargs)
        self.stall = stall

    def _heartbeat_ack(self, envelope):
        time.sleep(self.stall)
        return super()._heartbeat_ack(envelope)


class TestHeartbeatIndependence:
    def test_one_stalled_worker_does_not_block_the_fleet(
            self, make_providers, make_plan, worker_farm):
        """Per-worker probe threads: with worker 0 stalling every ack
        past the heartbeat timeout, worker 1's probes must keep
        landing on schedule (detection latency independent of fleet
        size)."""
        config = RuntimeConfig(key_size=128, seed=78).with_net(
            heartbeat_interval=0.1, heartbeat_timeout=0.6,
        ).with_reconnect(attempts=0)
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        stalled = StallingWorker(stall=30.0)
        healthy = WorkerServer()
        _, addresses = worker_farm(stalled, healthy)
        model_provider, data_provider = make_providers(config)
        with Coordinator(model_provider, data_provider, plan,
                         addresses) as coord:
            wedged, fine = coord.handles
            observe_for = 1.5
            time.sleep(observe_for)
            # The healthy worker's cadence: ~interval-spaced probes,
            # far more than the <=1 the old head-of-line loop would
            # manage while worker 0's probe burned its 0.6s timeout.
            assert fine.heartbeats_ok >= 5, (
                f"healthy worker got only {fine.heartbeats_ok} probes "
                f"in {observe_for}s — head-of-line blocking is back"
            )
            # And the stalled worker is detected dead meanwhile.
            deadline = time.monotonic() + 3.0
            while wedged.alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not wedged.alive
            assert wedged.heartbeats_ok == 0
