"""Wire-format tests for the handshake's sparse matvec plan section.

Mirrors tests/crypto/test_serialize_packed.py for the plan codec:
round-trip fidelity, a malformed-record sweep (every corruption must
fail as a clean :class:`TransportError`, never poison a session), and
a packed x compressed equivalence run over a real TCP worker — the
two orthogonal fast paths composed on the wire.
"""

import json

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.encoding import LanePacker
from repro.crypto.sparse import SparseMatvecPlan
from repro.crypto.serialize import (
    any_tensor_from_bytes,
    any_tensor_to_bytes,
)
from repro.crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from repro.errors import TransportError
from repro.net import WorkerServer, build_worker_spec
from repro.net.transport import (
    KIND_HELLO,
    KIND_RESULT,
    KIND_TASK,
    KIND_WELCOME,
    Envelope,
    dial,
)
from repro.net.wire import ROLE_MODEL, plan_from_wire, plan_to_wire
from repro.nn import model_zoo
from repro.nn.layers import LayerKind
from repro.nn.rewrite import prune_model
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider


@pytest.fixture()
def sparse_plan():
    rng = np.random.default_rng(7)
    weights = rng.integers(-50, 50, size=(12, 10))
    weights[np.abs(weights) < 30] = 0  # properly sparse
    return SparseMatvecPlan.from_dense(weights)


class TestPlanRoundTrip:
    def test_round_trip_preserves_identity(self, sparse_plan):
        restored = plan_from_wire(plan_to_wire(sparse_plan))
        assert restored == sparse_plan
        assert restored.in_dim == sparse_plan.in_dim
        assert restored.out_dim == sparse_plan.out_dim
        assert restored.columns == sparse_plan.columns
        assert list(restored.row_weight_sums) == \
            list(sparse_plan.row_weight_sums)
        assert restored.nnz == sparse_plan.nnz
        assert restored.distinct_pairs == sparse_plan.distinct_pairs

    def test_survives_json_transport(self, sparse_plan):
        """The handshake spec crosses the wire as JSON — tuples become
        lists; the decoder must not care."""
        state = json.loads(json.dumps(plan_to_wire(sparse_plan)))
        assert plan_from_wire(state) == sparse_plan

    def test_all_zero_plan_round_trips(self):
        plan = SparseMatvecPlan.from_dense(np.zeros((4, 3)))
        assert plan_from_wire(plan_to_wire(plan)) == plan


class TestMalformedPlans:
    def _good(self, sparse_plan):
        return json.loads(json.dumps(plan_to_wire(sparse_plan)))

    @pytest.mark.parametrize("key", [
        "in_dim", "out_dim", "columns", "row_weight_sums",
    ])
    def test_missing_field(self, sparse_plan, key):
        state = self._good(sparse_plan)
        del state[key]
        with pytest.raises(TransportError):
            plan_from_wire(state)

    @pytest.mark.parametrize("mutate", [
        lambda s: s.__setitem__("in_dim", 0),
        lambda s: s.__setitem__("in_dim", -3),
        lambda s: s.__setitem__("out_dim", "many"),
        lambda s: s.__setitem__("columns", 42),
        lambda s: s.__setitem__("columns", [[0]]),  # no groups
        lambda s: s.__setitem__("row_weight_sums", s["row_weight_sums"][:-1]),
        lambda s: s.__setitem__("row_weight_sums", "nope"),
        # zero weight: the plan invariant every kernel relies on
        lambda s: s["columns"][0][1].__setitem__(0, [0, [0]]),
        # non-integer weight
        lambda s: s["columns"][0][1].__setitem__(0, ["w", [0]]),
        # row index out of range
        lambda s: s["columns"][0][1].__setitem__(0, [3, [999]]),
        # negative row index
        lambda s: s["columns"][0][1].__setitem__(0, [3, [-1]]),
        # column index out of range
        lambda s: s["columns"].__setitem__(
            0, [999, s["columns"][0][1]]
        ),
        # duplicate column entry
        lambda s: s["columns"].append(s["columns"][0]),
    ])
    def test_corrupted_record_raises_transport_error(
            self, sparse_plan, mutate):
        state = self._good(sparse_plan)
        mutate(state)
        with pytest.raises(TransportError):
            plan_from_wire(state)

    def test_corruption_never_leaks_other_exceptions(self, sparse_plan):
        """Sweep scalar fields through hostile replacement values; the
        decoder contract is TransportError or a valid plan, nothing
        else."""
        hostile = [None, "x", -1, [], {}, [[1]], float("nan")]
        template = self._good(sparse_plan)
        for key in template:
            for value in hostile:
                state = json.loads(json.dumps(template))
                state[key] = value
                try:
                    plan_from_wire(state)
                except TransportError:
                    pass


@pytest.fixture()
def pruned_parties():
    """Providers over a pruned tiny conv model: compressed plans exist
    for every linear stage."""
    model = model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="wire-plan-tiny",
    )
    pruned, _ = prune_model(model, 0.7)
    config = RuntimeConfig(key_size=256, seed=21)
    model_provider = ModelProvider(pruned, decimals=2, config=config)
    data_provider = DataProvider(value_decimals=2, config=config)
    model_provider.register_public_key(data_provider.public_key)
    return model_provider, data_provider


class TestSpecPlanSection:
    def test_model_spec_ships_plans(self, pruned_parties):
        model_provider, data_provider = pruned_parties
        plan = allocate_even(model_provider.stages,
                             ClusterSpec.homogeneous(1, 1, 2)).plan
        spec = build_worker_spec(model_provider, data_provider, plan,
                                 ROLE_MODEL)
        shipped = 0
        for index, stage in spec["stages"].items():
            if stage["kind"] != "linear":
                assert "matvec_plans" not in stage
                continue
            local = model_provider._linear_plans[int(index)]
            assert len(stage["matvec_plans"]) == len(local.affines)
            for wire_plan, local_plan in zip(stage["matvec_plans"],
                                             local.matvec_plans):
                if local_plan is None:
                    assert wire_plan is None
                    continue
                shipped += 1
                assert plan_from_wire(wire_plan) == local_plan
        assert shipped > 0, "pruned model shipped no plans"

    def test_spec_digest_changes_with_the_plan(self, pruned_parties):
        """Re-compressing a tenant's model must change the handshake
        digest, so the worker's spec pinning rebuilds the session
        instead of serving stale plans."""
        from repro.net.worker import _spec_digest

        model_provider, data_provider = pruned_parties
        plan = allocate_even(model_provider.stages,
                             ClusterSpec.homogeneous(1, 1, 2)).plan
        spec = build_worker_spec(model_provider, data_provider, plan,
                                 ROLE_MODEL)
        changed = json.loads(json.dumps(spec))
        for stage in changed["stages"].values():
            plans = stage.get("matvec_plans")
            if plans and plans[0] is not None:
                plans[0] = None  # "decompressed" layer, same weights
                break
        assert _spec_digest(changed) != _spec_digest(spec)


class TestPackedCompressedOverTCP:
    def test_packed_equals_scalar_through_a_remote_plan_stage(
            self, pruned_parties):
        """Lane-packed and scalar tasks through the same remote
        compressed linear stage must agree with each other and with
        the plaintext affine — the packed and sparse-plan fast paths
        compose across the wire."""
        model_provider, data_provider = pruned_parties
        plan = allocate_even(model_provider.stages,
                             ClusterSpec.homogeneous(1, 1, 2)).plan
        spec = build_worker_spec(model_provider, data_provider, plan,
                                 ROLE_MODEL)
        # The final linear stage emits unobfuscated output (its
        # consumer is the softmax stage), so results decrypt directly.
        linear = [s.index for s in plan.stages
                  if s.kind is LayerKind.LINEAR]
        stage_index = linear[-1]
        assert stage_index == len(plan.stages) - 2
        stage_plan = model_provider._linear_plans[stage_index]
        assert any(p is not None for p in stage_plan.matvec_plans)
        affine = stage_plan.affines[0]
        in_dim = affine.weight.shape[1]

        public = data_provider.public_key
        private = data_provider._private_key
        rng = np.random.default_rng(5)
        xs = rng.integers(-8, 8, size=(2, in_dim))
        packer = LanePacker(public, lanes=2, mag_bits=32)
        packed = PackedEncryptedTensor.encrypt_batch(
            xs, packer, exponent=0, engine=data_provider.engine,
        )
        scalars = [
            EncryptedTensor.encrypt(x, public, exponent=0,
                                    engine=data_provider.engine)
            for x in xs
        ]

        server = WorkerServer()
        host, port = server.start()
        connection = None
        try:
            connection = dial(host, port)
            assert connection.request(
                Envelope(KIND_HELLO, spec), timeout=5
            ).kind == KIND_WELCOME

            def run_stage(request_id, tensor):
                reply = connection.request(Envelope(
                    KIND_TASK,
                    {"request_id": request_id,
                     "stage_index": stage_index,
                     "obfuscation_round": None,
                     "trace_id": None, "trace_parent": None},
                    payload=any_tensor_to_bytes(tensor),
                ), timeout=10)
                assert reply.kind == KIND_RESULT
                assert not reply.header["has_result"]
                assert reply.header["obfuscation_round"] is None
                return any_tensor_from_bytes(reply.payload, public)

            packed_out = run_stage(0, packed)
            scalar_outs = [run_stage(1 + i, t)
                           for i, t in enumerate(scalars)]

            # The remote executor must actually hold the plan (the
            # compressed kernel ran, not a silent dense fallback).
            session = server._sessions["default"]
            executor = session._executors[stage_index]
            assert any(p is not None for p in executor.plans)

            packed_rows = packed_out.decrypt(private)
            for lane, (x, scalar_out) in enumerate(
                    zip(xs, scalar_outs)):
                expected = affine.apply_plain(x, input_exponent=0)
                scalar_row = scalar_out.decrypt(private)
                assert np.array_equal(scalar_row, expected)
                assert np.array_equal(packed_rows[lane], expected)
        finally:
            if connection is not None:
                connection.close()
            server.stop(abort=True)
