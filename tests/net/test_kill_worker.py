"""Worker-death tests: kill a worker mid-batch and assert the stream
either completes via failover/respawn (bit-identically) or terminates
with accounted dead letters — never a hang (conftest timeout guard).
"""

import numpy as np
import pytest

from repro.net import Coordinator, WorkerServer
from repro.planner.plan import ClusterSpec
from repro.stream import RetryPolicy

from .conftest import DyingWorker


def _coordinator(providers, plan, addresses, **kwargs):
    model_provider, data_provider = providers
    kwargs.setdefault("retry_policy",
                      RetryPolicy(max_retries=4, base_delay=0.05))
    return Coordinator(model_provider, data_provider, plan, addresses,
                       **kwargs)


class TestFailover:
    def test_mid_batch_death_fails_over_bit_identically(
            self, make_providers, make_plan, reference_results,
            net_inputs, worker_farm):
        """Model worker 0 dies after 3 tasks; its twin absorbs the
        remaining load and every request still completes with the
        exact in-process probabilities."""
        plan = make_plan(ClusterSpec.homogeneous(2, 1, 2))
        expected = reference_results(plan)
        servers, addresses = worker_farm(
            DyingWorker(3), WorkerServer(), WorkerServer()
        )
        with _coordinator(make_providers(), plan, addresses) as coord:
            stats = coord.run_stream(net_inputs)
            assert not coord.handles[0].alive
            assert coord.handles[1].alive and coord.handles[2].alive
        assert servers[0].tasks_done > 3, "victim never died mid-batch"
        assert not stats.dead_letters
        assert len(stats.results) == len(net_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  expected[result.request_id])

    def test_no_failover_drains_to_dead_letters(
            self, make_providers, make_plan, net_inputs, worker_farm):
        """With the only model worker dead and no respawn hook, the
        stream must terminate: every admitted request either completed
        before the death or is accounted for as a dead letter."""
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        _, addresses = worker_farm(DyingWorker(8), WorkerServer())
        with _coordinator(
                make_providers(), plan, addresses,
                retry_policy=RetryPolicy(max_retries=2,
                                         base_delay=0.02)) as coord:
            stats = coord.run_stream(net_inputs)
        assert stats.dead_letters, "the death went unnoticed"
        assert (len(stats.results) + len(stats.dead_letters)
                == len(net_inputs))
        accounted = ({r.request_id for r in stats.results}
                     | {d.request_id for d in stats.dead_letters})
        assert accounted == set(range(len(net_inputs)))

    def test_respawn_budget_revives_both_model_workers(
            self, make_providers, make_plan, reference_results,
            net_inputs, worker_farm):
        """Both model workers die; the respawn hook (budget 2) brings
        replacements up and the stream completes bit-identically."""
        plan = make_plan(ClusterSpec.homogeneous(2, 1, 2))
        expected = reference_results(plan)
        _, addresses = worker_farm(
            DyingWorker(2), DyingWorker(4), WorkerServer()
        )
        spawned = []

        def respawn(server_id, role):
            server = WorkerServer()
            spawned.append(server)
            return server.start()

        try:
            with _coordinator(
                    make_providers(), plan, addresses,
                    respawn=respawn, worker_restart_budget=2,
                    retry_policy=RetryPolicy(max_retries=6,
                                             base_delay=0.05)) as coord:
                stats = coord.run_stream(net_inputs)
            assert spawned, "no replacement worker was ever spawned"
            assert not stats.dead_letters
            assert len(stats.results) == len(net_inputs)
            for result in stats.results:
                assert np.array_equal(result.probabilities,
                                      expected[result.request_id])
        finally:
            for server in spawned:
                server.stop(abort=True)

    def test_data_worker_death_dead_letters_not_hangs(
            self, make_providers, make_plan, net_inputs, worker_farm):
        """Killing the only data worker (the key holder) mid-batch
        must also drain, not hang — non-linear stages dead-letter."""
        plan = make_plan(ClusterSpec.homogeneous(1, 1, 2))
        _, addresses = worker_farm(WorkerServer(), DyingWorker(6))
        with _coordinator(
                make_providers(), plan, addresses,
                retry_policy=RetryPolicy(max_retries=2,
                                         base_delay=0.02)) as coord:
            stats = coord.run_stream(net_inputs)
        assert (len(stats.results) + len(stats.dead_letters)
                == len(net_inputs))
        assert stats.dead_letters
