"""Unit tests for protocol roles and messages (edge cases)."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ProtocolError
from repro.protocol import DataProvider, ModelProvider
from repro.protocol.message import (
    CIPHERTEXT,
    CIPHERTEXT_OBFUSCATED,
    Message,
    Transcript,
)


class TestMessage:
    def test_valid(self):
        message = Message(sender="model", kind=CIPHERTEXT, elements=4,
                          bytes_estimate=128, round_index=0,
                          stage_index=0)
        assert not message.obfuscated

    def test_obfuscated_flag(self):
        message = Message(sender="model", kind=CIPHERTEXT_OBFUSCATED,
                          elements=4, bytes_estimate=128,
                          round_index=1, stage_index=2,
                          obfuscation_round=3)
        assert message.obfuscated

    def test_unknown_sender(self):
        with pytest.raises(ProtocolError):
            Message(sender="eve", kind=CIPHERTEXT, elements=1,
                    bytes_estimate=1, round_index=0, stage_index=0)

    def test_empty_payload(self):
        with pytest.raises(ProtocolError):
            Message(sender="data", kind=CIPHERTEXT, elements=0,
                    bytes_estimate=0, round_index=0, stage_index=0)


class TestTranscript:
    def test_aggregates(self):
        transcript = Transcript()
        for round_index in range(3):
            transcript.record(Message(
                sender="data", kind=CIPHERTEXT, elements=10,
                bytes_estimate=100, round_index=round_index,
                stage_index=0,
            ))
        assert transcript.total_elements == 30
        assert transcript.total_bytes == 300
        assert transcript.rounds == 3
        assert transcript.all_ciphertext()

    def test_from_sender(self):
        transcript = Transcript()
        transcript.record(Message(sender="data", kind=CIPHERTEXT,
                                  elements=1, bytes_estimate=1,
                                  round_index=0, stage_index=0))
        transcript.record(Message(sender="model", kind=CIPHERTEXT,
                                  elements=1, bytes_estimate=1,
                                  round_index=0, stage_index=0))
        assert len(transcript.from_sender("data")) == 1
        assert len(transcript.from_sender("model")) == 1

    def test_empty(self):
        assert Transcript().rounds == 0


class TestModelProviderEdges:
    def test_requires_registered_key(self, trained_breast,
                                     test_config):
        provider = ModelProvider(trained_breast, decimals=3,
                                 config=test_config)
        data = DataProvider(value_decimals=3, config=test_config)
        tensor = data.encrypt_input(np.zeros(30))
        with pytest.raises(ProtocolError, match="public key"):
            provider.process_linear_stage(0, tensor, None, False)

    def test_nonlinear_stage_index_rejected_for_linear_call(
            self, trained_breast, test_config):
        provider = ModelProvider(trained_breast, decimals=3,
                                 config=test_config)
        data = DataProvider(value_decimals=3, config=test_config)
        provider.register_public_key(data.public_key)
        tensor = data.encrypt_input(np.zeros(30))
        with pytest.raises(ProtocolError, match="not linear"):
            provider.process_linear_stage(1, tensor, None, False)

    def test_activation_listing(self, trained_breast, test_config):
        provider = ModelProvider(trained_breast, decimals=3,
                                 config=test_config)
        assert provider.nonlinear_activations(1) == ["relu"]
        assert provider.nonlinear_activations(5) == ["softmax"]
        with pytest.raises(ProtocolError):
            provider.nonlinear_activations(0)


class TestDataProviderEdges:
    def test_value_decimals_validation(self, test_config):
        with pytest.raises(ProtocolError):
            DataProvider(value_decimals=-1, config=test_config)

    def test_unknown_activation(self, test_config):
        provider = DataProvider(value_decimals=2, config=test_config)
        tensor = provider.encrypt_input(np.array([1.0, 2.0]))
        with pytest.raises(ProtocolError):
            provider.process_nonlinear_stage(tensor, ["swish"], False)

    def test_encrypt_input_exponent(self, test_config):
        provider = DataProvider(value_decimals=3, config=test_config)
        tensor = provider.encrypt_input(np.array([1.5]))
        assert tensor.exponent == 3

    def test_keypair_derived_from_config(self):
        a = DataProvider(value_decimals=2,
                         config=RuntimeConfig(key_size=128, seed=1))
        b = DataProvider(value_decimals=2,
                         config=RuntimeConfig(key_size=128, seed=1))
        assert a.public_key.n == b.public_key.n
        c = DataProvider(value_decimals=2,
                         config=RuntimeConfig(key_size=128, seed=2))
        assert c.public_key.n != a.public_key.n
