"""End-to-end tests for lane-packed batched inference.

``InferenceSession.run_batch`` with ``config.pack_lanes > 1`` must
produce exactly the same predictions and probabilities as the
per-sample protocol, fall back (with counted reasons) when the lane
headroom analysis refuses, and chunk oversized batches.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ConfigurationError
from repro.observability import Observability
from repro.protocol import DataProvider, InferenceSession, ModelProvider


def make_session(model, decimals=3, key_size=256, seed=77,
                 pack_lanes=0, obs=None):
    config = RuntimeConfig(key_size=key_size, seed=seed,
                           pack_lanes=pack_lanes)
    model_provider = ModelProvider(model, decimals=decimals,
                                   config=config, obs=obs)
    data_provider = DataProvider(value_decimals=decimals, config=config,
                                 obs=obs)
    return InferenceSession(model_provider, data_provider)


class TestPackedEquivalence:
    def test_run_batch_matches_per_sample(self, trained_breast,
                                          breast_dataset):
        samples = breast_dataset.test_x[:5]
        plain = make_session(trained_breast)
        packed = make_session(trained_breast, pack_lanes=4)
        reference = [plain.run(x) for x in samples]
        outcomes = packed.run_batch(samples)
        assert len(outcomes) == len(samples)
        for got, want in zip(outcomes, reference):
            assert got.prediction == want.prediction
            assert np.array_equal(got.probabilities,
                                  want.probabilities)

    def test_oversized_batch_chunks(self, trained_breast,
                                    breast_dataset):
        """6 samples at pack_lanes=4 ride as a 4-lane and a 2-lane
        chunk; every outcome still matches the per-sample path."""
        samples = breast_dataset.test_x[:6]
        plain = make_session(trained_breast)
        packed = make_session(trained_breast, pack_lanes=4)
        outcomes = packed.run_batch(samples)
        assert len(outcomes) == 6
        for got, x in zip(outcomes, samples):
            assert got.prediction == plain.run(x).prediction

    def test_packed_request_counted(self, trained_breast,
                                    breast_dataset):
        obs = Observability(enabled=True)
        session = make_session(trained_breast, pack_lanes=4, obs=obs)
        session.run_batch(breast_dataset.test_x[:4])
        counter = obs.registry.counter("packing_requests",
                                       result="packed")
        assert counter.value == 1

    def test_plan_admitted_for_breast_model(self, trained_breast):
        config = RuntimeConfig(key_size=256, pack_lanes=4)
        provider = ModelProvider(trained_breast, decimals=3,
                                 config=config)
        plan = provider.plan_lane_packing(4)
        assert plan.admitted
        assert plan.lanes == 4
        assert plan.capacity >= 4


class TestPackedFallback:
    def test_capacity_fallback_counted(self, trained_breast,
                                       breast_dataset):
        """More lanes than the key can carry: per-sample fallback, with
        the reason recorded on the packing_fallbacks counter.  (A
        128-bit key fits ~6 breast-model lanes, so a 10-sample group
        is refused outright rather than chunked smaller.)"""
        obs = Observability(enabled=True)
        session = make_session(trained_breast, key_size=128,
                               pack_lanes=64, obs=obs)
        outcomes = session.run_batch(breast_dataset.test_x[:10])
        assert len(outcomes) == 10
        assert obs.registry.counter(
            "packing_requests", result="fallback").value == 1
        assert obs.registry.counter(
            "packing_fallbacks", reason="capacity").value == 1

    def test_pack_lanes_zero_stays_per_sample(self, trained_breast,
                                              breast_dataset):
        obs = Observability(enabled=True)
        session = make_session(trained_breast, pack_lanes=0, obs=obs)
        outcomes = session.run_batch(breast_dataset.test_x[:2])
        assert len(outcomes) == 2
        assert obs.registry.counter(
            "packing_requests", result="packed").value == 0
        assert obs.registry.counter(
            "packing_requests", result="fallback").value == 0

    def test_single_sample_batch_stays_per_sample(self, trained_breast,
                                                  breast_dataset):
        obs = Observability(enabled=True)
        session = make_session(trained_breast, pack_lanes=4, obs=obs)
        outcomes = session.run_batch(breast_dataset.test_x[:1])
        assert len(outcomes) == 1
        assert obs.registry.counter(
            "packing_requests", result="packed").value == 0


class TestConfigKnobs:
    def test_with_pack_lanes(self):
        config = RuntimeConfig(key_size=128)
        assert config.pack_lanes == 0
        assert config.with_pack_lanes(8).pack_lanes == 8
        with pytest.raises(ConfigurationError):
            RuntimeConfig(key_size=128, pack_lanes=-1)

    def test_with_dispatch_min_items(self):
        config = RuntimeConfig(key_size=128)
        assert config.dispatch_min_items == 64
        replaced = config.with_dispatch_min_items(16)
        assert replaced.dispatch_min_items == 16
        with pytest.raises(ConfigurationError):
            RuntimeConfig(key_size=128, dispatch_min_items=0)
