"""Compressed execution through the session layer.

The tentpole contract: when a served model is pruned/clustered, the
model provider builds one :class:`SparseMatvecPlan` per compressible
layer at session setup and the linear stages run the engine's
compressed kernels — **bit-identically** to the dense path on the
same weights, in both scalar and lane-packed form.  The planner's
cost profile must see those stages as cheaper.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.crypto.sparse import (
    SparseMatvecPlan,
    WORTHWHILE_MIN_SPARSITY,
    plan_if_worthwhile,
)
from repro.nn.rewrite import prune_model
from repro.planner.profiling import profile_primitive_times
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.clustering import cluster_model


class TestPlanIfWorthwhile:
    def test_sparse_matrix_gets_a_plan(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-1000, 1000, size=(16, 16))
        weights[np.abs(weights) < 700] = 0  # ~70% zeros
        plan = plan_if_worthwhile(weights)
        assert plan is not None
        assert plan.sparsity >= WORTHWHILE_MIN_SPARSITY

    def test_clustered_matrix_gets_a_plan(self):
        rng = np.random.default_rng(1)
        weights = rng.choice([-3, -1, 2, 5], size=(32, 16))
        plan = plan_if_worthwhile(weights)
        assert plan is not None
        assert plan.distinct_values <= 4

    def test_incompressible_matrix_stays_dense(self):
        """A dense matrix of mostly-distinct values must NOT be
        rerouted away from the thread-partitioned dense path."""
        rng = np.random.default_rng(2)
        weights = rng.permutation(np.arange(1, 257)).reshape(16, 16)
        assert plan_if_worthwhile(weights) is None

    def test_all_zero_matrix_gets_a_plan(self):
        plan = plan_if_worthwhile(np.zeros((4, 4), dtype=np.int64))
        assert plan is not None
        assert plan.nnz == 0


@pytest.fixture(scope="module")
def compressed_breast(trained_breast, breast_dataset):
    pruned, _ = prune_model(
        trained_breast, 0.7,
        inputs=breast_dataset.test_x, labels=breast_dataset.test_y,
    )
    model, _ = cluster_model(
        pruned, 8, seed=0,
        inputs=breast_dataset.test_x, labels=breast_dataset.test_y,
    )
    return model


def _providers(model, config):
    return (ModelProvider(model, decimals=3, config=config),
            DataProvider(value_decimals=3, config=config))


def _disable_plans(model_provider):
    for stage_plan in model_provider._linear_plans.values():
        stage_plan.matvec_plans[:] = \
            [None] * len(stage_plan.matvec_plans)


class TestSessionSetupPlans:
    def test_compressed_model_builds_plans_once_per_layer(
            self, compressed_breast):
        config = RuntimeConfig(key_size=128, seed=9)
        model_provider, _ = _providers(compressed_breast, config)
        plans = [
            plan
            for stage_plan in model_provider._linear_plans.values()
            for plan in stage_plan.matvec_plans
        ]
        assert plans, "no linear stages found"
        assert any(p is not None for p in plans)
        for stage_plan in model_provider._linear_plans.values():
            assert len(stage_plan.matvec_plans) == \
                len(stage_plan.affines)
            for plan, affine in zip(stage_plan.matvec_plans,
                                    stage_plan.affines):
                if plan is not None:
                    assert plan == SparseMatvecPlan.from_dense(
                        affine.weight
                    )

    def test_compression_stats_mirror_the_plans(
            self, compressed_breast, trained_breast):
        config = RuntimeConfig(key_size=128, seed=9)
        model_provider, _ = _providers(compressed_breast, config)
        stats = model_provider.compression_stats()
        assert len(stats) == len(model_provider.stages)
        planned = [s for s in stats if s is not None]
        assert planned
        for entry in planned:
            assert 0.0 < entry.density < 1.0

    def test_planner_charges_compressed_stages_less(
            self, compressed_breast):
        config = RuntimeConfig(key_size=128, seed=9)
        model_provider, _ = _providers(compressed_breast, config)
        cost_model = CostModel.reference()
        dense_times = profile_primitive_times(
            model_provider.stages, cost_model, 3
        )
        compressed_times = profile_primitive_times(
            model_provider.stages, cost_model, 3,
            compression=model_provider.compression_stats(),
        )
        stats = model_provider.compression_stats()
        assert any(
            c < d for c, d, s in zip(compressed_times, dense_times,
                                     stats)
            if s is not None
        )


class TestBitIdentity:
    def test_planned_path_equals_dense_path_scalar(
            self, compressed_breast, breast_dataset):
        """The compressed kernels are an *execution strategy*, not an
        approximation: same weights with plans disabled must produce
        byte-identical probabilities."""
        config = RuntimeConfig(key_size=128, seed=17)
        planned = InferenceSession(
            *_providers(compressed_breast, config)
        )
        dense_mp, dense_dp = _providers(compressed_breast, config)
        _disable_plans(dense_mp)
        dense = InferenceSession(dense_mp, dense_dp)
        for sample in breast_dataset.test_x[:2]:
            expected = dense.run(sample).probabilities
            got = planned.run(sample).probabilities
            assert np.array_equal(got, expected)

    def test_planned_path_equals_dense_path_packed(
            self, compressed_breast, breast_dataset):
        config = RuntimeConfig(key_size=256, seed=17, pack_lanes=2)
        planned = InferenceSession(
            *_providers(compressed_breast, config)
        )
        dense_mp, dense_dp = _providers(compressed_breast, config)
        _disable_plans(dense_mp)
        dense = InferenceSession(dense_mp, dense_dp)
        batch = np.asarray(breast_dataset.test_x[:2])
        expected = dense.run_batch(batch)
        got = planned.run_batch(batch)
        assert len(got) == len(expected) == 2
        for a, b in zip(got, expected):
            assert np.array_equal(a.probabilities, b.probabilities)
