"""Mechanical checks of the Section III-D security guarantees."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ProtocolError, SecurityViolationError
from repro.obfuscation.permutation import Permutation
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.protocol.message import Message
from repro.scaling.parameter_scaling import round_parameters


def make_pair(model, decimals=3, key_size=128, seed=5):
    config = RuntimeConfig(key_size=key_size, seed=seed)
    return (
        ModelProvider(model, decimals=decimals, config=config),
        DataProvider(value_decimals=decimals, config=config),
    )


class TestWireSecurity:
    def test_only_ciphertexts_on_the_wire(self, trained_breast,
                                          breast_dataset):
        """Eavesdroppers see ciphertexts only (passive-adversary
        guarantee)."""
        model_provider, data_provider = make_pair(trained_breast)
        session = InferenceSession(model_provider, data_provider)
        outcome = session.run(breast_dataset.test_x[0])
        assert outcome.transcript.all_ciphertext()

    def test_plaintext_message_kind_rejected(self):
        with pytest.raises(ProtocolError):
            Message(sender="data", kind="plaintext", elements=4,
                    bytes_estimate=32, round_index=0, stage_index=0)


class TestModelProviderView:
    def test_model_provider_never_sees_plaintext(self, trained_breast,
                                                 breast_dataset):
        model_provider, data_provider = make_pair(trained_breast)
        session = InferenceSession(model_provider, data_provider)
        session.run(breast_dataset.test_x[0])
        assert model_provider.observed
        assert all(kind == "ciphertext"
                   for kind in model_provider.observed)

    def test_model_provider_rejects_raw_arrays(self, trained_breast):
        model_provider, data_provider = make_pair(trained_breast)
        model_provider.register_public_key(data_provider.public_key)
        with pytest.raises(SecurityViolationError):
            model_provider.process_linear_stage(
                0, np.zeros(30), None, False
            )

    def test_ciphertexts_fresh_per_round(self, trained_breast,
                                         breast_dataset):
        """Re-encryption (step 2.3) produces fresh randomness: running
        the same input twice yields different wire bytes."""
        model_provider, data_provider = make_pair(trained_breast)
        session = InferenceSession(model_provider, data_provider)
        tensor_a = data_provider.encrypt_input(breast_dataset.test_x[0])
        tensor_b = data_provider.encrypt_input(breast_dataset.test_x[0])
        cells_a = [c.ciphertext for c in tensor_a.cells()]
        cells_b = [c.ciphertext for c in tensor_b.cells()]
        assert cells_a != cells_b


class TestDataProviderView:
    def test_intermediates_are_permuted(self, trained_breast,
                                        breast_dataset):
        """What the data provider decrypts mid-protocol must be a
        permutation of the true intermediate values, not the values in
        true order (except the final round)."""
        decimals = 3
        model_provider, data_provider = make_pair(trained_breast,
                                                  decimals=decimals)
        session = InferenceSession(model_provider, data_provider)
        sample = breast_dataset.test_x[0]
        session.run(sample)

        # Recompute true intermediates with the rounded model.
        rounded = round_parameters(trained_breast, decimals)
        x = np.round(sample, decimals)[None]
        true_linear_outputs = []
        current = x
        for layer in rounded.layers:
            current = layer.forward(current)
            if layer.kind.value == "linear":
                true_linear_outputs.append(current[0].copy())

        observed = data_provider.observed_plaintexts
        # intermediate observations: all but the last
        for seen, truth in zip(observed[:-1], true_linear_outputs):
            seen_sorted = np.sort(np.round(seen.reshape(-1), 2))
            truth_sorted = np.sort(np.round(truth.reshape(-1), 2))
            assert np.allclose(seen_sorted, truth_sorted, atol=0.02)
            if len(seen) > 4:
                assert not np.allclose(seen.reshape(-1),
                                       truth.reshape(-1), atol=1e-6)

    def test_final_round_not_permuted(self, trained_breast,
                                      breast_dataset):
        """The last tensor must arrive in true order for SoftMax."""
        decimals = 3
        model_provider, data_provider = make_pair(trained_breast,
                                                  decimals=decimals)
        session = InferenceSession(model_provider, data_provider)
        sample = breast_dataset.test_x[0]
        outcome = session.run(sample)
        rounded = round_parameters(trained_breast, decimals)
        expected = rounded.forward(np.round(sample, decimals)[None])[0]
        assert np.allclose(outcome.probabilities, expected, atol=1e-6)

    def test_softmax_on_obfuscated_rejected(self, trained_breast):
        model_provider, data_provider = make_pair(trained_breast)
        tensor = data_provider.encrypt_input(np.zeros(4))
        with pytest.raises(SecurityViolationError):
            data_provider.process_nonlinear_stage(
                tensor, ["softmax"], final=False
            )


class TestObfuscationStrength:
    def test_permutation_space_matches_paper(self):
        """Section III-D: P! possible permutations; for P = 8192 the
        guessing probability 1/P! is negligible.  Sanity-check the
        count for a small P by enumeration."""
        import itertools

        length = 5
        seen = {
            tuple(Permutation.random(length, seed).order)
            for seed in range(2000)
        }
        # all 5! = 120 permutations reachable
        assert seen == set(itertools.permutations(range(length)))

    def test_fresh_seeds_across_rounds(self, trained_breast,
                                       breast_dataset):
        """Steps 1.4 / 2.7: different random permutations per round."""
        model_provider, data_provider = make_pair(trained_breast)
        session = InferenceSession(model_provider, data_provider)
        session.run(breast_dataset.test_x[0])
        history = model_provider._obfuscator.history()
        same_length = {}
        for record in history:
            same_length.setdefault(record.permutation.length,
                                   []).append(record.permutation)
        for permutations in same_length.values():
            if len(permutations) > 1:
                assert len(set(permutations)) == len(permutations)
