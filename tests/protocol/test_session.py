"""Integration tests for the Figure 3 collaborative workflow."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ProtocolError
from repro.nn.layers import FullyConnected, ReLU, Sigmoid, SoftMax
from repro.nn.model import Sequential
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.parameter_scaling import round_parameters


def make_session(model, decimals=3, key_size=128, seed=77):
    config = RuntimeConfig(key_size=key_size, seed=seed)
    model_provider = ModelProvider(model, decimals=decimals,
                                   config=config)
    data_provider = DataProvider(value_decimals=decimals, config=config)
    return InferenceSession(model_provider, data_provider)


class TestCorrectness:
    """The paper's correctness guarantee: same results as plain
    inference (with parameters rounded at the chosen factor)."""

    def test_matches_rounded_plaintext_model(self, trained_breast,
                                             breast_dataset):
        decimals = 3
        session = make_session(trained_breast, decimals=decimals)
        rounded = round_parameters(trained_breast, decimals)
        for sample in breast_dataset.test_x[:6]:
            outcome = session.run(sample)
            expected = rounded.forward(
                np.round(sample, decimals)[None]
            )[0]
            assert outcome.prediction == int(expected.argmax())
            assert np.allclose(outcome.probabilities, expected,
                               atol=1e-6)

    def test_conv_model(self, tiny_conv_model):
        session = make_session(tiny_conv_model, decimals=2,
                               key_size=192)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (1, 8, 8))
        outcome = session.run(x)
        plain = tiny_conv_model.forward(x[None])[0]
        # conv weights are small; rounding to 2 decimals may flip very
        # close calls, so compare probabilities loosely
        assert outcome.probabilities == pytest.approx(plain, abs=0.05)

    def test_sigmoid_activation_path(self):
        model = Sequential((3,))
        model.add(FullyConnected(3, 4,
                                 rng=np.random.default_rng(1)))
        model.add(Sigmoid())
        model.add(FullyConnected(4, 2,
                                 rng=np.random.default_rng(2)))
        model.add(SoftMax())
        session = make_session(model, decimals=4, key_size=192)
        x = np.array([0.5, -0.3, 0.8])
        outcome = session.run(x)
        expected = round_parameters(model, 4).forward(
            np.round(x, 4)[None]
        )[0]
        assert np.allclose(outcome.probabilities, expected, atol=1e-4)

    def test_batch(self, trained_breast, breast_dataset):
        session = make_session(trained_breast)
        outcomes = session.run_batch(breast_dataset.test_x[:3])
        assert len(outcomes) == 3


class TestWorkflowStructure:
    def test_round_count_matches_stage_pairs(self, trained_breast):
        session = make_session(trained_breast)
        outcome = session.run(np.zeros(30))
        # 3FC -> 3 (linear, nonlinear) pairs -> 3 rounds, 2 msgs each
        assert outcome.transcript.rounds == 3
        assert len(outcome.transcript.messages) == 6

    def test_alternation_enforced(self):
        model = Sequential((4,))
        model.add(ReLU())  # starts non-linear
        model.add(FullyConnected(4, 2))
        model.add(SoftMax())
        config = RuntimeConfig(key_size=128)
        model_provider = ModelProvider(model, decimals=2, config=config)
        data_provider = DataProvider(value_decimals=2, config=config)
        with pytest.raises(ProtocolError):
            InferenceSession(model_provider, data_provider)

    def test_must_end_nonlinear(self):
        model = Sequential((4,))
        model.add(FullyConnected(4, 2))
        config = RuntimeConfig(key_size=128)
        model_provider = ModelProvider(model, decimals=2, config=config)
        data_provider = DataProvider(value_decimals=2, config=config)
        with pytest.raises(ProtocolError):
            InferenceSession(model_provider, data_provider)

    def test_last_model_message_not_obfuscated(self, trained_breast):
        """Step 3.4: the final linear output is sent without
        obfuscation so SoftMax sees true positions."""
        session = make_session(trained_breast)
        outcome = session.run(np.zeros(30))
        model_messages = outcome.transcript.from_sender("model")
        assert not model_messages[-1].obfuscated
        for message in model_messages[:-1]:
            assert message.obfuscated

    def test_first_data_message_not_obfuscated(self, trained_breast):
        """Step 1.2: the raw encrypted input is not permuted."""
        session = make_session(trained_breast)
        outcome = session.run(np.zeros(30))
        first = outcome.transcript.messages[0]
        assert first.sender == "data"
        assert not first.obfuscated

    def test_intermediate_data_messages_keep_permutation(
            self, trained_breast):
        """Steps 2.4/3.1: tensors return still permuted (the model
        provider inverts them)."""
        session = make_session(trained_breast)
        outcome = session.run(np.zeros(30))
        data_messages = outcome.transcript.from_sender("data")
        for message in data_messages[1:]:
            assert message.obfuscated
