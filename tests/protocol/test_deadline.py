"""Per-inference deadlines on the sequential protocol session."""

import pytest

from repro.config import RuntimeConfig
from repro.errors import DeadlineExceededError, ProtocolError
from repro.protocol import DataProvider, InferenceSession, ModelProvider


def make_session(model, seed=31):
    config = RuntimeConfig(key_size=128, seed=seed)
    return InferenceSession(
        ModelProvider(model, decimals=3, config=config),
        DataProvider(value_decimals=3, config=config),
    )


class TestSessionDeadline:
    def test_generous_deadline_succeeds(self, trained_breast,
                                        breast_dataset):
        session = make_session(trained_breast)
        sample = breast_dataset.test_x[0]
        outcome = session.run(sample, deadline=300.0)
        assert outcome.prediction == session.run(sample).prediction

    def test_tiny_deadline_raises_with_progress(self, trained_breast,
                                                breast_dataset):
        session = make_session(trained_breast)
        with pytest.raises(DeadlineExceededError,
                           match="rounds complete"):
            session.run(breast_dataset.test_x[0], deadline=1e-9)

    def test_nonpositive_deadline_rejected(self, trained_breast,
                                           breast_dataset):
        session = make_session(trained_breast)
        for bad in (0.0, -1.0):
            with pytest.raises(ProtocolError):
                session.run(breast_dataset.test_x[0], deadline=bad)

    def test_batch_deadline_applies_per_sample(self, trained_breast,
                                               breast_dataset):
        session = make_session(trained_breast)
        with pytest.raises(DeadlineExceededError):
            session.run_batch(breast_dataset.test_x[:2],
                              deadline=1e-9)
