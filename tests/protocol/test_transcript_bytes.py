"""Transcript byte accounting: every message records its exact framed
wire size (``bytes_actual``), the analytic estimate stays available as
a cross-check, and the two agree up to the known frame overhead."""

import numpy as np

from repro.config import RuntimeConfig
from repro.crypto.serialize import ciphertext_bytes, tensor_frame_bytes
from repro.protocol import DataProvider, InferenceSession, ModelProvider

KEY_SIZE = 128

# A rank-1 scalar v2 frame over the analytic estimate: 15-byte header
# + one 4-byte dim word.  Packed frames add the 8-byte lane extension.
SCALAR_RANK1_OVERHEAD = (
    tensor_frame_bytes(KEY_SIZE, rank=1, size=1)
    - ciphertext_bytes(KEY_SIZE)
)


def make_session(model, pack_lanes=0, seed=77):
    config = RuntimeConfig(key_size=KEY_SIZE, seed=seed,
                           pack_lanes=pack_lanes)
    model_provider = ModelProvider(model, decimals=3, config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    return InferenceSession(model_provider, data_provider)


class TestActualBytes:
    def test_every_message_has_actual_bytes(self, trained_breast,
                                            breast_dataset):
        session = make_session(trained_breast)
        outcome = session.run(breast_dataset.test_x[0])
        assert outcome.transcript.messages
        for message in outcome.transcript.messages:
            assert message.bytes_actual is not None
            assert message.bytes_actual > 0

    def test_totals_prefer_actual_and_keep_estimate(
            self, trained_breast, breast_dataset):
        session = make_session(trained_breast)
        transcript = session.run(breast_dataset.test_x[0]).transcript
        assert transcript.total_bytes == sum(
            m.bytes_actual for m in transcript.messages
        )
        assert transcript.total_bytes_estimate == sum(
            m.bytes_estimate for m in transcript.messages
        )
        assert transcript.total_bytes > transcript.total_bytes_estimate

    def test_agreement_is_exactly_the_frame_overhead(
            self, trained_breast, breast_dataset):
        """The analytic estimate is ``elements * ciphertext_bytes``;
        the actual size adds exactly one frame header per message (all
        breast-model tensors are rank-1 scalar frames)."""
        session = make_session(trained_breast)
        transcript = session.run(breast_dataset.test_x[0]).transcript
        cipher = ciphertext_bytes(KEY_SIZE)
        for message in transcript.messages:
            assert message.bytes_estimate == message.elements * cipher
            assert (message.bytes_actual - message.bytes_estimate
                    == SCALAR_RANK1_OVERHEAD)

    def test_packed_messages_carry_the_lane_extension(
            self, trained_breast, breast_dataset):
        # Lane packing needs headroom a 128-bit modulus can't give;
        # use 256-bit keys like the packed-session suite.
        config = RuntimeConfig(key_size=256, seed=77, pack_lanes=4)
        session = InferenceSession(
            ModelProvider(trained_breast, decimals=3, config=config),
            DataProvider(value_decimals=3, config=config),
        )
        outcomes = session.run_batch(breast_dataset.test_x[:4])
        transcript = outcomes[0].transcript
        packed_overhead = (
            tensor_frame_bytes(256, rank=1, size=1, packed=True)
            - ciphertext_bytes(256)
        )
        overheads = {m.bytes_actual - m.bytes_estimate
                     for m in transcript.messages}
        assert packed_overhead in overheads

    def test_packed_batch_moves_fewer_wire_bytes(self, trained_breast,
                                                 breast_dataset):
        """The point of lane packing: 4 samples in one packed session
        must ship fewer total bytes than 4 scalar sessions."""
        samples = breast_dataset.test_x[:4]

        def session_at(pack_lanes):
            config = RuntimeConfig(key_size=256, seed=77,
                                   pack_lanes=pack_lanes)
            return InferenceSession(
                ModelProvider(trained_breast, decimals=3,
                              config=config),
                DataProvider(value_decimals=3, config=config),
            )

        scalar_bytes = sum(
            session_at(0).run(x).transcript.total_bytes
            for x in samples
        )
        outcomes = session_at(4).run_batch(samples)
        packed_bytes = outcomes[0].transcript.total_bytes
        assert packed_bytes < scalar_bytes

    def test_estimate_tracks_the_paper_figure(self, trained_breast,
                                              breast_dataset):
        """Section V sizing: 2 bytes per modulus bit per element."""
        session = make_session(trained_breast)
        transcript = session.run(breast_dataset.test_x[0]).transcript
        assert transcript.total_bytes_estimate == (
            transcript.total_elements * 2 * KEY_SIZE // 8
        )
