"""Unit tests for RuntimeConfig and the cost model."""

import pytest

from repro.config import DEFAULT_CONFIG, PAPER_KEY_SIZE, RuntimeConfig
from repro.costs import CostModel
from repro.errors import ConfigurationError


class TestRuntimeConfig:
    def test_defaults_valid(self):
        assert DEFAULT_CONFIG.key_size >= 64
        assert PAPER_KEY_SIZE == 2048

    def test_key_size_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(key_size=32)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(key_size=129)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(scaling_threshold=-0.1)

    def test_cost_profile_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(cost_profile="gpu")

    def test_with_key_size(self):
        config = RuntimeConfig().with_key_size(512)
        assert config.key_size == 512
        assert config.seed == RuntimeConfig().seed

    def test_with_seed(self):
        assert RuntimeConfig().with_seed(7).seed == 7

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.key_size = 1024  # type: ignore[misc]


class TestCostModel:
    def test_reference_profile_shape(self):
        """Fig. 1 anchors: enc/dec in milliseconds per element,
        arithmetic in microseconds."""
        model = CostModel.reference()
        assert model.key_size == 2048
        assert model.encrypt > 100 * model.ciphertext_add
        assert model.decrypt > 100 * model.ciphertext_add
        assert model.ciphertext_bytes == 512

    def test_ciphertext_mul_grows_with_bits(self):
        model = CostModel.reference()
        assert model.ciphertext_mul(40) > model.ciphertext_mul(4)

    def test_scalar_bits_for_decimals(self):
        model = CostModel.reference()
        assert model.scalar_bits_for_decimals(0) >= 1
        assert model.scalar_bits_for_decimals(6) > \
            model.scalar_bits_for_decimals(0)

    def test_transfer_time(self):
        model = CostModel.reference()
        encrypted = model.transfer_time(1000, encrypted=True)
        plain = model.transfer_time(1000, encrypted=False)
        assert encrypted > plain > 0

    def test_scaled(self):
        model = CostModel.reference()
        double = model.scaled(2.0)
        assert double.encrypt == pytest.approx(2 * model.encrypt)
        # network untouched
        assert double.network_latency == model.network_latency

    def test_scaled_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel.reference().scaled(0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(
                key_size=128, encrypt=-1, decrypt=0,
                ciphertext_add=0, ciphertext_mul_base=0,
                ciphertext_mul_per_bit=0, plain_op=0,
                permute_element=0, serialize_element=0,
                network_latency=0, network_bandwidth=1,
                ciphertext_bytes=32,
            )

    def test_calibrate_produces_positive_costs(self):
        model = CostModel.calibrate(128, samples=12)
        assert model.encrypt > 0
        assert model.decrypt > 0
        assert model.ciphertext_add > 0
        assert model.ciphertext_mul(20) > 0
        assert model.permute_element > 0

    def test_calibrate_scales_with_key_size(self):
        small = CostModel.calibrate(128, samples=12)
        large = CostModel.calibrate(512, samples=12)
        assert large.encrypt > small.encrypt
        assert large.decrypt > small.decrypt

    def test_calibrate_sample_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel.calibrate(128, samples=2)
