"""EzPC baseline on a convolutional model (2PC conv via dense matmul)."""

import numpy as np
import pytest

from repro.baselines import EzPCBaseline


class TestEzPCConv:
    @pytest.fixture(scope="class")
    def tiny_conv(self, request):
        return request.getfixturevalue("tiny_conv_model")

    def test_conv_predictions_match(self, tiny_conv):
        ezpc = EzPCBaseline(tiny_conv, max_real_relu=4)
        rng = np.random.default_rng(0)
        agree = 0
        for _ in range(3):
            x = rng.uniform(0, 1, (1, 8, 8))
            prediction, _ = ezpc.infer(x)
            plain = int(tiny_conv.predict(x[None])[0])
            agree += prediction == plain
        assert agree == 3

    def test_conv_costs_more_than_fc(self, tiny_conv, trained_breast):
        conv_engine = EzPCBaseline(tiny_conv, max_real_relu=4)
        fc_engine = EzPCBaseline(trained_breast, max_real_relu=4)
        rng = np.random.default_rng(1)
        _, conv_latency = conv_engine.infer(rng.uniform(0, 1, (1, 8, 8)))
        _, fc_latency = fc_engine.infer(rng.standard_normal(30))
        # the conv model has far more ReLU elements -> more AND gates
        assert conv_latency.and_gates > fc_latency.and_gates
