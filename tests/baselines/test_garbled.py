"""Unit tests for garbled circuits (free-XOR, point-and-permute)."""

import random

import pytest

from repro.baselines.garbled import (
    CircuitBuilder,
    build_relu_circuit,
    evaluate_garbled,
    garble,
)
from repro.errors import BaselineError


def to_bits(value, bits):
    value &= (1 << bits) - 1
    return [(value >> i) & 1 for i in range(bits)]


def from_bits(bits_list):
    return sum(bit << i for i, bit in enumerate(bits_list))


def signed(value, bits):
    value &= (1 << bits) - 1
    return value - (1 << bits) if value >= 1 << (bits - 1) else value


class TestCircuitBuilder:
    def test_xor_and_gates(self):
        builder = CircuitBuilder(2)
        out_xor = builder.xor(0, 1)
        out_and = builder.and_(0, 1)
        circuit = builder.finish([out_xor, out_and])
        for a in (0, 1):
            for b in (0, 1):
                assert circuit.evaluate_plain([a, b]) == [a ^ b, a & b]

    def test_not_or_mux(self):
        builder = CircuitBuilder(3)
        out_not = builder.not_(0)
        out_or = builder.or_(0, 1)
        out_mux = builder.mux(2, 0, 1)  # 2 ? a : b
        circuit = builder.finish([out_not, out_or, out_mux])
        for a in (0, 1):
            for b in (0, 1):
                for s in (0, 1):
                    result = circuit.evaluate_plain([a, b, s])
                    assert result == [1 - a, a | b, a if s else b]

    def test_adder(self):
        bits = 8
        builder = CircuitBuilder(2 * bits)
        out = builder.add(list(range(bits)),
                          list(range(bits, 2 * bits)))
        circuit = builder.finish(out)
        rng = random.Random(0)
        for _ in range(20):
            a = rng.randrange(0, 256)
            b = rng.randrange(0, 256)
            result = from_bits(circuit.evaluate_plain(
                to_bits(a, bits) + to_bits(b, bits)
            ))
            assert result == (a + b) % 256

    def test_adder_width_mismatch(self):
        builder = CircuitBuilder(8)
        with pytest.raises(BaselineError):
            builder.add([0, 1], [2, 3, 4])

    def test_gate_counts(self):
        """Full adder costs exactly 1 AND (the standard trick)."""
        bits = 16
        builder = CircuitBuilder(2 * bits)
        out = builder.add(list(range(bits)),
                          list(range(bits, 2 * bits)))
        circuit = builder.finish(out)
        assert circuit.and_count == bits


class TestReluCircuit:
    @pytest.mark.parametrize("bits", [8, 16])
    def test_plain_semantics(self, bits):
        circuit = build_relu_circuit(bits)
        rng = random.Random(1)
        for _ in range(30):
            x = rng.randrange(-(1 << (bits - 2)), 1 << (bits - 2))
            a = rng.randrange(0, 1 << bits)
            b = (x - a) % (1 << bits)
            mask = rng.randrange(0, 1 << bits)
            out = circuit.evaluate_plain(
                to_bits(a, bits) + to_bits(b, bits) + to_bits(mask,
                                                              bits)
            )
            assert from_bits(out) == (max(x, 0) - mask) % (1 << bits)

    def test_and_count_linear_in_width(self):
        assert build_relu_circuit(32).and_count == 2 * \
            build_relu_circuit(16).and_count


class TestGarbling:
    def test_garbled_equals_plain(self):
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"fixed")
        rng = random.Random(2)
        for _ in range(15):
            bits = [rng.randrange(0, 2)
                    for _ in range(circuit.num_inputs - 2)]
            plain = circuit.evaluate_plain(bits)
            labels = garbled.input_labels(bits)
            out_labels = evaluate_garbled(garbled, labels)
            assert garbled.decode(out_labels) == plain

    def test_deterministic_with_seed(self):
        circuit = build_relu_circuit(8)
        a = garble(circuit, seed=b"s")
        b = garble(circuit, seed=b"s")
        assert a.zero_labels == b.zero_labels

    def test_fresh_without_seed(self):
        circuit = build_relu_circuit(8)
        a = garble(circuit)
        b = garble(circuit)
        assert a.zero_labels != b.zero_labels

    def test_free_xor_no_tables(self):
        """XOR gates must produce no garbled tables (free-XOR)."""
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"t")
        assert len(garbled.tables) == circuit.and_count

    def test_table_bytes(self):
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"t")
        assert garbled.table_bytes == circuit.and_count * 4 * 16

    def test_offset_low_bit_set(self):
        """Point-and-permute requires R's permute bit to be 1."""
        garbled = garble(build_relu_circuit(8), seed=b"u")
        assert garbled.offset[0] & 1 == 1

    def test_wrong_label_count_rejected(self):
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"v")
        with pytest.raises(BaselineError):
            evaluate_garbled(garbled, [b"x" * 16])

    def test_decode_rejects_garbage(self):
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"w")
        with pytest.raises(BaselineError):
            garbled.decode([b"\x00" * 16] * len(circuit.outputs))

    def test_evaluator_sees_one_label_per_wire(self):
        """The evaluator's labels reveal nothing positionally: each
        input label is either the zero or one label, 16 bytes of
        uniform-looking bytes."""
        circuit = build_relu_circuit(8)
        garbled = garble(circuit, seed=b"z")
        labels = garbled.input_labels([0] * (circuit.num_inputs - 2))
        assert all(len(label) == 16 for label in labels)
