"""Unit tests for the additive secret-sharing engine."""

import numpy as np
import pytest

from repro.baselines.secret_sharing import (
    AdditiveShare,
    SecretSharingEngine,
)
from repro.errors import BaselineError


class TestSharing:
    def test_round_trip(self):
        engine = SecretSharingEngine(seed=0)
        values = np.array([5, -17, 0, 123456789])
        s0, s1 = engine.share(values)
        assert np.array_equal(engine.reconstruct(s0, s1), values)

    def test_shares_look_random(self):
        engine = SecretSharingEngine(seed=1)
        values = np.zeros(1000, dtype=np.int64)
        s0, _ = engine.share(values)
        # a zero vector's share must not itself be zero
        assert np.count_nonzero(s0.values) > 990

    def test_party_validation(self):
        with pytest.raises(BaselineError):
            AdditiveShare(2, np.zeros(3))

    def test_communication_counted(self):
        engine = SecretSharingEngine(seed=2)
        s0, s1 = engine.share(np.arange(10))
        engine.reconstruct(s0, s1)
        assert engine.rounds == 1
        assert engine.bytes_exchanged == 2 * 8 * 10


class TestLinearOps:
    def test_add(self):
        engine = SecretSharingEngine(seed=3)
        a0, a1 = engine.share(np.array([1, 2]))
        b0, b1 = engine.share(np.array([10, -20]))
        total = engine.reconstruct(
            SecretSharingEngine.add(a0, b0),
            SecretSharingEngine.add(a1, b1),
        )
        assert np.array_equal(total, [11, -18])

    def test_add_public(self):
        engine = SecretSharingEngine(seed=4)
        x0, x1 = engine.share(np.array([5, 5]))
        y0 = SecretSharingEngine.add_public(x0, np.array([1, -2]))
        y1 = SecretSharingEngine.add_public(x1, np.array([1, -2]))
        assert np.array_equal(engine.reconstruct(y0, y1), [6, 3])

    def test_mul_public(self):
        engine = SecretSharingEngine(seed=5)
        x0, x1 = engine.share(np.array([7, -3]))
        y0 = SecretSharingEngine.mul_public(x0, np.array([2, 5]))
        y1 = SecretSharingEngine.mul_public(x1, np.array([2, 5]))
        assert np.array_equal(engine.reconstruct(y0, y1), [14, -15])

    def test_matmul_public(self):
        engine = SecretSharingEngine(seed=6)
        x0, x1 = engine.share(np.array([1, 2, 3]))
        matrix = np.array([[1, 0, 2], [0, -1, 1]])
        y0 = SecretSharingEngine.matmul_public(matrix, x0)
        y1 = SecretSharingEngine.matmul_public(matrix, x1)
        assert np.array_equal(engine.reconstruct(y0, y1), [7, 1])


class TestBeaver:
    def test_elementwise_multiply(self):
        engine = SecretSharingEngine(seed=7)
        x0, x1 = engine.share(np.array([3, -4, 0]))
        y0, y1 = engine.share(np.array([5, 6, 7]))
        z0, z1 = engine.multiply(x0, x1, y0, y1)
        assert np.array_equal(engine.reconstruct(z0, z1), [15, -24, 0])
        assert engine.triples_consumed == 1

    def test_matmul_shared(self):
        engine = SecretSharingEngine(seed=8)
        matrix = np.array([[2, 1], [0, -3], [4, 4]])
        vector = np.array([5, -2])
        w0, w1 = engine.share(matrix)
        x0, x1 = engine.share(vector)
        z0, z1 = engine.matmul_shared(w0, w1, x0, x1)
        assert np.array_equal(engine.reconstruct(z0, z1),
                              matrix @ vector)

    def test_matmul_shared_shape_validation(self):
        engine = SecretSharingEngine(seed=9)
        w0, w1 = engine.share(np.zeros((2, 3), dtype=np.int64))
        x0, x1 = engine.share(np.zeros(4, dtype=np.int64))
        with pytest.raises(BaselineError):
            engine.matmul_shared(w0, w1, x0, x1)

    def test_multiply_random(self):
        engine = SecretSharingEngine(seed=10)
        rng = np.random.default_rng(0)
        for _ in range(5):
            a = rng.integers(-10 ** 6, 10 ** 6, 16)
            b = rng.integers(-10 ** 6, 10 ** 6, 16)
            a0, a1 = engine.share(a)
            b0, b1 = engine.share(b)
            z0, z1 = engine.multiply(a0, a1, b0, b1)
            assert np.array_equal(engine.reconstruct(z0, z1), a * b)


class TestTruncation:
    def test_truncate_positive_and_negative(self):
        engine = SecretSharingEngine(seed=11)
        values = np.array([4096, -8192, 12345])
        x0, x1 = engine.share(values)
        t0, t1 = engine.truncate(x0, x1, 8)
        result = engine.reconstruct(t0, t1)
        expected = values // 256
        # SecureML local truncation: off by at most 1
        assert np.all(np.abs(result - expected) <= 1)

    def test_negative_bits_rejected(self):
        engine = SecretSharingEngine(seed=12)
        x0, x1 = engine.share(np.array([1]))
        with pytest.raises(BaselineError):
            engine.truncate(x0, x1, -1)
