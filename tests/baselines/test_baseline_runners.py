"""Tests for PlainBase, CipherBase, the EzPC engine, and reported
numbers."""

import numpy as np
import pytest

from repro.baselines import (
    CipherBase,
    EzPCBaseline,
    PlainBase,
    REPORTED_LATENCIES,
)
from repro.baselines.reported import reported_for
from repro.config import RuntimeConfig
from repro.errors import BaselineError


class TestPlainBase:
    def test_matches_model_forward(self, trained_breast,
                                   breast_dataset):
        runner = PlainBase(trained_breast)
        sample = breast_dataset.test_x[0]
        result = runner.infer(sample)
        expected = trained_breast.forward(sample[None])[0]
        assert result.prediction == int(expected.argmax())
        assert np.allclose(result.probabilities, expected)
        assert result.latency > 0

    def test_batch(self, trained_breast, breast_dataset):
        runner = PlainBase(trained_breast)
        results = runner.infer_batch(breast_dataset.test_x[:4])
        assert len(results) == 4

    def test_batch_validation(self, trained_breast):
        runner = PlainBase(trained_breast)
        with pytest.raises(BaselineError):
            runner.infer_batch(np.zeros(30))


class TestCipherBase:
    def test_matches_protocol_semantics(self, trained_breast,
                                        breast_dataset):
        """CipherBase must produce the same predictions as the rounded
        plaintext model (correctness of the centralized encrypted
        path)."""
        from repro.scaling.parameter_scaling import round_parameters

        config = RuntimeConfig(key_size=128, seed=31)
        runner = CipherBase(trained_breast, decimals=3, config=config)
        rounded = round_parameters(trained_breast, 3)
        for sample in breast_dataset.test_x[:4]:
            result = runner.infer(sample)
            expected = rounded.forward(np.round(sample, 3)[None])[0]
            assert result.prediction == int(expected.argmax())
            assert np.allclose(result.probabilities, expected,
                               atol=1e-6)

    def test_slower_than_plain(self, trained_breast, breast_dataset):
        """The Exp#2 motivation: encryption costs orders of magnitude."""
        config = RuntimeConfig(key_size=128, seed=32)
        cipher = CipherBase(trained_breast, decimals=3, config=config)
        plain = PlainBase(trained_breast)
        sample = breast_dataset.test_x[0]
        assert cipher.infer(sample).latency > \
            10 * plain.infer(sample).latency


class TestEzPCBaseline:
    def test_prediction_matches_plaintext(self, trained_breast,
                                          breast_dataset):
        ezpc = EzPCBaseline(trained_breast, max_real_relu=8)
        for sample in breast_dataset.test_x[:3]:
            prediction, _ = ezpc.infer(sample)
            expected = int(trained_breast.predict(sample[None])[0])
            assert prediction == expected

    def test_latency_breakdown(self, trained_breast, breast_dataset):
        ezpc = EzPCBaseline(trained_breast, max_real_relu=8)
        _, latency = ezpc.infer(breast_dataset.test_x[0])
        assert latency.compute_seconds > 0
        assert latency.network_seconds > 0
        assert latency.rounds > 0
        assert latency.bytes_exchanged > 0
        assert latency.and_gates > 0
        assert latency.total_seconds == pytest.approx(
            latency.compute_seconds + latency.network_seconds
        )

    def test_gate_count_scales_with_relu_width(self, trained_breast,
                                               breast_dataset):
        """AND-gate totals are exact even when GC evaluation samples."""
        ezpc = EzPCBaseline(trained_breast, max_real_relu=4)
        _, latency = ezpc.infer(breast_dataset.test_x[0])
        from repro.baselines.garbled import build_relu_circuit
        from repro.baselines.ezpc import RELU_BITS

        per_relu = build_relu_circuit(RELU_BITS).and_count
        # breast 3FC: hidden ReLUs 64 + 32 = 96
        assert latency.and_gates == 96 * per_relu

    def test_fraction_bits_validation(self, trained_breast):
        with pytest.raises(BaselineError):
            EzPCBaseline(trained_breast, fraction_bits=0)


class TestReported:
    def test_table_vii_numbers(self):
        assert reported_for("SecureML", "mnist-1").latency_seconds == \
            pytest.approx(4.88)
        assert reported_for("CryptoNets", "mnist-2").latency_seconds \
            == pytest.approx(297.5)
        assert reported_for("CryptoDL", "mnist-2").latency_seconds == \
            pytest.approx(320.0)

    def test_provenance_recorded(self):
        for result in REPORTED_LATENCIES:
            assert result.source
            assert result.environment

    def test_unknown_pair_rejected(self):
        with pytest.raises(BaselineError):
            reported_for("SecureML", "mnist-3")
