"""Unit tests for the synthetic dataset generators and registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_SPECS,
    load_dataset,
    make_image_classification,
    make_tabular_classification,
)
from repro.errors import DatasetError


class TestTabular:
    def test_shapes_and_split(self):
        ds = make_tabular_classification(100, 5, test_fraction=0.2,
                                         seed=0)
        assert ds.train_x.shape == (80, 5)
        assert ds.test_x.shape == (20, 5)
        assert ds.sample_shape == (5,)

    def test_deterministic(self):
        a = make_tabular_classification(50, 4, seed=7)
        b = make_tabular_classification(50, 4, seed=7)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.train_y, b.train_y)

    def test_seed_sensitivity(self):
        a = make_tabular_classification(50, 4, seed=1)
        b = make_tabular_classification(50, 4, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_standardized(self):
        ds = make_tabular_classification(500, 6, seed=3)
        combined = np.vstack([ds.train_x, ds.test_x])
        assert np.allclose(combined.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(combined.std(axis=0), 1.0, atol=1e-6)

    def test_difficulty_controls_separability(self):
        """Lower difficulty -> nearest-prototype accuracy higher."""

        def proto_accuracy(difficulty):
            ds = make_tabular_classification(
                400, 8, difficulty=difficulty, seed=4
            )
            centroids = np.stack([
                ds.train_x[ds.train_y == c].mean(axis=0)
                for c in range(ds.num_classes)
            ])
            distance = np.linalg.norm(
                ds.test_x[:, None, :] - centroids[None], axis=2
            )
            return float(np.mean(distance.argmin(axis=1) == ds.test_y))

        assert proto_accuracy(0.2) > proto_accuracy(2.5)

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_tabular_classification(5, 3)
        with pytest.raises(DatasetError):
            make_tabular_classification(100, 3, difficulty=0)
        with pytest.raises(DatasetError):
            make_tabular_classification(100, 3, test_fraction=1.5)


class TestImages:
    def test_shapes(self):
        ds = make_image_classification(60, 3, 8, 8, num_classes=4,
                                       seed=0)
        assert ds.train_x.shape[1:] == (3, 8, 8)
        assert ds.num_classes == 4

    def test_pixel_range(self):
        ds = make_image_classification(60, 1, 8, 8, seed=1)
        assert ds.train_x.min() >= 0.0
        assert ds.train_x.max() <= 1.0

    def test_labels_cover_classes(self):
        ds = make_image_classification(300, 1, 8, 8, num_classes=5,
                                       seed=2)
        assert set(np.unique(ds.train_y)) == set(range(5))

    def test_deterministic(self):
        a = make_image_classification(40, 1, 6, 6, seed=9)
        b = make_image_classification(40, 1, 6, 6, seed=9)
        assert np.array_equal(a.test_x, b.test_x)


class TestRegistry:
    def test_all_table_iii_rows_present(self):
        expected = {
            "breast", "heart", "cardio", "mnist-1", "mnist-2",
            "mnist-3", "cifar-10-1", "cifar-10-2", "cifar-10-3",
        }
        assert set(DATASET_SPECS) == expected

    @pytest.mark.parametrize("key,shape", [
        ("breast", (30,)),
        ("heart", (13,)),
        ("cardio", (11,)),
        ("mnist-1", (1, 28, 28)),
        ("cifar-10-1", (3, 32, 32)),
    ])
    def test_shapes_match_paper(self, key, shape):
        ds = load_dataset(key)
        assert ds.sample_shape == shape

    def test_server_split_matches_table_iii(self):
        assert (DATASET_SPECS["mnist-3"].model_servers,
                DATASET_SPECS["mnist-3"].data_servers) == (2, 2)
        assert (DATASET_SPECS["cifar-10-1"].model_servers,
                DATASET_SPECS["cifar-10-1"].data_servers) == (6, 3)

    def test_paper_sample_counts_recorded(self):
        spec = DATASET_SPECS["mnist-1"]
        assert (spec.paper_train, spec.paper_test) == (60000, 10000)

    def test_unknown_key(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_cached(self):
        assert load_dataset("breast") is load_dataset("breast")

    def test_scale_parameter(self):
        small = load_dataset("heart", scale=0.5, seed=11)
        full = load_dataset("heart", scale=1.0, seed=11)
        assert small.train_x.shape[0] < full.train_x.shape[0]
