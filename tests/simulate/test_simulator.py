"""Unit tests for stage costs and pipeline simulation."""

import numpy as np
import pytest

from repro.costs import CostModel
from repro.errors import SimulationError
from repro.nn.layers import Conv2d, Flatten, FullyConnected, ReLU, \
    SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import allocate_even, \
    allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.planner.profiling import profile_primitive_times
from repro.simulate.events import EventDrivenPipeline
from repro.simulate.simulator import (
    PipelineSimulator,
    centralized_cipher_latency,
    centralized_plain_latency,
)
from repro.simulate.stagecosts import stage_costs


def fc_model():
    model = Sequential((8,))
    model.add(FullyConnected(8, 16))
    model.add(ReLU())
    model.add(FullyConnected(16, 2))
    model.add(SoftMax())
    return model


def conv_model():
    model = Sequential((1, 6, 6))
    model.add(Conv2d(1, 2, kernel=3, padding=1))
    model.add(ReLU())
    model.add(Flatten())
    model.add(FullyConnected(72, 2))
    model.add(SoftMax())
    return model


def make_plan(model, cores=4, partitioning=True, balanced=False):
    stages = model_stages(model)
    cluster = ClusterSpec.homogeneous(1, 1, cores)
    if balanced:
        times = profile_primitive_times(stages, CostModel.reference(),
                                        4)
        return allocate_load_balanced(
            stages, times, cluster, method="water_filling",
            use_tensor_partitioning=partitioning,
        ).plan
    return allocate_even(stages, cluster,
                         use_tensor_partitioning=partitioning).plan


class TestStageCosts:
    def test_components_positive(self):
        plan = make_plan(fc_model())
        costs = stage_costs(plan, CostModel.reference(), 4)
        for cost in costs:
            assert cost.compute > 0
            assert cost.intra_comm > 0
            assert cost.transfer > 0
            assert cost.total == pytest.approx(
                cost.compute + cost.intra_comm + cost.transfer
            )

    def test_more_threads_less_compute(self):
        small = make_plan(fc_model(), cores=1)
        large = make_plan(fc_model(), cores=8)
        costs_small = stage_costs(small, CostModel.reference(), 4)
        costs_large = stage_costs(large, CostModel.reference(), 4)
        assert costs_large[0].compute < costs_small[0].compute

    def test_partitioning_reduces_conv_comm(self):
        with_tp = make_plan(conv_model(), cores=8, partitioning=True)
        without_tp = make_plan(conv_model(), cores=8,
                               partitioning=False)
        cost_with = stage_costs(with_tp, CostModel.reference(), 4)
        cost_without = stage_costs(without_tp, CostModel.reference(), 4)
        assert cost_with[0].intra_comm < cost_without[0].intra_comm

    def test_decimals_validated(self):
        plan = make_plan(fc_model())
        with pytest.raises(SimulationError):
            stage_costs(plan, CostModel.reference(), -1)

    def test_higher_decimals_cost_more(self):
        plan = make_plan(fc_model())
        low = stage_costs(plan, CostModel.reference(), 0)
        high = stage_costs(plan, CostModel.reference(), 6)
        assert high[0].compute > low[0].compute


class TestPipelineSimulator:
    def test_request_latency_is_total_path(self):
        plan = make_plan(fc_model())
        simulator = PipelineSimulator(plan, CostModel.reference(), 4)
        assert simulator.request_latency() == pytest.approx(
            sum(c.total for c in simulator.costs)
        )

    def test_stream_throughput_bound_by_bottleneck(self):
        plan = make_plan(fc_model())
        simulator = PipelineSimulator(plan, CostModel.reference(), 4)
        stream = simulator.simulate_stream(50)
        assert stream.throughput <= \
            1.0 / simulator.bottleneck_service() + 1e-6

    def test_engines_agree_exactly(self):
        plan = make_plan(fc_model(), cores=3)
        simulator = PipelineSimulator(plan, CostModel.reference(), 4)
        recurrence = simulator.simulate_stream(20, arrival_interval=0.1,
                                               engine="recurrence")
        events = simulator.simulate_stream(20, arrival_interval=0.1,
                                           engine="events")
        assert recurrence.latencies == pytest.approx(events.latencies)
        assert recurrence.makespan == pytest.approx(events.makespan)

    def test_first_request_latency_equals_single(self):
        plan = make_plan(fc_model())
        simulator = PipelineSimulator(plan, CostModel.reference(), 4)
        stream = simulator.simulate_stream(10)
        assert stream.first_request_latency == pytest.approx(
            simulator.request_latency()
        )

    def test_bad_engine(self):
        plan = make_plan(fc_model())
        simulator = PipelineSimulator(plan, CostModel.reference(), 4)
        with pytest.raises(SimulationError):
            simulator.simulate_stream(5, engine="quantum")

    def test_load_balanced_not_slower(self):
        even = PipelineSimulator(make_plan(fc_model(), cores=6),
                                 CostModel.reference(), 4)
        balanced = PipelineSimulator(
            make_plan(fc_model(), cores=6, balanced=True),
            CostModel.reference(), 4,
        )
        assert balanced.request_latency() <= \
            even.request_latency() * 1.05


class TestCentralizedBaselines:
    def test_plain_far_cheaper_than_cipher(self):
        stages = model_stages(fc_model())
        cost_model = CostModel.reference()
        plain = centralized_plain_latency(stages, cost_model)
        cipher = centralized_cipher_latency(stages, cost_model, 4)
        assert cipher > 100 * plain

    def test_pipeline_beats_centralized_cipher(self):
        """The Exp#2 headline: distributed stream processing cuts
        latency by a large factor."""
        model = fc_model()
        stages = model_stages(model)
        cost_model = CostModel.reference()
        cipher = centralized_cipher_latency(stages, cost_model, 4)
        simulator = PipelineSimulator(
            make_plan(model, cores=12, balanced=True), cost_model, 4
        )
        assert simulator.request_latency() < 0.5 * cipher


class TestEventEngine:
    def test_single_stage_sequential(self):
        pipeline = EventDrivenPipeline([1.0], [0.0])
        completions = pipeline.run([0.0, 0.0, 0.0])
        assert completions == pytest.approx([1.0, 2.0, 3.0])

    def test_two_stage_overlap(self):
        pipeline = EventDrivenPipeline([1.0, 1.0], [0.0, 0.0])
        completions = pipeline.run([0.0, 0.0])
        # r0: 0-1 at s0, 1-2 at s1; r1: 1-2 at s0, 2-3 at s1
        assert completions == pytest.approx([2.0, 3.0])

    def test_transfer_delays_downstream(self):
        pipeline = EventDrivenPipeline([1.0, 1.0], [0.5, 0.25])
        completions = pipeline.run([0.0])
        assert completions[0] == pytest.approx(1.0 + 0.5 + 1.0 + 0.25)

    def test_arrival_ordering_validated(self):
        pipeline = EventDrivenPipeline([1.0], [0.0])
        with pytest.raises(SimulationError):
            pipeline.run([1.0, 0.5])

    def test_negative_times_rejected(self):
        with pytest.raises(SimulationError):
            EventDrivenPipeline([-1.0], [0.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            EventDrivenPipeline([1.0], [0.0, 0.0])
