"""Tests for the communication model and comm-aware allocation."""

import pytest

from repro.costs import CostModel
from repro.nn.layers import Conv2d, Flatten, FullyConnected, LayerKind, \
    ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.planner.profiling import profile_primitive_times
from repro.simulate import intra_comm_seconds, make_comm_model


def fc_model(in_features=64, hidden=128):
    model = Sequential((in_features,))
    model.add(FullyConnected(in_features, hidden))
    model.add(ReLU())
    model.add(FullyConnected(hidden, 2))
    model.add(SoftMax())
    return model


def conv_model():
    model = Sequential((1, 8, 8))
    model.add(Conv2d(1, 4, kernel=3, padding=1))
    model.add(ReLU())
    model.add(Flatten())
    model.add(FullyConnected(256, 2))
    model.add(SoftMax())
    return model


class TestIntraCommSeconds:
    def test_grows_with_threads_for_dense_stage(self):
        """FC stages ship the whole input per thread, so distribution
        cost scales with the thread count."""
        stage = model_stages(fc_model())[0]
        cost_model = CostModel.reference()
        one = intra_comm_seconds(stage, 1, True, cost_model)
        four = intra_comm_seconds(stage, 4, True, cost_model)
        eight = intra_comm_seconds(stage, 8, True, cost_model)
        assert one < four < eight
        # the per-thread input shipping dominates at higher counts
        assert eight > 2 * one

    def test_partitioning_caps_conv_growth(self):
        """Conv stages with input partitioning ship only receptive
        fields: distribution cost grows far slower than thread count."""
        stage = model_stages(conv_model())[0]
        assert stage.kind is LayerKind.LINEAR
        cost_model = CostModel.reference()
        with_tp_1 = intra_comm_seconds(stage, 1, True, cost_model)
        with_tp_8 = intra_comm_seconds(stage, 8, True, cost_model)
        without_tp_8 = intra_comm_seconds(stage, 8, False, cost_model)
        assert with_tp_8 < without_tp_8
        assert with_tp_8 < 8 * with_tp_1

    def test_nonlinear_stage_flat_in_partitioning_flag(self):
        stages = model_stages(fc_model())
        relu_stage = stages[1]
        cost_model = CostModel.reference()
        assert intra_comm_seconds(relu_stage, 4, True, cost_model) == \
            pytest.approx(
                intra_comm_seconds(relu_stage, 4, False, cost_model)
            )


class TestCommAwareAllocation:
    def test_declines_unprofitable_threads(self):
        """With an absurdly expensive network, the allocator keeps
        thread counts minimal; with a free network it fills capacity."""
        import dataclasses

        stages = model_stages(fc_model(in_features=256, hidden=256))
        cluster = ClusterSpec.homogeneous(1, 1, 8)
        cost_model = CostModel.reference()
        times = profile_primitive_times(stages, cost_model, 4)

        expensive = dataclasses.replace(cost_model,
                                        serialize_element=1.0)
        frugal = allocate_load_balanced(
            stages, times, cluster, method="water_filling",
            comm_model=make_comm_model(expensive, True),
        )
        cheap = dataclasses.replace(cost_model,
                                    serialize_element=0.0)
        greedy = allocate_load_balanced(
            stages, times, cluster, method="water_filling",
            comm_model=make_comm_model(cheap, True),
        )
        assert frugal.plan.total_threads() < \
            greedy.plan.total_threads()

    def test_no_comm_model_fills_capacity(self):
        stages = model_stages(fc_model())
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        times = profile_primitive_times(stages, CostModel.reference(),
                                        4)
        result = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
        assert result.plan.total_threads() == cluster.total_capacity()
