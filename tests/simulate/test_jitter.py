"""Tests for per-request service-time jitter in the simulator."""

import pytest

from repro.costs import CostModel
from repro.errors import SimulationError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.simulate.events import EventDrivenPipeline
from repro.simulate.simulator import PipelineSimulator


@pytest.fixture(scope="module")
def simulator():
    model = Sequential((8,))
    model.add(FullyConnected(8, 16))
    model.add(ReLU())
    model.add(FullyConnected(16, 2))
    model.add(SoftMax())
    stages = model_stages(model)
    cluster = ClusterSpec.homogeneous(1, 1, 4)
    plan = allocate_even(stages, cluster).plan
    return PipelineSimulator(plan, CostModel.reference(), 4)


class TestJitter:
    def test_zero_jitter_is_deterministic_baseline(self, simulator):
        base = simulator.simulate_stream(10)
        jitterless = simulator.simulate_stream(10, service_jitter=0.0)
        assert base.latencies == jitterless.latencies

    def test_jitter_changes_latencies(self, simulator):
        base = simulator.simulate_stream(10)
        jittered = simulator.simulate_stream(10, service_jitter=0.2,
                                             seed=1)
        assert base.latencies != jittered.latencies

    def test_jitter_deterministic_per_seed(self, simulator):
        a = simulator.simulate_stream(10, service_jitter=0.2, seed=5)
        b = simulator.simulate_stream(10, service_jitter=0.2, seed=5)
        assert a.latencies == b.latencies

    def test_jitter_bounded(self, simulator):
        """20% service jitter cannot move any latency by more than
        ~20% in an uncontended single-request run."""
        base = simulator.simulate_stream(1)
        jittered = simulator.simulate_stream(1, service_jitter=0.2,
                                             seed=2)
        ratio = jittered.latencies[0] / base.latencies[0]
        assert 0.7 < ratio < 1.3

    def test_engines_agree_under_jitter(self, simulator):
        recurrence = simulator.simulate_stream(
            12, service_jitter=0.3, seed=9, engine="recurrence"
        )
        events = simulator.simulate_stream(
            12, service_jitter=0.3, seed=9, engine="events"
        )
        assert recurrence.latencies == pytest.approx(events.latencies)

    def test_jitter_validation(self, simulator):
        with pytest.raises(SimulationError):
            simulator.simulate_stream(5, service_jitter=1.0)
        with pytest.raises(SimulationError):
            simulator.simulate_stream(5, service_jitter=-0.1)


class TestEventEngineMatrixValidation:
    def test_row_count_checked(self):
        engine = EventDrivenPipeline([1.0], [0.0])
        with pytest.raises(SimulationError):
            engine.run([0.0, 0.0], service_matrix=[[1.0]])

    def test_column_count_checked(self):
        engine = EventDrivenPipeline([1.0, 2.0], [0.0, 0.0])
        with pytest.raises(SimulationError):
            engine.run([0.0], service_matrix=[[1.0]])
