"""Fault-plan semantics in the discrete-event / recurrence simulator.

The simulator mirrors the stream runtime's failure model
(:mod:`repro.stream.faults`): transient faults cost retries and
backoff time, permanent faults and exhausted retry budgets
dead-letter exactly their request, slow/stall faults stretch the
schedule, and both scheduling engines must agree under all of it.
"""

import pytest

from repro.costs import CostModel
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.simulate.simulator import PipelineSimulator
from repro.stream.faults import FaultPlan
from repro.stream.retry import (
    REASON_EXHAUSTED,
    REASON_PERMANENT,
    RetryPolicy,
)


def build_simulator():
    model = Sequential((8,))
    model.add(FullyConnected(8, 16))
    model.add(ReLU())
    model.add(FullyConnected(16, 2))
    model.add(SoftMax())
    stages = model_stages(model)
    plan = allocate_even(stages, ClusterSpec.homogeneous(1, 1, 4)).plan
    return PipelineSimulator(plan, CostModel.reference(), 4)


MIXED_PLAN = FaultPlan.parse(
    "transient:stage=0:request=0:count=2;"
    "permanent:stage=1:request=1;"
    "slow:stage=2:request=2:delay=0.5;"
    "transient:stage=0:request=3:count=9"
)
POLICY = RetryPolicy(max_retries=3, base_delay=0.01, jitter=0.0)


class TestEngineAgreement:
    @pytest.mark.parametrize("plan", [
        None,
        FaultPlan.parse("transient:stage=0:request=1:count=2"),
        MIXED_PLAN,
    ], ids=["fault-free", "transient", "mixed"])
    def test_recurrence_matches_events(self, plan):
        simulator = build_simulator()
        kwargs = dict(num_requests=5, arrival_interval=0.1,
                      fault_plan=plan, retry_policy=POLICY)
        recurrence = simulator.simulate_stream(engine="recurrence",
                                               **kwargs)
        events = simulator.simulate_stream(engine="events", **kwargs)
        assert recurrence.latencies == pytest.approx(events.latencies)
        assert recurrence.makespan == pytest.approx(events.makespan)
        assert recurrence.dead_letters == events.dead_letters
        assert recurrence.retries == events.retries


class TestFaultSemantics:
    def test_transient_within_budget_no_dead_letters(self):
        simulator = build_simulator()
        stream = simulator.simulate_stream(
            num_requests=4,
            fault_plan=FaultPlan.parse(
                "transient:stage=0:request=1:count=2"
            ),
            retry_policy=POLICY,
        )
        assert stream.dead_letters == ()
        assert stream.retries == 2
        assert stream.backoff_events == 2
        assert len(stream.latencies) == 4

    def test_transient_adds_backoff_latency(self):
        simulator = build_simulator()
        clean = simulator.simulate_stream(num_requests=1)
        faulted = simulator.simulate_stream(
            num_requests=1,
            fault_plan=FaultPlan.parse(
                "transient:stage=0:request=0:count=2"
            ),
            retry_policy=POLICY,
        )
        backoff = (POLICY.backoff_delay(1) + POLICY.backoff_delay(2))
        assert faulted.latencies[0] == pytest.approx(
            clean.latencies[0] + backoff)

    def test_permanent_drops_exactly_that_request(self):
        simulator = build_simulator()
        stream = simulator.simulate_stream(
            num_requests=4,
            fault_plan=FaultPlan.parse("permanent:stage=1:request=2"),
        )
        [letter] = stream.dead_letters
        assert letter.request_id == 2
        assert letter.stage == 1
        assert letter.reason == REASON_PERMANENT
        assert letter.attempts == 1
        assert len(stream.latencies) == 3  # survivors only

    def test_exhausted_retries_drop_with_attempt_count(self):
        simulator = build_simulator()
        stream = simulator.simulate_stream(
            num_requests=2,
            fault_plan=FaultPlan.parse(
                "transient:stage=0:request=0:count=99"
            ),
            retry_policy=POLICY,
        )
        [letter] = stream.dead_letters
        assert letter.request_id == 0
        assert letter.reason == REASON_EXHAUSTED
        assert letter.attempts == POLICY.max_retries + 1
        assert stream.retries == POLICY.max_retries

    def test_slow_fault_stretches_makespan(self):
        simulator = build_simulator()
        clean = simulator.simulate_stream(num_requests=3)
        slowed = simulator.simulate_stream(
            num_requests=3,
            fault_plan=FaultPlan.parse(
                "slow:stage=1:request=0:delay=0.75"
            ),
        )
        assert slowed.dead_letters == ()
        assert slowed.makespan >= clean.makespan + 0.75 - 1e-9

    def test_crash_is_free_under_restart(self):
        """Crashes are absorbed by supervisor restarts; the simulator
        models the re-run as a plain re-visit (no extra cost beyond
        what the schedule already charges)."""
        simulator = build_simulator()
        clean = simulator.simulate_stream(num_requests=2)
        crashed = simulator.simulate_stream(
            num_requests=2,
            fault_plan=FaultPlan.parse("crash:stage=0:request=0"),
        )
        assert crashed.dead_letters == ()
        assert len(crashed.latencies) == 2
        assert crashed.makespan == pytest.approx(clean.makespan)
