"""Unit tests for the fault-injection framework and retry policy."""

import random

import pytest

from repro.errors import (
    PoisonedRequestError,
    ProtocolError,
    StreamError,
    TransientStageError,
    WorkerCrashError,
)
from repro.stream.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.stream.retry import (
    REASON_DEADLINE,
    DeadLetter,
    RetryPolicy,
)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(StreamError):
            FaultSpec(FaultKind.TRANSIENT, stage=-1, request_id=0)
        with pytest.raises(StreamError):
            FaultSpec(FaultKind.TRANSIENT, stage=0, request_id=-1)
        with pytest.raises(StreamError):
            FaultSpec(FaultKind.TRANSIENT, stage=0, request_id=0,
                      count=0)
        with pytest.raises(StreamError):
            FaultSpec(FaultKind.SLOW, stage=0, request_id=0,
                      delay=-1.0)


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "transient:stage=0:request=1:count=2;"
            "permanent:stage=2:request=3;"
            "slow:stage=1:request=0:delay=0.25"
        )
        assert len(plan) == 3
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == {FaultKind.TRANSIENT, FaultKind.PERMANENT,
                         FaultKind.SLOW}
        [transient] = plan.lookup(0, 1)
        assert transient.count == 2
        [slow] = plan.lookup(1, 0)
        assert slow.delay == 0.25
        assert plan.lookup(5, 5) == []

    def test_parse_rejects_garbage(self):
        with pytest.raises(StreamError, match="unknown fault kind"):
            FaultPlan.parse("explode:stage=0:request=0")
        with pytest.raises(StreamError, match="unknown fault field"):
            FaultPlan.parse("transient:stage=0:request=0:bogus=1")
        with pytest.raises(StreamError, match="needs stage"):
            FaultPlan.parse("transient:request=0")
        with pytest.raises(StreamError, match="bad value"):
            FaultPlan.parse("transient:stage=x:request=0")

    def test_parse_empty_is_empty(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(" ; ")

    def test_random_transient_is_deterministic(self):
        a = FaultPlan.random_transient(seed=9, num_requests=8,
                                       num_stages=4, rate=0.5)
        b = FaultPlan.random_transient(seed=9, num_requests=8,
                                       num_stages=4, rate=0.5)
        assert a.specs == b.specs
        c = FaultPlan.random_transient(seed=10, num_requests=8,
                                       num_stages=4, rate=0.5)
        assert a.specs != c.specs

    def test_random_transient_is_transient_only(self):
        plan = FaultPlan.random_transient(seed=3, num_requests=6,
                                          num_stages=3, rate=0.9)
        assert plan.only_transient()
        assert all(s.kind is FaultKind.TRANSIENT for s in plan.specs)

    def test_stage_has_faults(self):
        plan = FaultPlan.parse("permanent:stage=2:request=0")
        assert plan.stage_has_faults(2)
        assert not plan.stage_has_faults(1)
        assert not plan.only_transient()

    def test_describe(self):
        plan = FaultPlan.parse("transient:stage=1:request=2:count=3")
        assert "transient stage=1 request=2 count=3" in plan.describe()
        assert FaultPlan().describe() == "no faults"


class _Item:
    def __init__(self, request_id):
        self.request_id = request_id
        self.fault = None


class _Echo:
    def __init__(self):
        self.calls = 0
        self.shutdowns = 0

    def process(self, item):
        self.calls += 1
        return item

    def shutdown(self):
        self.shutdowns += 1


class TestFaultInjector:
    def test_transient_fires_count_times_then_passes(self):
        plan = FaultPlan.parse("transient:stage=0:request=7:count=2")
        injector = FaultInjector(_Echo(), 0, plan)
        item = _Item(7)
        for _ in range(2):
            with pytest.raises(TransientStageError):
                injector.process(item)
        assert injector.process(item) is item
        assert injector.injected_faults == 2

    def test_permanent_fires_every_time(self):
        plan = FaultPlan.parse("permanent:stage=1:request=0")
        injector = FaultInjector(_Echo(), 1, plan)
        for _ in range(3):
            with pytest.raises(PoisonedRequestError):
                injector.process(_Item(0))

    def test_crash_fires_count_times(self):
        plan = FaultPlan.parse("crash:stage=0:request=1:count=1")
        injector = FaultInjector(_Echo(), 0, plan)
        with pytest.raises(WorkerCrashError):
            injector.process(_Item(1))
        assert injector.process(_Item(1)).request_id == 1

    def test_untargeted_requests_untouched(self):
        plan = FaultPlan.parse("permanent:stage=0:request=5")
        executor = _Echo()
        injector = FaultInjector(executor, 0, plan)
        injector.process(_Item(4))
        assert executor.calls == 1
        assert injector.injected_faults == 0

    def test_shutdown_delegates(self):
        executor = _Echo()
        FaultInjector(executor, 0, FaultPlan()).shutdown()
        assert executor.shutdowns == 1


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientStageError("x"))
        assert not policy.is_transient(PoisonedRequestError("x"))
        assert not policy.is_transient(ProtocolError("x"))
        assert policy.is_transient(RuntimeError("x"))
        strict = RetryPolicy(retry_unclassified=False)
        assert not strict.is_transient(RuntimeError("x"))
        assert strict.is_transient(TransientStageError("x"))

    def test_backoff_sequence_is_exponential_and_capped(self):
        policy = RetryPolicy(max_retries=10, base_delay=0.1,
                             multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        delays = [policy.backoff_delay(k) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        rng = random.Random(0)
        for attempt in range(1, 20):
            delay = policy.backoff_delay(min(attempt, 3), rng)
            base = min(policy.max_delay,
                       0.1 * 2.0 ** (min(attempt, 3) - 1))
            assert base * 0.5 <= delay <= base * 1.5

    def test_jitter_deterministic_per_seed(self):
        policy = RetryPolicy()
        a = [policy.backoff_delay(k, random.Random(5))
             for k in (1, 2, 3)]
        b = [policy.backoff_delay(k, random.Random(5))
             for k in (1, 2, 3)]
        assert a == b

    def test_jitter_seed_gives_deterministic_implicit_stream(self):
        """Two policies with the same jitter_seed draw identical
        implicit jitter without any caller-supplied RNG."""
        first = RetryPolicy(jitter_seed=42)
        second = RetryPolicy(jitter_seed=42)
        a = [first.backoff_delay(k) for k in (1, 2, 3, 1, 2)]
        b = [second.backoff_delay(k) for k in (1, 2, 3, 1, 2)]
        assert a == b
        other = RetryPolicy(jitter_seed=43)
        assert [other.backoff_delay(k) for k in (1, 2, 3, 1, 2)] != a

    def test_jitter_seed_stream_is_one_sequence_not_reset(self):
        """The policy-owned RNG is cached: successive implicit draws
        advance one stream instead of re-seeding each call."""
        policy = RetryPolicy(jitter_seed=7)
        assert policy.jitter_rng() is policy.jitter_rng()
        draws = [policy.backoff_delay(1) for _ in range(10)]
        # Re-seeding per call would make every draw identical.
        assert len(set(draws)) > 1
        # Replaying from a fresh policy reproduces the whole sequence.
        replay = RetryPolicy(jitter_seed=7)
        assert [replay.backoff_delay(1) for _ in range(10)] == draws

    def test_no_jitter_seed_skips_jitter_never_global_rng(self):
        """Without a seed or explicit RNG the delay is the bare
        exponential value — the module-global RNG is never touched, so
        unseeded runs are still deterministic."""
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert policy.jitter_rng() is None
        random.seed(0)
        before = random.getstate()
        delays = [policy.backoff_delay(k) for k in (1, 2, 3)]
        assert random.getstate() == before
        assert delays == [0.1, 0.2, 0.4]

    def test_explicit_rng_wins_over_jitter_seed(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5,
                             jitter_seed=11)
        explicit = policy.backoff_delay(1, random.Random(99))
        expected = 0.1 * random.Random(99).uniform(0.5, 1.5)
        assert explicit == pytest.approx(expected)

    def test_immediate_has_no_backoff(self):
        policy = RetryPolicy.immediate(4)
        assert policy.max_retries == 4
        assert policy.backoff_delay(3, random.Random(0)) == 0.0

    def test_validation(self):
        with pytest.raises(StreamError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(StreamError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(StreamError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(StreamError):
            RetryPolicy(base_delay=-0.1)
        policy = RetryPolicy()
        with pytest.raises(StreamError):
            policy.backoff_delay(0)


class TestDeadLetter:
    def test_describe(self):
        letter = DeadLetter(request_id=3, stage=2,
                            reason=REASON_DEADLINE, attempts=0)
        text = letter.describe()
        assert "request 3" in text
        assert "deadline-exceeded" in text
        assert "stage 2" in text
