"""Unit tests for channels and stage workers."""

import threading
import time

import pytest

from repro.errors import StageFailedError, StreamError
from repro.stream.channel import Channel, ChannelClosed
from repro.stream.worker import StageWorker


class TestChannel:
    def test_fifo(self):
        channel = Channel(capacity=4)
        for i in range(3):
            channel.put(i)
        assert [channel.get(), channel.get(), channel.get()] == \
            [0, 1, 2]

    def test_close_raises_after_drain(self):
        channel = Channel(capacity=4)
        channel.put("x")
        channel.close()
        assert channel.get() == "x"
        with pytest.raises(ChannelClosed):
            channel.get()

    def test_close_is_sticky_for_multiple_consumers(self):
        channel = Channel(capacity=4)
        channel.close()
        for _ in range(3):
            with pytest.raises(ChannelClosed):
                channel.get(timeout=1)

    def test_put_after_close_rejected(self):
        channel = Channel()
        channel.close()
        with pytest.raises(StreamError):
            channel.put(1)

    def test_get_timeout(self):
        channel = Channel()
        with pytest.raises(StreamError):
            channel.get(timeout=0.05)

    def test_capacity_validation(self):
        with pytest.raises(StreamError):
            Channel(capacity=0)

    def test_backpressure(self):
        """A full channel blocks the producer until a consumer reads."""
        channel = Channel(capacity=1)
        channel.put(1)
        state = {"put_done": False}

        def producer():
            channel.put(2)
            state["put_done"] = True

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not state["put_done"]
        assert channel.get() == 1
        thread.join(timeout=1)
        assert state["put_done"]

    @pytest.mark.timeout(10)
    def test_close_while_full_does_not_block(self):
        """Regression: the sentinel-based close used to block when the
        queue was at capacity, stalling a worker's shutdown path."""
        channel = Channel(capacity=1)
        channel.put("item")
        start = time.perf_counter()
        channel.close()  # must return immediately
        assert time.perf_counter() - start < 1.0
        assert channel.closed
        # the queued item still drains, then end-of-stream surfaces
        assert channel.get(timeout=1) == "item"
        with pytest.raises(ChannelClosed):
            channel.get(timeout=1)

    def test_close_does_not_consume_capacity(self):
        channel = Channel(capacity=2)
        channel.put(1)
        channel.put(2)
        assert channel.approx_size() == 2
        channel.close()
        assert channel.approx_size() == 2  # no in-band sentinel
        assert channel.get() == 1
        assert channel.get() == 2
        with pytest.raises(ChannelClosed):
            channel.get(timeout=0.5)

    @pytest.mark.timeout(10)
    def test_close_wakes_blocked_producer(self):
        channel = Channel(capacity=1)
        channel.put(1)
        outcome: dict = {}

        def producer():
            try:
                channel.put(2)
            except StreamError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        channel.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert "closed" in str(outcome["error"])

    def test_put_timeout(self):
        channel = Channel(capacity=1)
        channel.put(1)
        with pytest.raises(StreamError, match="timed out"):
            channel.put(2, timeout=0.05)

    def test_put_front_jumps_the_queue(self):
        channel = Channel(capacity=2)
        channel.put("a")
        channel.put("b")
        channel.put_front("urgent")  # ignores capacity
        assert channel.get() == "urgent"
        assert channel.get() == "a"
        assert channel.get() == "b"

    def test_put_front_allowed_after_close(self):
        """A supervisor re-injecting an in-flight item must succeed
        even after the upstream producer closed the channel."""
        channel = Channel(capacity=1)
        channel.close()
        channel.put_front("inflight")
        assert channel.get(timeout=1) == "inflight"
        with pytest.raises(ChannelClosed):
            channel.get(timeout=1)


class _DoublingExecutor:
    def process(self, item):
        return item * 2


class _FailingExecutor:
    def process(self, item):
        raise ValueError("boom")


class TestStageWorker:
    def test_processes_and_forwards(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("w", _DoublingExecutor(), inbound, outbound)
        worker.start()
        for i in range(5):
            inbound.put(i)
        inbound.close()
        results = []
        while True:
            try:
                results.append(outbound.get(timeout=2))
            except ChannelClosed:
                break
        worker.join(timeout=2)
        assert results == [0, 2, 4, 6, 8]
        assert worker.items_processed == 5
        assert worker.busy_seconds >= 0

    def test_failure_reported_at_join(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("bad", _FailingExecutor(), inbound,
                             outbound)
        worker.start()
        inbound.put(1)
        inbound.close()
        with pytest.raises(StageFailedError, match="boom"):
            # wait for the worker to hit the failure
            for _ in range(100):
                try:
                    worker.join(timeout=0.05)
                    break
                except StageFailedError:
                    raise
                except Exception:
                    continue

    def test_closes_downstream_on_exit(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("w", _DoublingExecutor(), inbound, outbound)
        worker.start()
        inbound.close()
        worker.join(timeout=2)
        with pytest.raises(ChannelClosed):
            outbound.get(timeout=1)

    @pytest.mark.timeout(10)
    def test_forward_failure_names_the_request(self):
        """Regression: an item dropped because the downstream channel
        closed mid-stream used to surface as a generic StreamError
        with no request id."""

        class _Request:
            def __init__(self, request_id):
                self.request_id = request_id
                self.fault = None

        class _Identity:
            def process(self, item):
                return item

        inbound, outbound = Channel(), Channel()
        worker = StageWorker("fwd", _Identity(), inbound, outbound)
        worker.start()
        outbound.close()  # downstream dies before the item arrives
        inbound.put(_Request(41))
        inbound.close()
        with pytest.raises(StageFailedError, match="request 41"):
            for _ in range(200):
                try:
                    worker.join(timeout=0.05)
                    break
                except StageFailedError:
                    raise
                except Exception:
                    continue
