"""Unit tests for channels and stage workers."""

import threading
import time

import pytest

from repro.errors import StageFailedError, StreamError
from repro.stream.channel import Channel, ChannelClosed
from repro.stream.worker import StageWorker


class TestChannel:
    def test_fifo(self):
        channel = Channel(capacity=4)
        for i in range(3):
            channel.put(i)
        assert [channel.get(), channel.get(), channel.get()] == \
            [0, 1, 2]

    def test_close_raises_after_drain(self):
        channel = Channel(capacity=4)
        channel.put("x")
        channel.close()
        assert channel.get() == "x"
        with pytest.raises(ChannelClosed):
            channel.get()

    def test_close_is_sticky_for_multiple_consumers(self):
        channel = Channel(capacity=4)
        channel.close()
        for _ in range(3):
            with pytest.raises(ChannelClosed):
                channel.get(timeout=1)

    def test_put_after_close_rejected(self):
        channel = Channel()
        channel.close()
        with pytest.raises(StreamError):
            channel.put(1)

    def test_get_timeout(self):
        channel = Channel()
        with pytest.raises(StreamError):
            channel.get(timeout=0.05)

    def test_capacity_validation(self):
        with pytest.raises(StreamError):
            Channel(capacity=0)

    def test_backpressure(self):
        """A full channel blocks the producer until a consumer reads."""
        channel = Channel(capacity=1)
        channel.put(1)
        state = {"put_done": False}

        def producer():
            channel.put(2)
            state["put_done"] = True

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not state["put_done"]
        assert channel.get() == 1
        thread.join(timeout=1)
        assert state["put_done"]


class _DoublingExecutor:
    def process(self, item):
        return item * 2


class _FailingExecutor:
    def process(self, item):
        raise ValueError("boom")


class TestStageWorker:
    def test_processes_and_forwards(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("w", _DoublingExecutor(), inbound, outbound)
        worker.start()
        for i in range(5):
            inbound.put(i)
        inbound.close()
        results = []
        while True:
            try:
                results.append(outbound.get(timeout=2))
            except ChannelClosed:
                break
        worker.join(timeout=2)
        assert results == [0, 2, 4, 6, 8]
        assert worker.items_processed == 5
        assert worker.busy_seconds >= 0

    def test_failure_reported_at_join(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("bad", _FailingExecutor(), inbound,
                             outbound)
        worker.start()
        inbound.put(1)
        inbound.close()
        with pytest.raises(StageFailedError, match="boom"):
            # wait for the worker to hit the failure
            for _ in range(100):
                try:
                    worker.join(timeout=0.05)
                    break
                except StageFailedError:
                    raise
                except Exception:
                    continue

    def test_closes_downstream_on_exit(self):
        inbound, outbound = Channel(), Channel()
        worker = StageWorker("w", _DoublingExecutor(), inbound, outbound)
        worker.start()
        inbound.close()
        worker.join(timeout=2)
        with pytest.raises(ChannelClosed):
            outbound.get(timeout=1)
