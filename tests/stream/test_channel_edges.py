"""Shutdown-edge hammer tests for :class:`repro.stream.Channel`.

The supervisor's crash-recovery path leans on three less-travelled
channel behaviours: ``put_front`` stays legal after ``close`` (a
restarted worker's in-flight item must drain, not vanish), ``drain``
frees capacity and wakes producers blocked in ``put``, and concurrent
``drain`` callers partition the queue without duplicating or losing
items.  These tests hammer each edge with many threads and iterations
so lost-wakeup and double-delivery races actually get a chance to
fire.
"""

import threading
import time
from collections import Counter

import pytest

from repro.errors import StreamError
from repro.stream.channel import Channel, ChannelClosed


def _drain_all(channel):
    """Consume until ChannelClosed, returning everything seen."""
    got = []
    while True:
        try:
            got.append(channel.get(timeout=5.0))
        except ChannelClosed:
            return got


class TestPutFrontAfterClose:
    def test_put_front_after_close_still_drains(self):
        channel = Channel(capacity=2)
        channel.put("a")
        channel.close()
        channel.put_front("reinjected")
        assert _drain_all(channel) == ["reinjected", "a"]

    def test_put_front_ignores_capacity_after_close(self):
        channel = Channel(capacity=1)
        channel.put("a")
        channel.close()
        for item in ("b", "c", "d"):
            channel.put_front(item)
        assert _drain_all(channel) == ["d", "c", "b", "a"]

    def test_hammer_put_front_interleaved_with_drain(self):
        """Many re-injectors racing many drainers on a closed channel:
        every re-injected item must surface exactly once, via drain or
        via get, never twice and never silently dropped."""
        for round_index in range(20):
            channel = Channel(capacity=4)
            channel.close()
            injectors, drained, lock = 8, [], threading.Lock()
            start = threading.Barrier(injectors * 2)

            def inject(base):
                start.wait()
                for i in range(50):
                    channel.put_front((base, i))

            def drain():
                start.wait()
                for _ in range(25):
                    items = channel.drain()
                    with lock:
                        drained.extend(items)

            threads = [
                threading.Thread(target=inject, args=(b,))
                for b in range(injectors)
            ] + [threading.Thread(target=drain) for _ in range(injectors)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "hammer thread wedged"
            leftovers = _drain_all(channel)
            seen = Counter(drained) + Counter(leftovers)
            expected = Counter(
                (b, i) for b in range(injectors) for i in range(50)
            )
            assert seen == expected, (
                f"round {round_index}: items lost or duplicated across "
                f"drain/get"
            )

    def test_get_after_close_drains_then_raises(self):
        channel = Channel(capacity=4)
        channel.put("x")
        channel.close()
        assert channel.get() == "x"
        with pytest.raises(ChannelClosed):
            channel.get()
        with pytest.raises(StreamError):
            channel.put("y")


class TestDrainUnblocksProducers:
    def test_blocked_producer_released_when_drain_frees_capacity(self):
        """A producer parked in ``put`` on a full channel must wake as
        soon as ``drain`` empties it — drain's notify_all is its only
        wakeup; a missed notify would strand the producer until
        timeout."""
        channel = Channel(capacity=1)
        channel.put("filler")
        released = threading.Event()

        def producer():
            channel.put("late", timeout=10.0)
            released.set()

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            time.sleep(0.1)  # let the producer reach the wait
            assert not released.is_set()
            assert channel.drain() == ["filler"]
            assert released.wait(timeout=5.0), (
                "drain freed capacity but the blocked producer never "
                "woke"
            )
            assert channel.drain() == ["late"]
        finally:
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_hammer_producers_vs_drainer(self):
        """Producers saturating a tiny channel while a drainer loops:
        every put must eventually land and be claimed exactly once."""
        channel = Channel(capacity=2)
        producers, per_producer = 6, 80
        collected, lock = [], threading.Lock()
        done = threading.Event()

        def produce(base):
            for i in range(per_producer):
                channel.put((base, i), timeout=10.0)

        def drain_loop():
            while not done.is_set() or channel.approx_size():
                items = channel.drain()
                if items:
                    with lock:
                        collected.extend(items)
                else:
                    time.sleep(0.001)

        drainer = threading.Thread(target=drain_loop)
        drainer.start()
        threads = [
            threading.Thread(target=produce, args=(b,))
            for b in range(producers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "producer wedged on full channel"
        done.set()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        expected = Counter(
            (b, i) for b in range(producers) for i in range(per_producer)
        )
        assert Counter(collected) == expected

    def test_close_wakes_blocked_producer_with_error(self):
        channel = Channel(capacity=1)
        channel.put("filler")
        outcome = []

        def producer():
            try:
                channel.put("late", timeout=10.0)
                outcome.append("ok")
            except StreamError:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        channel.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome == ["closed"]


class TestConcurrentDrain:
    def test_concurrent_drain_callers_partition_the_queue(self):
        """N drain callers racing a producer stream: drains are atomic,
        so the union of all claims plus the final sweep is exactly the
        produced set, with no item claimed twice."""
        for round_index in range(10):
            channel = Channel(capacity=8)
            total = 400
            claims, lock = [], threading.Lock()
            start = threading.Barrier(5)

            def produce():
                start.wait()
                for i in range(total):
                    channel.put(i, timeout=10.0)
                channel.close()

            def drain_loop():
                start.wait()
                while True:
                    items = channel.drain()
                    if items:
                        with lock:
                            claims.append(items)
                    elif channel.closed and not channel.approx_size():
                        return

            threads = [threading.Thread(target=produce)] + [
                threading.Thread(target=drain_loop) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "drain hammer wedged"
            seen = Counter()
            for chunk in claims:
                seen.update(chunk)
            assert seen == Counter(range(total)), (
                f"round {round_index}: concurrent drains lost or "
                f"duplicated items"
            )

    def test_drain_on_open_empty_channel_is_empty_not_blocking(self):
        channel = Channel(capacity=4)
        assert channel.drain() == []
        assert not channel.closed

    def test_drain_then_get_sees_channel_closed(self):
        channel = Channel(capacity=4)
        channel.put("a")
        channel.put("b")
        channel.close()
        assert channel.drain() == ["a", "b"]
        with pytest.raises(ChannelClosed):
            channel.get()
