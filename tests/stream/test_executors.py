"""Unit tests for the per-stage stream executors."""

import random

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.tensor import EncryptedTensor
from repro.errors import ProtocolError, StreamError
from repro.obfuscation.obfuscator import Obfuscator
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.scaling.fixed_point import scale_to_int, \
    scaled_affine_for_layer
from repro.stream.executors import (
    LinearStageExecutor,
    NonLinearStageExecutor,
    StreamItem,
    build_executors,
)
from repro.nn.layers import FullyConnected


@pytest.fixture()
def parties(trained_breast):
    config = RuntimeConfig(key_size=128, seed=41)
    model_provider = ModelProvider(trained_breast, decimals=3,
                                   config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    model_provider.register_public_key(data_provider.public_key)
    return model_provider, data_provider


class TestLinearExecutor:
    def test_matches_scaled_affine(self, parties):
        """One linear stage through the executor == the plain scaled
        affine evaluated on the same integers."""
        model_provider, data_provider = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        rng = random.Random(0)
        executor = LinearStageExecutor(
            stage_index=0,
            affines=[affine],
            obfuscator=Obfuscator(5),
            threads=3,
            use_partitioning=True,
            rng=rng,
            final=True,  # skip obfuscation so we can decrypt directly
        )
        x = np.random.default_rng(1).standard_normal(30)
        x_int = scale_to_int(x, 3)
        tensor = data_provider.encrypt_input(x)
        item = executor.process(StreamItem(0, tensor))
        decrypted = item.tensor.decrypt(data_provider._private_key)
        expected = affine.apply_plain(x_int, input_exponent=3)
        assert np.array_equal(decrypted, expected)

    def test_obfuscates_when_not_final(self, parties):
        model_provider, data_provider = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        obfuscator = Obfuscator(6)
        executor = LinearStageExecutor(
            0, [affine], obfuscator, threads=2,
            use_partitioning=False, rng=random.Random(0), final=False,
        )
        tensor = data_provider.encrypt_input(np.zeros(30))
        item = executor.process(StreamItem(0, tensor))
        assert item.obfuscation_round == 0
        assert obfuscator.rounds_started == 1

    def test_empty_item_rejected(self, parties):
        model_provider, _ = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        executor = LinearStageExecutor(
            0, [affine], Obfuscator(7), 1, False, random.Random(0),
            final=False,
        )
        with pytest.raises(StreamError):
            executor.process(StreamItem(0, None))

    def test_thread_validation(self, parties):
        model_provider, _ = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        with pytest.raises(StreamError):
            LinearStageExecutor(0, [affine], Obfuscator(8), 0, False,
                                random.Random(0), final=False)


class TestNonLinearExecutor:
    def test_relu_then_reencrypt(self, parties):
        _, data_provider = parties
        rng = random.Random(2)
        values = np.array([1.5, -2.0, 0.5, -0.1])
        tensor = EncryptedTensor.encrypt(
            scale_to_int(values, 3), data_provider.public_key, rng,
            exponent=3,
        )
        executor = NonLinearStageExecutor(
            1, ["relu"], data_provider._private_key, 3, threads=2,
            rng=rng, final=False,
        )
        item = executor.process(StreamItem(0, tensor,
                                           obfuscation_round=9))
        out = item.tensor.decrypt_float(data_provider._private_key)
        assert np.allclose(out, [1.5, 0.0, 0.5, 0.0])
        # the obfuscation round id is carried through untouched
        assert item.obfuscation_round == 9

    def test_final_softmax_returns_result(self, parties):
        _, data_provider = parties
        rng = random.Random(3)
        values = np.array([1.0, 2.0, 3.0])
        tensor = EncryptedTensor.encrypt(
            scale_to_int(values, 3), data_provider.public_key, rng,
            exponent=3,
        )
        executor = NonLinearStageExecutor(
            5, ["softmax"], data_provider._private_key, 3, threads=1,
            rng=rng, final=True,
        )
        item = executor.process(StreamItem(0, tensor))
        assert item.tensor is None
        assert item.result is not None
        assert item.result.sum() == pytest.approx(1.0)
        assert item.result.argmax() == 2

    def test_softmax_rejected_mid_pipeline(self, parties):
        _, data_provider = parties
        with pytest.raises(ProtocolError):
            NonLinearStageExecutor(
                1, ["softmax"], data_provider._private_key, 3,
                threads=1, rng=random.Random(0), final=False,
            )


class TestBuildExecutors:
    def test_one_executor_per_stage(self, parties):
        model_provider, data_provider = parties
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        plan = allocate_even(model_provider.stages, cluster).plan
        executors = build_executors(model_provider, data_provider,
                                    plan)
        assert len(executors) == len(model_provider.stages)
        kinds = [type(e).__name__ for e in executors]
        assert kinds == [
            "LinearStageExecutor", "NonLinearStageExecutor",
        ] * 3

    def test_final_flags(self, parties):
        model_provider, data_provider = parties
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        plan = allocate_even(model_provider.stages, cluster).plan
        executors = build_executors(model_provider, data_provider,
                                    plan)
        assert executors[-1].final            # final softmax
        assert executors[-2].final            # final linear stage
        assert not executors[0].final
        assert not executors[1].final
