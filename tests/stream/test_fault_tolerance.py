"""Failure-injection tests for the stream runtime.

Covers the layered fault-tolerance machinery end to end: stand-alone
worker retry semantics (fail-loud), and the full pipeline under
scripted :class:`FaultPlan` injection — transient recovery with
bit-identical results, dead-lettering of poisoned requests and blown
deadlines, supervisor crash-restarts, and orderly fatal shutdown with
no leaked threads.
"""

import threading
import time

import pytest

from repro.config import RuntimeConfig
from repro.errors import StageFailedError
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.stream import FaultPlan, Pipeline, RetryPolicy
from repro.stream.channel import Channel, ChannelClosed
from repro.stream.retry import (
    REASON_DEADLINE,
    REASON_EXHAUSTED,
    REASON_PERMANENT,
)
from repro.stream.worker import StageWorker

#: A fast backoff policy so fault-matrix tests stay quick.
FAST_RETRIES = RetryPolicy(max_retries=3, base_delay=0.002,
                           max_delay=0.02)


class FlakyExecutor:
    """Fails the first ``failures`` calls for each item, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self._attempts: dict[int, int] = {}

    def process(self, item):
        seen = self._attempts.get(item, 0)
        self._attempts[item] = seen + 1
        if seen < self.failures:
            raise RuntimeError(f"transient failure #{seen + 1}")
        return item * 10


def drive(worker, items):
    worker.start()
    for item in items:
        worker.inbound.put(item)
    worker.inbound.close()
    results = []
    while True:
        try:
            results.append(worker.outbound.get(timeout=2))
        except ChannelClosed:
            break
    return results


class TestStandaloneWorkerRetries:
    """Unsupervised workers keep the historical fail-loud posture."""

    def test_transient_failures_recovered(self):
        executor = FlakyExecutor(failures=2)
        worker = StageWorker("flaky", executor, Channel(), Channel(),
                             max_retries=3)
        results = drive(worker, [1, 2, 3])
        worker.join(timeout=2)
        assert results == [10, 20, 30]
        assert worker.retries == 6  # two retries per item
        assert worker.items_processed == 3

    def test_persistent_failure_raises(self):
        executor = FlakyExecutor(failures=10)
        worker = StageWorker("doomed", executor, Channel(), Channel(),
                             max_retries=2)
        results = drive(worker, [1])
        assert results == []
        with pytest.raises(StageFailedError, match="transient"):
            worker.join(timeout=2)

    def test_zero_retries_fails_immediately(self):
        executor = FlakyExecutor(failures=1)
        worker = StageWorker("strict", executor, Channel(), Channel(),
                             max_retries=0)
        drive(worker, [1])
        with pytest.raises(StageFailedError):
            worker.join(timeout=2)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            StageWorker("bad", FlakyExecutor(0), Channel(), Channel(),
                        max_retries=-1)

    def test_backoff_policy_sleeps_and_counts(self):
        executor = FlakyExecutor(failures=2)
        worker = StageWorker(
            "backoff", executor, Channel(), Channel(),
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.01,
                                     jitter=0.0),
        )
        start = time.perf_counter()
        results = drive(worker, [1])
        elapsed = time.perf_counter() - start
        worker.join(timeout=2)
        assert results == [10]
        assert worker.retries == 2
        assert worker.backoff_events == 2
        assert elapsed >= 0.01 + 0.02  # the two backoff sleeps


def _stream_threads():
    prefixes = ("repro-stage-", "repro-stream-supervisor",
                "repro-stream-source")
    return [t.name for t in threading.enumerate()
            if t.name.startswith(prefixes)]


def assert_no_stream_threads():
    for _ in range(100):
        if not _stream_threads():
            return
        time.sleep(0.02)
    raise AssertionError(f"leaked stream threads: {_stream_threads()}")


@pytest.fixture(scope="module")
def streamed_baseline(request):
    """Fault-free baseline predictions for the first 4 test samples."""
    trained = request.getfixturevalue("trained_breast")
    dataset = request.getfixturevalue("breast_dataset")
    inputs = list(dataset.test_x[:4])
    pipeline, _ = _build_pipeline(trained)
    stats = pipeline.run_stream(inputs)
    preds = [r.prediction
             for r in sorted(stats.results, key=lambda r: r.request_id)]
    return inputs, preds


def _build_pipeline(trained, **kwargs):
    config = RuntimeConfig(key_size=128, seed=91)
    model_provider = ModelProvider(trained, decimals=3, config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    cluster = ClusterSpec.homogeneous(1, 1, 2)
    plan = allocate_even(model_provider.stages, cluster).plan
    kwargs.setdefault("retry_policy", FAST_RETRIES)
    return (Pipeline(model_provider, data_provider, plan, **kwargs),
            plan)


class TestPipelineFaultTolerance:
    def test_pipeline_with_retries_noop_when_healthy(
            self, trained_breast, streamed_baseline):
        inputs, expected = streamed_baseline
        pipeline, plan = _build_pipeline(trained_breast, max_retries=2,
                                         retry_policy=None)
        stats = pipeline.run_stream(inputs)
        assert len(stats.results) == len(inputs)
        assert stats.stage_retries == [0] * len(plan.stages)
        assert stats.dead_letters == []
        assert stats.stage_restarts == [0] * len(plan.stages)

    def test_transient_faults_recover_bit_identically(
            self, trained_breast, streamed_baseline):
        """Seeded transient-only plan: same predictions as the
        fault-free run, nonzero retries and backoff events."""
        inputs, expected = streamed_baseline
        plan = FaultPlan.random_transient(
            seed=7, num_requests=len(inputs), num_stages=6, rate=0.3
        )
        assert plan.only_transient() and len(plan) > 0
        pipeline, _ = _build_pipeline(trained_breast, fault_plan=plan)
        stats = pipeline.run_stream(inputs)
        preds = [r.prediction for r in
                 sorted(stats.results, key=lambda r: r.request_id)]
        assert preds == expected
        assert stats.dead_letters == []
        assert stats.total_retries > 0
        assert stats.total_backoff_events > 0
        assert_no_stream_threads()

    @pytest.mark.slow
    def test_transient_fault_matrix_property(self, trained_breast,
                                             streamed_baseline):
        """Property-style: ANY seeded transient-only plan within the
        retry budget yields bit-identical predictions."""
        inputs, expected = streamed_baseline
        for seed in (1, 2, 3):
            plan = FaultPlan.random_transient(
                seed=seed, num_requests=len(inputs), num_stages=6,
                rate=0.25, max_count=FAST_RETRIES.max_retries,
            )
            pipeline, _ = _build_pipeline(trained_breast,
                                          fault_plan=plan)
            stats = pipeline.run_stream(inputs)
            preds = [r.prediction for r in
                     sorted(stats.results, key=lambda r: r.request_id)]
            assert preds == expected, f"seed {seed} diverged"
            assert stats.dead_letters == []
            if plan:
                assert stats.total_retries > 0

    def test_permanent_fault_dead_letters_exactly_that_request(
            self, trained_breast, streamed_baseline):
        inputs, expected = streamed_baseline
        victim = 1
        pipeline, _ = _build_pipeline(
            trained_breast,
            fault_plan=FaultPlan.parse(
                f"permanent:stage=2:request={victim}"
            ),
        )
        stats = pipeline.run_stream(inputs)
        completed = sorted(r.request_id for r in stats.results)
        assert completed == [i for i in range(len(inputs))
                             if i != victim]
        [letter] = stats.dead_letters
        assert letter.request_id == victim
        assert letter.reason == REASON_PERMANENT
        assert letter.stage == 2
        assert letter.attempts == 1
        assert "injected permanent fault" in letter.error
        # surviving predictions are unaffected
        for result in stats.results:
            assert result.prediction == expected[result.request_id]
        assert "dead-lettered" in stats.utilization_report()
        assert f"request {victim}" in stats.failure_report()
        assert_no_stream_threads()

    def test_exhausted_retries_dead_letter(self, trained_breast,
                                           streamed_baseline):
        inputs, _ = streamed_baseline
        count = FAST_RETRIES.max_retries + 5  # beyond the budget
        pipeline, _ = _build_pipeline(
            trained_breast,
            fault_plan=FaultPlan.parse(
                f"transient:stage=0:request=2:count={count}"
            ),
        )
        stats = pipeline.run_stream(inputs)
        [letter] = stats.dead_letters
        assert letter.request_id == 2
        assert letter.reason == REASON_EXHAUSTED
        assert letter.attempts == FAST_RETRIES.max_retries + 1
        assert len(stats.results) == len(inputs) - 1

    def test_deadline_dead_letters_with_reason(self, trained_breast,
                                               streamed_baseline):
        inputs, _ = streamed_baseline
        pipeline, _ = _build_pipeline(trained_breast,
                                      request_deadline=1e-6)
        stats = pipeline.run_stream(inputs)
        assert stats.results == []
        assert len(stats.dead_letters) == len(inputs)
        assert all(d.reason == REASON_DEADLINE
                   for d in stats.dead_letters)
        assert sorted(d.request_id for d in stats.dead_letters) == \
            list(range(len(inputs)))
        assert_no_stream_threads()

    def test_crash_is_absorbed_by_supervisor_restart(
            self, trained_breast, streamed_baseline):
        inputs, expected = streamed_baseline
        pipeline, _ = _build_pipeline(
            trained_breast,
            fault_plan=FaultPlan.parse("crash:stage=2:request=0"),
            restart_budget=2,
        )
        stats = pipeline.run_stream(inputs)
        preds = [r.prediction for r in
                 sorted(stats.results, key=lambda r: r.request_id)]
        assert preds == expected  # no request lost
        assert stats.dead_letters == []
        assert stats.stage_restarts[2] == 1
        assert stats.total_restarts == 1
        assert "restarts=1" in stats.utilization_report()
        assert_no_stream_threads()

    def test_exhausted_restart_budget_is_fatal_but_clean(
            self, trained_breast, streamed_baseline):
        inputs, _ = streamed_baseline
        pipeline, _ = _build_pipeline(
            trained_breast,
            fault_plan=FaultPlan.parse(
                "crash:stage=2:request=0:count=10"
            ),
            restart_budget=1,
        )
        with pytest.raises(StageFailedError,
                           match="exhausted its restart budget"):
            pipeline.run_stream(inputs)
        assert_no_stream_threads()

    def test_slow_fault_delays_but_completes(self, trained_breast,
                                             streamed_baseline):
        inputs, expected = streamed_baseline
        pipeline, _ = _build_pipeline(
            trained_breast,
            fault_plan=FaultPlan.parse(
                "slow:stage=1:request=0:delay=0.2;"
                "stall:stage=3:request=1:delay=0.1"
            ),
        )
        stats = pipeline.run_stream(inputs)
        preds = [r.prediction for r in
                 sorted(stats.results, key=lambda r: r.request_id)]
        assert preds == expected
        assert stats.dead_letters == []
