"""Failure-injection tests for the stream runtime's retry machinery."""

import pytest

from repro.errors import StageFailedError
from repro.stream.channel import Channel, ChannelClosed
from repro.stream.worker import StageWorker


class FlakyExecutor:
    """Fails the first ``failures`` calls for each item, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self._attempts: dict[int, int] = {}

    def process(self, item):
        seen = self._attempts.get(item, 0)
        self._attempts[item] = seen + 1
        if seen < self.failures:
            raise RuntimeError(f"transient failure #{seen + 1}")
        return item * 10


def drive(worker, items):
    worker.start()
    for item in items:
        worker.inbound.put(item)
    worker.inbound.close()
    results = []
    while True:
        try:
            results.append(worker.outbound.get(timeout=2))
        except ChannelClosed:
            break
    return results


class TestRetries:
    def test_transient_failures_recovered(self):
        executor = FlakyExecutor(failures=2)
        worker = StageWorker("flaky", executor, Channel(), Channel(),
                             max_retries=3)
        results = drive(worker, [1, 2, 3])
        worker.join(timeout=2)
        assert results == [10, 20, 30]
        assert worker.retries == 6  # two retries per item
        assert worker.items_processed == 3

    def test_persistent_failure_raises(self):
        executor = FlakyExecutor(failures=10)
        worker = StageWorker("doomed", executor, Channel(), Channel(),
                             max_retries=2)
        results = drive(worker, [1])
        assert results == []
        with pytest.raises(StageFailedError, match="transient"):
            worker.join(timeout=2)

    def test_zero_retries_fails_immediately(self):
        executor = FlakyExecutor(failures=1)
        worker = StageWorker("strict", executor, Channel(), Channel(),
                             max_retries=0)
        drive(worker, [1])
        with pytest.raises(StageFailedError):
            worker.join(timeout=2)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            StageWorker("bad", FlakyExecutor(0), Channel(), Channel(),
                        max_retries=-1)

    def test_pipeline_with_retries(self, trained_breast,
                                   breast_dataset):
        """End-to-end: a pipeline configured with retries behaves
        identically when nothing fails."""
        from repro.config import RuntimeConfig
        from repro.planner.allocation import allocate_even
        from repro.planner.plan import ClusterSpec
        from repro.protocol import DataProvider, ModelProvider
        from repro.stream import Pipeline

        config = RuntimeConfig(key_size=128, seed=91)
        model_provider = ModelProvider(trained_breast, decimals=3,
                                       config=config)
        data_provider = DataProvider(value_decimals=3, config=config)
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        plan = allocate_even(model_provider.stages, cluster).plan
        pipeline = Pipeline(model_provider, data_provider, plan,
                            max_retries=2)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:3]))
        assert len(stats.results) == 3
        assert stats.stage_retries == [0] * len(model_provider.stages)
