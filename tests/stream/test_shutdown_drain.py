"""Shutdown-drain hardening: Channel.drain semantics and the
StageWorker.finalize dead-letter drain that keeps a peer disconnect
mid-stream from hanging the pipeline."""

import threading

import pytest

from repro.stream.channel import Channel, ChannelClosed
from repro.stream.executors import StreamItem
from repro.stream.retry import REASON_SHUTDOWN
from repro.stream.worker import StageWorker


class TestChannelDrain:
    def test_drain_returns_and_empties(self):
        channel = Channel(capacity=4)
        for i in range(3):
            channel.put(i)
        assert channel.drain() == [0, 1, 2]
        assert channel.approx_size() == 0
        assert channel.drain() == []

    def test_drain_works_after_close(self):
        channel = Channel(capacity=4)
        channel.put("stranded")
        channel.close()
        assert channel.drain() == ["stranded"]
        with pytest.raises(ChannelClosed):
            channel.get(timeout=0.1)

    def test_drain_wakes_blocked_producer(self):
        channel = Channel(capacity=1)
        channel.put("filler")
        delivered = []

        def produce():
            channel.put("late")
            delivered.append(True)

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        assert channel.drain() == ["filler"]
        producer.join(5)
        assert delivered, "drain did not free capacity for the producer"
        assert channel.get(timeout=1) == "late"

    def test_put_front_works_after_close(self):
        channel = Channel(capacity=1)
        channel.close()
        channel.put_front("tombstone")
        assert channel.get() == "tombstone"


class _NoopExecutor:
    def process(self, item):
        return item


class TestFinalizeDrain:
    def _worker(self, inbound, outbound, dead_letter):
        return StageWorker(
            "stage-0", _NoopExecutor(), inbound, outbound,
            dead_letter=dead_letter, stage_index=0,
        )

    def test_finalize_tombstones_stranded_items(self):
        """An unstarted (or wedged) dead-letter stage must convert
        everything still queued into accounted shutdown tombstones and
        push them to the sink before closing the outbound."""
        inbound = Channel(capacity=8)
        outbound = Channel(capacity=8)
        items = [StreamItem(i, None) for i in range(3)]
        for item in items:
            inbound.put(item)
        worker = self._worker(inbound, outbound, dead_letter=True)
        worker.finalize()
        assert inbound.approx_size() == 0
        assert outbound.closed
        letters = worker.ledger.dead_letters
        assert len(letters) == 3
        assert {letter.request_id for letter in letters} == {0, 1, 2}
        assert all(letter.reason == REASON_SHUTDOWN
                   for letter in letters)
        forwarded = [outbound.get() for _ in range(3)]
        assert all(item.fault is not None for item in forwarded)
        with pytest.raises(ChannelClosed):
            outbound.get(timeout=0.1)

    def test_finalize_forwards_existing_tombstones_untouched(self):
        inbound = Channel(capacity=8)
        outbound = Channel(capacity=8)
        poisoned = StreamItem(7, None)
        worker = self._worker(inbound, outbound, dead_letter=True)
        # Pre-faulted item: already accounted upstream, must pass
        # through without a second dead letter.
        poisoned.fault = object()
        inbound.put(poisoned)
        worker.finalize()
        assert outbound.get().request_id == 7
        assert not worker.ledger.dead_letters

    def test_finalize_without_dead_letter_mode_just_closes(self):
        inbound = Channel(capacity=8)
        outbound = Channel(capacity=8)
        inbound.put(StreamItem(0, None))
        worker = self._worker(inbound, outbound, dead_letter=False)
        worker.finalize()
        assert outbound.closed
        assert not worker.ledger.dead_letters
        assert inbound.approx_size() == 1  # untouched

    def test_finalize_is_idempotent(self):
        inbound = Channel(capacity=8)
        outbound = Channel(capacity=8)
        inbound.put(StreamItem(0, None))
        worker = self._worker(inbound, outbound, dead_letter=True)
        worker.finalize()
        worker.finalize()
        assert len(worker.ledger.dead_letters) == 1
