"""Stream executors carrying lane-packed items.

The per-stage executors must accept a :class:`PackedEncryptedTensor`
in a :class:`StreamItem` and keep it packed across obfuscation,
affines, decrypt/activations, and re-encryption — with results equal
to running each lane through the unpacked path.
"""

import random

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.encoding import LanePacker
from repro.crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from repro.obfuscation.obfuscator import Obfuscator
from repro.protocol import DataProvider, ModelProvider
from repro.scaling.fixed_point import scale_to_int, \
    scaled_affine_for_layer
from repro.stream.executors import (
    LinearStageExecutor,
    NonLinearStageExecutor,
    StreamItem,
)


@pytest.fixture()
def parties(trained_breast):
    config = RuntimeConfig(key_size=256, seed=41, pack_lanes=3)
    model_provider = ModelProvider(trained_breast, decimals=3,
                                   config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    model_provider.register_public_key(data_provider.public_key)
    return model_provider, data_provider


def packed_input(data_provider, model_provider, xs):
    packer = model_provider.lane_packer(len(xs))
    assert packer is not None
    return data_provider.encrypt_input_batch(np.asarray(xs), packer)


class TestPackedLinearExecutor:
    def test_matches_per_sample_affine(self, parties):
        model_provider, data_provider = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        executor = LinearStageExecutor(
            stage_index=0,
            affines=[affine],
            obfuscator=Obfuscator(5),
            threads=2,
            use_partitioning=True,
            rng=random.Random(0),
            final=True,  # skip obfuscation so we can decrypt directly
            config=model_provider.config,
        )
        xs = np.random.default_rng(1).standard_normal((3, 30))
        tensor = packed_input(data_provider, model_provider, xs)
        item = executor.process(StreamItem(0, tensor))
        assert isinstance(item.tensor, PackedEncryptedTensor)
        decrypted = item.tensor.decrypt(data_provider._private_key)
        for row, x in zip(decrypted, xs):
            expected = affine.apply_plain(scale_to_int(x, 3),
                                          input_exponent=3)
            assert np.array_equal(row, expected)

    def test_obfuscation_round_trip(self, parties):
        """Obfuscate + deobfuscate is the identity on packed cells —
        the permutation moves whole ciphertexts, lanes ride along."""
        model_provider, data_provider = parties
        layer = model_provider.stages[0].primitives[0].layer
        affine = scaled_affine_for_layer(layer, (30,), 3)
        obfuscator = Obfuscator(6)
        executor = LinearStageExecutor(
            0, [affine], obfuscator, threads=1,
            use_partitioning=False, rng=random.Random(0), final=False,
            config=model_provider.config,
        )
        xs = np.zeros((2, 30))
        tensor = packed_input(data_provider, model_provider, xs)
        item = executor.process(StreamItem(0, tensor))
        assert isinstance(item.tensor, PackedEncryptedTensor)
        assert item.obfuscation_round == 0
        assert obfuscator.rounds_started == 1


class TestPackedNonLinearExecutor:
    def _packer(self, data_provider, lanes=2, mag_bits=24):
        return LanePacker(data_provider.public_key, lanes=lanes,
                          mag_bits=mag_bits)

    def test_relu_then_reencrypt(self, parties):
        _, data_provider = parties
        values = np.array([[1.5, -2.0, 0.5, -0.1],
                           [-1.5, 2.0, -0.5, 0.1]])
        packer = self._packer(data_provider)
        tensor = PackedEncryptedTensor.encrypt_batch(
            scale_to_int(values, 3), packer, exponent=3,
        )
        executor = NonLinearStageExecutor(
            1, ["relu"], data_provider._private_key, 3, threads=2,
            rng=random.Random(2), final=False,
        )
        item = executor.process(StreamItem(0, tensor,
                                           obfuscation_round=9))
        assert isinstance(item.tensor, PackedEncryptedTensor)
        out = item.tensor.decrypt_float(data_provider._private_key)
        assert np.allclose(out, np.maximum(values, 0.0))
        assert item.obfuscation_round == 9

    def test_final_softmax_rows(self, parties):
        """The final packed stage returns one probability row per
        lane, softmaxed per row (not across the whole flat block)."""
        _, data_provider = parties
        values = np.array([[1.0, 2.0, 3.0], [5.0, 4.0, 3.0]])
        packer = self._packer(data_provider)
        tensor = PackedEncryptedTensor.encrypt_batch(
            scale_to_int(values, 3), packer, exponent=3,
        )
        executor = NonLinearStageExecutor(
            5, ["softmax"], data_provider._private_key, 3, threads=1,
            rng=random.Random(3), final=True,
        )
        item = executor.process(StreamItem(0, tensor))
        assert item.tensor is None
        assert item.result.shape == (2, 3)
        assert np.allclose(item.result.sum(axis=1), 1.0)
        assert item.result[0].argmax() == 2
        assert item.result[1].argmax() == 0

    def test_packed_matches_unpacked_lanewise(self, parties):
        _, data_provider = parties
        values = np.array([[0.25, -0.75], [1.25, -0.25]])
        packer = self._packer(data_provider)
        packed = PackedEncryptedTensor.encrypt_batch(
            scale_to_int(values, 3), packer, exponent=3,
        )
        executor = NonLinearStageExecutor(
            1, ["sigmoid"], data_provider._private_key, 3, threads=1,
            rng=random.Random(4), final=False,
        )
        packed_out = executor.process(StreamItem(0, packed)) \
            .tensor.decrypt_float(data_provider._private_key)
        for lane, row in enumerate(values):
            single = EncryptedTensor.encrypt(
                scale_to_int(row, 3), data_provider.public_key,
                random.Random(5), exponent=3,
            )
            lane_out = executor.process(StreamItem(0, single)) \
                .tensor.decrypt_float(data_provider._private_key)
            assert np.allclose(packed_out[lane], lane_out)
