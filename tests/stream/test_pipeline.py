"""Integration tests for the threaded stream-processing runtime."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.errors import StreamError
from repro.planner.allocation import allocate_even, \
    allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.profiling import profile_primitive_times
from repro.protocol import DataProvider, ModelProvider
from repro.scaling.parameter_scaling import round_parameters
from repro.stream import Pipeline


@pytest.fixture(scope="module")
def breast_pipeline_parts(request):
    trained = request.getfixturevalue("trained_breast")
    config = RuntimeConfig(key_size=128, seed=21)
    model_provider = ModelProvider(trained, decimals=3, config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    stages = model_provider.stages
    times = profile_primitive_times(stages, CostModel.reference(), 3)
    cluster = ClusterSpec.homogeneous(2, 1, 2)
    allocation = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
    return trained, model_provider, data_provider, allocation.plan


class TestPipelineCorrectness:
    def test_stream_matches_plaintext(self, breast_pipeline_parts,
                                      breast_dataset):
        trained, model_provider, data_provider, plan = \
            breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        inputs = list(breast_dataset.test_x[:6])
        stats = pipeline.run_stream(inputs)
        rounded = round_parameters(trained, 3)
        expected = rounded.predict(
            np.round(np.stack(inputs), 3)
        )
        by_id = sorted(stats.results, key=lambda r: r.request_id)
        assert [r.prediction for r in by_id] == list(expected)

    def test_all_stages_touch_every_request(self,
                                            breast_pipeline_parts,
                                            breast_dataset):
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:4]))
        assert all(count == 4 for count in stats.stage_items)

    def test_latency_and_throughput_reported(self,
                                             breast_pipeline_parts,
                                             breast_dataset):
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:4]))
        assert stats.mean_latency > 0
        assert stats.throughput > 0
        assert stats.wall_time > 0

    def test_pipelining_overlaps_requests(self, breast_pipeline_parts,
                                          breast_dataset):
        """With multiple requests in flight, total wall time is less
        than the sum of individual latencies (requests overlap)."""
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:6]))
        total_latency = sum(r.latency for r in stats.results)
        assert stats.wall_time < total_latency

    def test_utilization_report(self, breast_pipeline_parts,
                                breast_dataset):
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:4]))
        utilizations = stats.stage_utilizations()
        assert len(utilizations) == len(plan.stages)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utilizations)
        report = stats.utilization_report()
        assert "bottleneck" in report
        assert "req/s" in report

    def test_pipeline_reusable_across_streams(self,
                                              breast_pipeline_parts,
                                              breast_dataset):
        """Regression: run_stream's drain shuts each executor's thread
        pool down, but the executors outlive the stream — a second
        run_stream on the same Pipeline dead-lettered every request
        with 'cannot schedule new futures after shutdown' wherever a
        stage partitioned into more than one task.  Pools are now
        recreated lazily per stream."""
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        inputs = list(breast_dataset.test_x[:2])
        first = pipeline.run_stream(inputs)
        second = pipeline.run_stream(inputs)
        assert not first.dead_letters and not second.dead_letters
        assert len(second.results) == len(inputs)
        first_by_id = sorted(first.results, key=lambda r: r.request_id)
        second_by_id = sorted(second.results,
                              key=lambda r: r.request_id)
        assert [r.prediction for r in second_by_id] \
            == [r.prediction for r in first_by_id]

    def test_empty_stream_rejected(self, breast_pipeline_parts):
        _, model_provider, data_provider, plan = breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan)
        with pytest.raises(StreamError):
            pipeline.run_stream([])

    @pytest.mark.timeout(120)
    def test_admission_does_not_deadlock_on_tiny_channels(
            self, breast_pipeline_parts, breast_dataset):
        """Regression: run_stream used to admit every input before
        draining the sink, so num_inputs greater than the pipeline's
        total channel capacity deadlocked (producer blocked on a full
        source channel, sink never read).  Admission now happens from
        a producer thread concurrent with draining."""
        trained, model_provider, data_provider, plan = \
            breast_pipeline_parts
        pipeline = Pipeline(model_provider, data_provider, plan,
                            channel_capacity=1)
        # 16 inputs vs total buffering of ~(stages + 1) slots
        inputs = [breast_dataset.test_x[i % 8] for i in range(16)]
        stats = pipeline.run_stream(inputs)
        assert len(stats.results) == 16
        rounded = round_parameters(trained, 3)
        expected = rounded.predict(np.round(np.stack(inputs), 3))
        by_id = sorted(stats.results, key=lambda r: r.request_id)
        assert [r.prediction for r in by_id] == list(expected)


class TestPartitioningToggle:
    def test_without_partitioning_same_results(self, trained_breast,
                                               breast_dataset):
        config = RuntimeConfig(key_size=128, seed=22)
        model_provider = ModelProvider(trained_breast, decimals=3,
                                       config=config)
        data_provider = DataProvider(value_decimals=3, config=config)
        cluster = ClusterSpec.homogeneous(2, 1, 2)
        allocation = allocate_even(model_provider.stages, cluster,
                                   use_tensor_partitioning=False)
        pipeline = Pipeline(model_provider, data_provider,
                            allocation.plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:3]))
        rounded = round_parameters(trained_breast, 3)
        expected = rounded.predict(
            np.round(breast_dataset.test_x[:3], 3)
        )
        by_id = sorted(stats.results, key=lambda r: r.request_id)
        assert [r.prediction for r in by_id] == list(expected)


class TestConvPipeline:
    def test_conv_model_streams(self, tiny_conv_model):
        config = RuntimeConfig(key_size=128, seed=23)
        model_provider = ModelProvider(tiny_conv_model, decimals=2,
                                       config=config)
        data_provider = DataProvider(value_decimals=2, config=config)
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        allocation = allocate_even(model_provider.stages, cluster)
        pipeline = Pipeline(model_provider, data_provider,
                            allocation.plan)
        rng = np.random.default_rng(1)
        inputs = [rng.uniform(0, 1, (1, 8, 8)) for _ in range(2)]
        stats = pipeline.run_stream(inputs)
        assert len(stats.results) == 2
        for result in stats.results:
            assert 0 <= result.prediction < 3
