"""Unit tests for the table renderer and helpers."""

import pytest

from repro.errors import ReproError
from repro.experiments.report import format_table, percent_reduction


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["bbbb", 20]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert lines[2].startswith("----")
        assert "bbbb" in lines[4]

    def test_float_formatting(self):
        text = format_table(["v"], [[0.00012345], [1234.5], [0.0]])
        assert "1.235e-04" in text or "1.234e-04" in text
        assert "1.235e+03" in text or "1.234e+03" in text
        assert "0" in text

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])

    def test_no_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestPercentReduction:
    def test_basic(self):
        assert percent_reduction(10.0, 4.0) == pytest.approx(60.0)

    def test_negative_when_worse(self):
        assert percent_reduction(4.0, 10.0) == pytest.approx(-150.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ReproError):
            percent_reduction(0.0, 1.0)
