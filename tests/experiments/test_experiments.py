"""Fast end-to-end checks of the experiment harness.

Each experiment runs on its smallest configuration and is checked for
the qualitative *shape* the paper reports (who wins, monotone trends),
not absolute numbers.  The CIFAR models are excluded for speed; the
benchmark suite covers fuller configurations.
"""

import pytest

from repro.experiments import (
    exp1_scaling,
    exp2_stream,
    exp3_allocation,
    exp4_partitioning,
    exp5_leakage,
    exp6_comparison,
    fig1_paillier,
)
from repro.experiments.common import prepare_model

SMALL = ("breast", "heart")


class TestFig1:
    def test_rows_and_trends(self):
        rows = fig1_paillier.run_fig1(key_sizes=(128, 256),
                                      sample_elements=8, repeats=1)
        assert [row.key_size for row in rows] == [128, 256]
        for row in rows:
            # Fig. 1 shape: enc/dec dominate arithmetic by orders of
            # magnitude.
            assert row.encrypt_seconds > 10 * row.add_seconds
            assert row.decrypt_seconds > 10 * row.add_seconds
        # larger keys are slower
        assert rows[1].encrypt_seconds > rows[0].encrypt_seconds

    def test_render(self):
        rows = fig1_paillier.run_fig1(key_sizes=(128,),
                                      sample_elements=4, repeats=1)
        text = fig1_paillier.render_fig1(rows)
        assert "128" in text


class TestExp1:
    def test_accuracy_shape(self):
        rows = exp1_scaling.run_accuracy_tables(SMALL, max_decimals=4)
        for row in rows:
            # Tables IV/V shape: the largest factor recovers (nearly)
            # the original accuracy; the smallest factor is worse or
            # equal.
            assert row.train_by_decimals[4] >= \
                row.train_by_decimals[0] - 1e-9
            assert abs(row.test_by_decimals[4] - row.original_test) \
                < 2.0

    def test_selected_factor_recorded(self):
        rows = exp1_scaling.run_accuracy_tables(("breast",),
                                                max_decimals=4)
        assert 0 <= rows[0].selected_decimals <= 6

    def test_latency_increases_with_factor(self):
        rows = exp1_scaling.run_latency_vs_factor(("mnist-1",),
                                                  total_cores=24,
                                                  max_decimals=4)
        latencies = rows[0].latency_by_decimals
        assert latencies[4] > latencies[0]

    def test_renders(self):
        rows = exp1_scaling.run_accuracy_tables(("breast",),
                                                max_decimals=2)
        assert "Table IV" in exp1_scaling.render_accuracy_table(
            rows, "train"
        )
        assert "Table V" in exp1_scaling.render_accuracy_table(
            rows, "test"
        )


class TestExp2:
    def test_ordering(self):
        rows = exp2_stream.run_stream_comparison(SMALL)
        for row in rows:
            # PlainBase << PP-50 < PP-25 < CipherBase
            assert row.plain_base < row.pp_stream_50
            assert row.pp_stream_50 < row.pp_stream_25
            assert row.pp_stream_25 < row.cipher_base
            assert row.reduction_50 > row.reduction_25 > 50.0

    def test_render(self):
        rows = exp2_stream.run_stream_comparison(("breast",))
        assert "Fig. 8" in exp2_stream.render_stream_comparison(rows)


class TestExp3:
    def test_balancing_helps(self):
        rows = exp3_allocation.run_allocation_comparison(
            ("mnist-1",), core_sweep=(12, 24)
        )
        for row in rows:
            assert row.balanced_latency <= row.even_latency * 1.05

    def test_render(self):
        rows = exp3_allocation.run_allocation_comparison(
            ("breast",), core_sweep=(12,)
        )
        assert "Fig. 7" in \
            exp3_allocation.render_allocation_comparison(rows)


class TestExp4:
    def test_partitioning_helps_conv_model(self):
        rows = exp4_partitioning.run_partitioning_comparison(
            ("mnist-2",), core_sweep=(24,)
        )
        for row in rows:
            assert row.with_partitioning < row.without_partitioning

    def test_gain_grows_with_cores(self):
        """The paper's observation: more cores -> larger TP gains."""
        rows = exp4_partitioning.run_partitioning_comparison(
            ("mnist-2",), core_sweep=(12, 48)
        )
        by_cores = {row.total_cores: row.reduction for row in rows}
        assert by_cores[48] >= by_cores[12]

    def test_render(self):
        rows = exp4_partitioning.run_partitioning_comparison(
            ("breast",), core_sweep=(12,)
        )
        assert "Fig. 9" in \
            exp4_partitioning.render_partitioning_comparison(rows)


class TestExp5:
    def test_monotone_and_paper_magnitudes(self):
        rows = exp5_leakage.run_leakage(
            lengths=(2 ** 5, 2 ** 9, 2 ** 13), trials=4,
            source="gaussian",
        )
        values = [row.distance_correlation for row in rows]
        assert values[0] > values[1] > values[2]
        assert values[0] > 0.15
        assert values[2] < 0.05

    def test_activation_source(self):
        rows = exp5_leakage.run_leakage(
            lengths=(2 ** 5, 2 ** 8), trials=2, source="activations",
            activation_models=("breast", "heart"),
        )
        assert all(0 <= row.distance_correlation <= 1 for row in rows)

    def test_render(self):
        rows = exp5_leakage.run_leakage(lengths=(32,), trials=2,
                                        source="gaussian")
        assert "Table VI" in exp5_leakage.render_leakage(rows)


class TestExp6:
    def test_pp_stream_beats_ezpc(self):
        rows = exp6_comparison.run_comparison(("mnist-1",),
                                              ezpc_max_real_relu=8)
        by_system = {(r.system, r.model_key): r.latency_seconds
                     for r in rows}
        assert by_system[("PP-Stream", "mnist-1")] < \
            by_system[("EzPC", "mnist-1")]
        assert by_system[("PP-Stream", "mnist-1")] < \
            by_system[("SecureML", "mnist-1")]

    def test_reported_rows_present(self):
        rows = exp6_comparison.run_comparison(("mnist-1", "mnist-2"),
                                              ezpc_max_real_relu=4)
        systems = {row.system for row in rows}
        assert {"SecureML", "CryptoNets", "CryptoDL", "EzPC",
                "PP-Stream"} <= systems

    def test_render(self):
        rows = exp6_comparison.run_comparison(("mnist-1",),
                                              ezpc_max_real_relu=4)
        assert "Table VII" in exp6_comparison.render_comparison(rows)


class TestExp7:
    def test_throughput_ordering(self):
        from repro.experiments import exp7_throughput

        rows = exp7_throughput.run_throughput(("breast",), requests=40)
        row = rows[0]
        assert row.pp_stream_25 > row.cipher_base
        assert row.speedup_50 > 2.0

    def test_latency_vs_load_saturates(self):
        from repro.experiments import exp7_throughput

        rows = exp7_throughput.run_latency_vs_load(
            "breast", total_cores=24, utilizations=(0.3, 1.3),
            requests=60,
        )
        by_util = {r.utilization: r.mean_latency for r in rows}
        assert by_util[1.3] > by_util[0.3]

    def test_render(self):
        from repro.experiments import exp7_throughput

        rows = exp7_throughput.run_throughput(("breast",), requests=20)
        assert "throughput" in \
            exp7_throughput.render_throughput(rows).lower()


class TestAblationMerging:
    def test_single_stage_loses(self):
        from repro.experiments import ablation_merging

        rows = ablation_merging.run_merging_ablation(("breast",),
                                                     total_cores=24)
        row = rows[0]
        assert row.merged < row.single_stage
        assert "Ablation" in \
            ablation_merging.render_merging_ablation(rows)

    def test_unmerged_stages_cover_all_primitives(self):
        from repro.experiments.ablation_merging import unmerged_stages
        from repro.planner.primitive import extract_primitives
        from repro.nn import model_zoo

        model = model_zoo.build_model("breast")
        stages = unmerged_stages(model)
        assert len(stages) == len(extract_primitives(model))
        assert all(len(s.primitives) == 1 for s in stages)


class TestCommon:
    def test_prepare_model_cached(self):
        assert prepare_model("breast") is prepare_model("breast")

    def test_trained_to_useful_accuracy(self):
        prepared = prepare_model("breast")
        assert prepared.train_accuracy > 0.9

    def test_unknown_key(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            prepare_model("mystery")
