"""Unit tests for the distance-correlation leakage metric (Exp#5)."""

import numpy as np
import pytest

from repro.errors import ObfuscationError
from repro.obfuscation.leakage import (
    distance_correlation,
    distance_covariance,
    leakage_by_length,
    permutation_leakage,
)


class TestDistanceCorrelation:
    def test_identical_vectors(self):
        x = np.array([1.0, 2.0, 5.0, -3.0, 0.5])
        assert distance_correlation(x, x) == pytest.approx(1.0)

    def test_linear_relation_is_one(self):
        """dCor is invariant to affine maps: dCor(x, 3x+2) = 1."""
        x = np.linspace(-2, 2, 40)
        assert distance_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal(50), rng.standard_normal(50)
        assert distance_correlation(x, y) == pytest.approx(
            distance_correlation(y, x)
        )

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.standard_normal(30)
            y = rng.standard_normal(30)
            value = distance_correlation(x, y)
            assert 0.0 <= value <= 1.0

    def test_independent_samples_small(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(400)
        y = rng.standard_normal(400)
        assert distance_correlation(x, y) < 0.15

    def test_constant_sample_returns_zero(self):
        x = np.ones(10)
        y = np.arange(10.0)
        assert distance_correlation(x, y) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ObfuscationError):
            distance_covariance(np.arange(3.0), np.arange(4.0))

    def test_too_short(self):
        with pytest.raises(ObfuscationError):
            distance_covariance(np.array([1.0]), np.array([2.0]))

    def test_nonlinear_dependence_detected(self):
        """dCor (unlike Pearson) catches y = x^2 on symmetric x."""
        x = np.linspace(-1, 1, 60)
        y = x ** 2
        assert distance_correlation(x, y) > 0.4


class TestPermutationLeakage:
    def test_deterministic(self):
        values = np.random.default_rng(3).standard_normal(64)
        assert permutation_leakage(values, seed=9) == pytest.approx(
            permutation_leakage(values, seed=9)
        )

    def test_bounded(self):
        values = np.random.default_rng(4).standard_normal(64)
        assert 0.0 <= permutation_leakage(values, seed=1) <= 1.0


class TestLeakageByLength:
    def test_monotone_trend(self):
        """The paper's Table VI: leakage falls as tensors grow."""
        results = leakage_by_length([2 ** 5, 2 ** 8, 2 ** 11], trials=6,
                                    seed=0)
        assert results[2 ** 5] > results[2 ** 8] > results[2 ** 11]

    def test_magnitudes_match_paper_regime(self):
        """Paper: ~0.29 at 2^5, ~0.02 at 2^13."""
        results = leakage_by_length([2 ** 5, 2 ** 13], trials=4, seed=1)
        assert 0.15 < results[2 ** 5] < 0.5
        assert results[2 ** 13] < 0.05

    def test_bad_length(self):
        with pytest.raises(ObfuscationError):
            leakage_by_length([1], trials=1)

    def test_custom_sampler(self):
        def sampler(rng, n):
            return np.arange(float(n))

        results = leakage_by_length([32], trials=2, seed=0,
                                    value_sampler=sampler)
        assert 0.0 <= results[32] <= 1.0
