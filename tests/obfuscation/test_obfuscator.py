"""Unit tests for the per-round obfuscation state machine."""

import pytest

from repro.errors import ObfuscationError
from repro.obfuscation.obfuscator import Obfuscator


class TestRounds:
    def test_round_trip(self):
        obfuscator = Obfuscator(master_seed=1)
        items = list(range(10))
        round_id, permuted = obfuscator.obfuscate(items)
        assert sorted(permuted) == items
        assert obfuscator.deobfuscate(round_id, permuted) == items

    def test_fresh_permutation_per_round(self):
        """Section III-C: different random seeds per round."""
        obfuscator = Obfuscator(master_seed=2)
        items = list(range(64))
        _, first = obfuscator.obfuscate(items)
        _, second = obfuscator.obfuscate(items)
        assert first != second

    def test_round_ids_monotone(self):
        obfuscator = Obfuscator(master_seed=3)
        ids = [obfuscator.obfuscate([1, 2, 3])[0] for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert obfuscator.rounds_started == 5

    def test_double_deobfuscate_rejected(self):
        obfuscator = Obfuscator(master_seed=4)
        round_id, permuted = obfuscator.obfuscate([1, 2, 3])
        obfuscator.deobfuscate(round_id, permuted)
        with pytest.raises(ObfuscationError):
            obfuscator.deobfuscate(round_id, permuted)

    def test_unknown_round_rejected(self):
        obfuscator = Obfuscator(master_seed=5)
        with pytest.raises(ObfuscationError):
            obfuscator.deobfuscate(99, [1, 2])

    def test_out_of_order_deobfuscation_allowed(self):
        """The stream runtime completes rounds out of order."""
        obfuscator = Obfuscator(master_seed=6)
        items = list(range(8))
        r0, p0 = obfuscator.obfuscate(items)
        r1, p1 = obfuscator.obfuscate(items)
        assert obfuscator.deobfuscate(r1, p1) == items
        assert obfuscator.deobfuscate(r0, p0) == items

    def test_deterministic_across_instances(self):
        a = Obfuscator(master_seed=7)
        b = Obfuscator(master_seed=7)
        items = list(range(16))
        assert a.obfuscate(items)[1] == b.obfuscate(items)[1]

    def test_history_records_rounds(self):
        obfuscator = Obfuscator(master_seed=8)
        obfuscator.obfuscate([1, 2])
        obfuscator.obfuscate([1, 2, 3])
        history = obfuscator.history()
        assert [record.round_id for record in history] == [0, 1]
        assert history[1].permutation.length == 3

    def test_peek_permutation(self):
        obfuscator = Obfuscator(master_seed=9)
        round_id, permuted = obfuscator.obfuscate(list("abcd"))
        permutation = obfuscator.peek_permutation(round_id)
        assert permutation.apply(list("abcd")) == permuted
        obfuscator.deobfuscate(round_id, permuted)
        with pytest.raises(ObfuscationError):
            obfuscator.peek_permutation(round_id)
