"""Unit tests for seeded permutations."""

import numpy as np
import pytest

from repro.errors import ObfuscationError
from repro.obfuscation.permutation import Permutation


class TestConstruction:
    def test_valid_order(self):
        p = Permutation([2, 0, 1])
        assert p.length == 3
        assert p.order == (2, 0, 1)

    def test_invalid_order_rejected(self):
        with pytest.raises(ObfuscationError):
            Permutation([0, 0, 1])
        with pytest.raises(ObfuscationError):
            Permutation([0, 2])

    def test_random_deterministic(self):
        assert Permutation.random(10, seed=5) == \
            Permutation.random(10, seed=5)

    def test_random_seed_sensitivity(self):
        assert Permutation.random(32, seed=1) != \
            Permutation.random(32, seed=2)

    def test_random_zero_length_rejected(self):
        with pytest.raises(ObfuscationError):
            Permutation.random(0, seed=1)

    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity()
        assert p.apply([1, 2, 3, 4, 5]) == [1, 2, 3, 4, 5]


class TestApplyInvert:
    def test_round_trip(self):
        p = Permutation.random(20, seed=7)
        items = list(range(100, 120))
        assert p.invert(p.apply(items)) == items

    def test_apply_then_invert_arrays(self):
        p = Permutation.random(16, seed=9)
        values = np.arange(16.0)
        assert np.array_equal(p.invert_array(p.apply_array(values)),
                              values)

    def test_apply_semantics(self):
        p = Permutation([2, 0, 1])
        assert p.apply(["a", "b", "c"]) == ["c", "a", "b"]

    def test_wrong_length_rejected(self):
        p = Permutation.random(4, seed=0)
        with pytest.raises(ObfuscationError):
            p.apply([1, 2, 3])
        with pytest.raises(ObfuscationError):
            p.invert([1, 2, 3, 4, 5])

    def test_array_wrong_shape_rejected(self):
        p = Permutation.random(4, seed=0)
        with pytest.raises(ObfuscationError):
            p.apply_array(np.zeros((2, 2)))

    def test_multiset_preserved(self):
        p = Permutation.random(50, seed=3)
        items = list(range(50))
        assert sorted(p.apply(items)) == items


class TestAlgebra:
    def test_inverse_object(self):
        p = Permutation.random(12, seed=4)
        items = list("abcdefghijkl")
        assert p.inverse().apply(p.apply(items)) == items

    def test_compose(self):
        p = Permutation.random(8, seed=1)
        q = Permutation.random(8, seed=2)
        items = list(range(8))
        # compose(q) applies q first, then p
        assert p.compose(q).apply(items) == p.apply(q.apply(items))

    def test_compose_with_inverse_is_identity(self):
        p = Permutation.random(8, seed=6)
        assert p.compose(p.inverse()).is_identity()

    def test_compose_length_mismatch(self):
        with pytest.raises(ObfuscationError):
            Permutation.random(4, 0).compose(Permutation.random(5, 0))

    def test_hashable(self):
        p = Permutation.random(6, seed=8)
        q = Permutation(p.order)
        assert hash(p) == hash(q)
        assert len({p, q}) == 1
