"""Tests for the extension features beyond the paper's core design:

* model rewriting (MaxPool -> conv+ReLU) for user-supplied models,
* ciphertext re-randomization,
* the rate-limiting countermeasure of Section II-C,
* heterogeneous clusters (the paper's stated future work).
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import InfeasibleAllocationError, ModelError, \
    ProtocolError
from repro.nn.layers import Conv2d, Flatten, FullyConnected, \
    MaxPool2d, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.nn.rewrite import count_position_sensitive, \
    rewrite_for_privacy
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import extract_primitives, model_stages
from repro.protocol import (
    DataProvider,
    InferenceSession,
    ModelProvider,
    RateLimiter,
    RateLimitExceeded,
)


def model_with_maxpool():
    model = Sequential((1, 8, 8))
    model.add(Conv2d(1, 2, kernel=3, padding=1))
    model.add(ReLU())
    model.add(MaxPool2d(2))
    model.add(Flatten())
    model.add(FullyConnected(32, 3))
    model.add(SoftMax())
    return model


class TestRewriteForPrivacy:
    def test_original_is_rejected_by_planner(self):
        with pytest.raises(Exception):
            extract_primitives(model_with_maxpool())

    def test_rewritten_is_accepted(self):
        rewritten = rewrite_for_privacy(model_with_maxpool())
        stages = model_stages(rewritten)
        assert stages  # extraction succeeded
        assert count_position_sensitive(rewritten) == 0

    def test_shapes_preserved(self):
        original = model_with_maxpool()
        rewritten = rewrite_for_privacy(original)
        assert rewritten.output_shape() == original.output_shape()

    def test_weights_copied(self):
        original = model_with_maxpool()
        original.layers[0].weight[:] = 7.0
        rewritten = rewrite_for_privacy(original)
        assert np.all(rewritten.layers[0].weight == 7.0)

    def test_near_avgpool_initialization(self):
        """The substituted conv starts as average pooling, so the
        rewritten model behaves reasonably before fine-tuning."""
        original = model_with_maxpool()
        rewritten = rewrite_for_privacy(original)
        x = np.random.default_rng(0).uniform(0, 1, (3, 1, 8, 8))
        original_out = original.forward(x)
        rewritten_out = rewritten.forward(x)
        # not identical (max != avg) but correlated in argmax often;
        # check the substitution at least produces finite sane output
        assert rewritten_out.shape == original_out.shape
        assert np.all(np.isfinite(rewritten_out))

    def test_unsupported_pool_rejected(self):
        model = Sequential((1, 9, 9))
        model.add(MaxPool2d(3))
        with pytest.raises(ModelError):
            rewrite_for_privacy(model)

    def test_end_to_end_protocol_after_rewrite(self):
        rewritten = rewrite_for_privacy(model_with_maxpool())
        config = RuntimeConfig(key_size=128, seed=61)
        session = InferenceSession(
            ModelProvider(rewritten, decimals=2, config=config),
            DataProvider(value_decimals=2, config=config),
        )
        outcome = session.run(
            np.random.default_rng(1).uniform(0, 1, (1, 8, 8))
        )
        assert 0 <= outcome.prediction < 3


class TestRerandomization:
    def test_same_plaintext_new_ciphertext(self, keypair, rng):
        pub, priv = keypair
        cipher = pub.encrypt(42, rng)
        fresh = cipher.rerandomized(rng)
        assert fresh.ciphertext != cipher.ciphertext
        assert priv.decrypt(fresh) == 42

    def test_tensor_rerandomize(self, keypair, rng):
        from repro.crypto.tensor import EncryptedTensor

        tensor = EncryptedTensor.encrypt(
            np.array([1, -2, 3]), keypair[0], rng, exponent=1
        )
        fresh = tensor.rerandomized(rng)
        assert fresh.exponent == 1
        assert np.array_equal(fresh.decrypt(keypair[1]),
                              tensor.decrypt(keypair[1]))
        assert all(
            a.ciphertext != b.ciphertext
            for a, b in zip(tensor.cells(), fresh.cells())
        )


class TestRateLimiter:
    def test_window_enforced(self):
        clock = _FakeClock()
        limiter = RateLimiter(max_per_window=3, window_seconds=10,
                              clock=clock)
        for _ in range(3):
            limiter.admit()
        with pytest.raises(RateLimitExceeded):
            limiter.admit()

    def test_window_slides(self):
        clock = _FakeClock()
        limiter = RateLimiter(max_per_window=2, window_seconds=10,
                              clock=clock)
        limiter.admit()
        limiter.admit()
        clock.advance(11)
        limiter.admit()  # old events expired
        assert limiter.total_admitted == 3

    def test_lifetime_budget(self):
        clock = _FakeClock()
        limiter = RateLimiter(max_per_window=100, window_seconds=1,
                              lifetime_budget=2, clock=clock)
        limiter.admit()
        clock.advance(5)
        limiter.admit()
        clock.advance(5)
        with pytest.raises(RateLimitExceeded):
            limiter.admit()

    def test_remaining_in_window(self):
        clock = _FakeClock()
        limiter = RateLimiter(max_per_window=3, window_seconds=10,
                              clock=clock)
        assert limiter.remaining_in_window() == 3
        limiter.admit()
        assert limiter.remaining_in_window() == 2

    def test_validation(self):
        with pytest.raises(ProtocolError):
            RateLimiter(0, 1)
        with pytest.raises(ProtocolError):
            RateLimiter(1, 0)
        with pytest.raises(ProtocolError):
            RateLimiter(1, 1, lifetime_budget=0)

    def test_session_integration(self, trained_breast, breast_dataset,
                                 test_config):
        clock = _FakeClock()
        limiter = RateLimiter(max_per_window=2, window_seconds=60,
                              clock=clock)
        session = InferenceSession(
            ModelProvider(trained_breast, decimals=3,
                          config=test_config),
            DataProvider(value_decimals=3, config=test_config),
            rate_limiter=limiter,
        )
        session.run(breast_dataset.test_x[0])
        session.run(breast_dataset.test_x[1])
        with pytest.raises(RateLimitExceeded):
            session.run(breast_dataset.test_x[2])


class TestHeterogeneousClusters:
    def test_factory(self):
        cluster = ClusterSpec.heterogeneous([8, 4], [2])
        cores = [s.cores for s in cluster.servers]
        assert cores == [8, 4, 2]
        roles = [s.role for s in cluster.servers]
        assert roles == ["model", "model", "data"]

    def test_allocation_respects_per_server_capacity(self):
        model = Sequential((4,))
        model.add(FullyConnected(4, 8))
        model.add(ReLU())
        model.add(FullyConnected(8, 2))
        model.add(SoftMax())
        stages = model_stages(model)
        cluster = ClusterSpec.heterogeneous([6, 1], [2],
                                            hyperthreading=False)
        result = allocate_load_balanced(
            stages, [10.0, 1.0, 1.0, 1.0], cluster,
            method="water_filling",
        )
        loads: dict[int, int] = {}
        for assignment in result.plan.assignments:
            loads[assignment.server_id] = \
                loads.get(assignment.server_id, 0) + assignment.threads
        for server_id, load in loads.items():
            assert load <= cluster.servers[server_id].capacity(False)
        # the heavy stage lands where there is room for many threads
        heavy = result.plan.assignments[0]
        assert heavy.threads > 1

    def test_infeasible_heterogeneous(self):
        model = Sequential((4,))
        model.add(FullyConnected(4, 4))
        model.add(ReLU())
        model.add(FullyConnected(4, 2))
        model.add(SoftMax())
        stages = model_stages(model)
        # one 1-core no-HT data server cannot host 2 non-linear stages
        cluster = ClusterSpec.heterogeneous([4], [1],
                                            hyperthreading=False)
        with pytest.raises(InfeasibleAllocationError):
            allocate_load_balanced(stages, [1.0] * 4, cluster,
                                   method="water_filling")


class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds
