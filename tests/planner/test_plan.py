"""Unit tests for cluster specs and plan validation (Eq. 5-8)."""

import pytest

from repro.errors import InfeasibleAllocationError, PlannerError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.plan import (
    ClusterSpec,
    Plan,
    ServerSpec,
    StageAssignment,
)
from repro.planner.primitive import model_stages


def stages_fixture():
    model = Sequential((4,))
    model.add(FullyConnected(4, 8))
    model.add(ReLU())
    model.add(FullyConnected(8, 2))
    model.add(SoftMax())
    return model_stages(model)


class TestServerSpec:
    def test_capacity_hyperthreading(self):
        """Eq. (8): two threads per physical core with HT."""
        server = ServerSpec(0, 4, "model")
        assert server.capacity(hyperthreading=True) == 8
        assert server.capacity(hyperthreading=False) == 4

    def test_invalid_role(self):
        with pytest.raises(PlannerError):
            ServerSpec(0, 4, "gpu")

    def test_zero_cores(self):
        with pytest.raises(PlannerError):
            ServerSpec(0, 0, "model")


class TestClusterSpec:
    def test_homogeneous(self):
        cluster = ClusterSpec.homogeneous(2, 1, 4)
        assert len(cluster.servers) == 3
        assert cluster.total_cores == 12
        roles = [s.role for s in cluster.servers]
        assert roles == ["model", "model", "data"]

    def test_with_total_cores_distribution(self):
        cluster = ClusterSpec.with_total_cores(25, 2, 1)
        cores = [s.cores for s in cluster.servers]
        assert sum(cores) == 25
        assert max(cores) - min(cores) <= 1

    def test_with_total_cores_too_few(self):
        with pytest.raises(PlannerError):
            ClusterSpec.with_total_cores(2, 2, 1)

    def test_needs_both_roles(self):
        with pytest.raises(PlannerError):
            ClusterSpec((ServerSpec(0, 4, "model"),))

    def test_servers_for(self):
        from repro.nn.layers import LayerKind

        cluster = ClusterSpec.homogeneous(2, 1, 4)
        assert len(cluster.servers_for(LayerKind.LINEAR)) == 2
        assert len(cluster.servers_for(LayerKind.NONLINEAR)) == 1

    def test_ids_must_be_sequential(self):
        with pytest.raises(PlannerError):
            ClusterSpec((ServerSpec(1, 4, "model"),
                         ServerSpec(0, 4, "data")))


class TestPlanValidation:
    def test_valid_plan(self):
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        plan = Plan(
            cluster, tuple(stages),
            (
                StageAssignment(0, 0, 2),
                StageAssignment(1, 1, 2),
                StageAssignment(2, 0, 2),
                StageAssignment(3, 1, 2),
            ),
        )
        assert plan.total_threads() == 8

    def test_role_purity_enforced(self):
        """Eq. (6): a linear stage on a data server is rejected."""
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        with pytest.raises(PlannerError, match="privacy"):
            Plan(
                cluster, tuple(stages),
                (
                    StageAssignment(0, 1, 1),  # linear on data server
                    StageAssignment(1, 1, 1),
                    StageAssignment(2, 0, 1),
                    StageAssignment(3, 1, 1),
                ),
            )

    def test_capacity_enforced(self):
        """Eq. (8): oversubscription is rejected."""
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 1)  # cap 2 with HT
        with pytest.raises(InfeasibleAllocationError):
            Plan(
                cluster, tuple(stages),
                (
                    StageAssignment(0, 0, 2),
                    StageAssignment(1, 1, 1),
                    StageAssignment(2, 0, 1),  # server 0 now at 3 > 2
                    StageAssignment(3, 1, 1),
                ),
            )

    def test_min_one_thread(self):
        """Eq. (7): zero-thread stages are rejected."""
        with pytest.raises(PlannerError):
            StageAssignment(0, 0, 0)

    def test_assignment_count_checked(self):
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        with pytest.raises(PlannerError):
            Plan(cluster, tuple(stages), (StageAssignment(0, 0, 1),))

    def test_imbalance_objective(self):
        """Eq. (4): pairwise |T_i/y_i - T_j/y_j| sums."""
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        plan = Plan(
            cluster, tuple(stages),
            tuple(StageAssignment(i, 0 if i % 2 == 0 else 1, 1)
                  for i in range(4)),
        )
        times = [4.0, 2.0, 2.0, 2.0]
        # pairs: |4-2| x 3 pairs x 2 directions = 12
        assert plan.imbalance(times) == pytest.approx(12.0)

    def test_per_thread_times(self):
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        plan = Plan(
            cluster, tuple(stages),
            (
                StageAssignment(0, 0, 4),
                StageAssignment(1, 1, 2),
                StageAssignment(2, 0, 1),
                StageAssignment(3, 1, 1),
            ),
        )
        assert plan.per_thread_times([8.0, 4.0, 2.0, 1.0]) == \
            [2.0, 2.0, 2.0, 1.0]

    def test_describe(self):
        stages = stages_fixture()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        plan = Plan(
            cluster, tuple(stages),
            tuple(StageAssignment(i, 0 if i % 2 == 0 else 1, 1)
                  for i in range(4)),
        )
        assert "server" in plan.describe()
