"""Unit tests for the branch-and-bound MILP solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.planner.ilp import MILP, brute_force_milp, solve_milp


class TestPureLP:
    def test_continuous_problem(self):
        # min -x - y  s.t. x + y <= 1, x,y >= 0  ->  value -1
        problem = MILP(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.0]),
        )
        result = solve_milp(problem)
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.0)


class TestIntegerProblems:
    def test_knapsack(self):
        # max 5a + 4b (min negative) s.t. 6a + 5b <= 10, binary
        problem = MILP(
            c=np.array([-5.0, -4.0]),
            a_ub=np.array([[6.0, 5.0]]),
            b_ub=np.array([10.0]),
            bounds=[(0, 1), (0, 1)],
            integer=np.array([True, True]),
        )
        result = solve_milp(problem)
        assert result.is_optimal
        assert result.objective == pytest.approx(-5.0)
        assert result.x[0] == pytest.approx(1.0)

    def test_fractional_lp_integral_milp(self):
        # LP relaxation is fractional (x=2.5); MILP must branch.
        # min -x s.t. 2x <= 5, x integer in [0, 10]
        problem = MILP(
            c=np.array([-1.0]),
            a_ub=np.array([[2.0]]),
            b_ub=np.array([5.0]),
            bounds=[(0, 10)],
            integer=np.array([True]),
        )
        result = solve_milp(problem)
        assert result.objective == pytest.approx(-2.0)
        assert result.x[0] == pytest.approx(2.0)

    def test_equality_constraints(self):
        # min x + y s.t. x + 2y == 4, both integer >= 0
        problem = MILP(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 2.0]]),
            b_eq=np.array([4.0]),
            bounds=[(0, 10), (0, 10)],
            integer=np.array([True, True]),
        )
        result = solve_milp(problem)
        assert result.objective == pytest.approx(2.0)  # x=0, y=2

    def test_infeasible(self):
        problem = MILP(
            c=np.array([1.0]),
            a_ub=np.array([[1.0], [-1.0]]),
            b_ub=np.array([1.0, -2.0]),  # x <= 1 and x >= 2
        )
        result = solve_milp(problem)
        assert result.status == "infeasible"
        assert result.x is None

    def test_mixed_integer_continuous(self):
        # min -x - 0.5y  s.t.  x + y <= 3.5, x integer, y continuous
        problem = MILP(
            c=np.array([-1.0, -0.5]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([3.5]),
            bounds=[(0, 3), (0, 10)],
            integer=np.array([True, False]),
        )
        result = solve_milp(problem)
        assert result.x[0] == pytest.approx(3.0)
        assert result.x[1] == pytest.approx(0.5)

    def test_matches_brute_force_random(self):
        """B&B equals exhaustive search on random small integer LPs."""
        rng = np.random.default_rng(0)
        for trial in range(10):
            n = 3
            c = rng.integers(-5, 6, n).astype(float)
            a_ub = rng.integers(0, 4, (2, n)).astype(float)
            b_ub = rng.integers(3, 10, 2).astype(float)
            problem = MILP(
                c=c, a_ub=a_ub, b_ub=b_ub,
                bounds=[(0, 3)] * n,
                integer=np.ones(n, dtype=bool),
            )
            bnb = solve_milp(problem)
            brute = brute_force_milp(problem,
                                     [range(4)] * n)
            assert bnb.status == brute.status
            if bnb.is_optimal:
                assert bnb.objective == pytest.approx(brute.objective,
                                                      abs=1e-6)


class TestValidation:
    def test_bounds_length_checked(self):
        with pytest.raises(SolverError):
            MILP(c=np.array([1.0, 2.0]), bounds=[(0, 1)])

    def test_matrix_width_checked(self):
        with pytest.raises(SolverError):
            MILP(
                c=np.array([1.0]),
                a_ub=np.array([[1.0, 2.0]]),
                b_ub=np.array([1.0]),
            )

    def test_matrix_vector_pairing(self):
        with pytest.raises(SolverError):
            MILP(c=np.array([1.0]), a_ub=np.array([[1.0]]))

    def test_brute_force_requires_integers(self):
        problem = MILP(c=np.array([1.0]))
        with pytest.raises(SolverError):
            brute_force_milp(problem, [range(2)])

    def test_node_limit(self):
        """An exhausted budget with no incumbent raises."""
        rng = np.random.default_rng(1)
        n = 8
        problem = MILP(
            c=rng.standard_normal(n),
            a_ub=rng.uniform(0.1, 1.0, (1, n)),
            b_ub=np.array([2.5]),
            bounds=[(0, 5)] * n,
            integer=np.ones(n, dtype=bool),
        )
        # max_nodes=1 cannot complete the root branch; but the root may
        # already be integral -- accept either optimal or an exception.
        try:
            result = solve_milp(problem, max_nodes=1)
            assert result.status in ("optimal", "node_limit")
        except SolverError:
            pass
