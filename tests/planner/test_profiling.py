"""Unit tests for offline stage profiling."""

import pytest

from repro.costs import CostModel
from repro.errors import PlannerError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.primitive import model_stages
from repro.planner.profiling import profile_live, profile_primitive_times


def stages_fixture(hidden=16):
    model = Sequential((8,))
    model.add(FullyConnected(8, hidden))
    model.add(ReLU())
    model.add(FullyConnected(hidden, 2))
    model.add(SoftMax())
    return model_stages(model)


class TestAnalyticProfile:
    def test_positive_times(self):
        times = profile_primitive_times(stages_fixture(),
                                        CostModel.reference(), 4)
        assert all(t > 0 for t in times)
        assert len(times) == 4

    def test_bigger_layer_costs_more(self):
        small = profile_primitive_times(stages_fixture(8),
                                        CostModel.reference(), 4)
        large = profile_primitive_times(stages_fixture(64),
                                        CostModel.reference(), 4)
        assert large[0] > small[0]

    def test_scaling_decimals_increase_linear_cost(self):
        """Fig. 6 mechanism: bigger scalars -> slower scalar mults."""
        stages = stages_fixture()
        low = profile_primitive_times(stages, CostModel.reference(), 0)
        high = profile_primitive_times(stages, CostModel.reference(), 6)
        assert high[0] > low[0]          # linear stage affected
        assert high[1] == pytest.approx(low[1])  # nonlinear unaffected

    def test_nonlinear_dominated_by_crypto(self):
        """Enc/dec costs dwarf the activation itself (Fig. 1)."""
        stages = stages_fixture()
        cost_model = CostModel.reference()
        times = profile_primitive_times(stages, cost_model, 4)
        relu_stage = stages[1]
        counts = relu_stage.op_counts()
        crypto_only = counts.input_size * cost_model.decrypt \
            + counts.output_size * cost_model.encrypt
        assert times[1] == pytest.approx(crypto_only, rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(PlannerError):
            profile_primitive_times([], CostModel.reference(), 4)


class TestLiveProfile:
    def test_returns_positive_times(self):
        times = profile_live(stages_fixture(), repeats=5)
        assert len(times) == 4
        assert all(t > 0 for t in times)

    def test_repeats_validation(self):
        with pytest.raises(PlannerError):
            profile_live(stages_fixture(), repeats=0)

    def test_relative_ordering_sane(self):
        """A vastly larger model takes more total plaintext time.

        Sizes are far apart (4 vs 16384 hidden units) so the comparison
        is robust to per-call timing noise.
        """
        small = profile_live(stages_fixture(4), repeats=30)
        large = profile_live(stages_fixture(16384), repeats=30)
        assert sum(large) > sum(small)


class TestCompressionAwareProfile:
    def test_compressed_linear_stage_is_cheaper(self):
        from repro.costs import CompressionStats

        stages = stages_fixture()
        dense = profile_primitive_times(stages, CostModel.reference(), 4)
        stats = [CompressionStats(density=0.3, clusters=8), None,
                 None, None]
        compressed = profile_primitive_times(
            stages, CostModel.reference(), 4, compression=stats)
        assert compressed[0] < dense[0]          # compressed FC stage
        assert compressed[1] == pytest.approx(dense[1])  # untouched

    def test_plan_derived_stats_match_hand_built(self):
        """A real plan's exported stats flow through the profiler."""
        import numpy as np

        from repro.crypto.sparse import SparseMatvecPlan

        rng = np.random.default_rng(0)
        weights = rng.integers(-3, 4, size=(16, 8))
        weights[rng.random(weights.shape) < 0.7] = 0
        plan = SparseMatvecPlan.from_dense(weights)
        stages = stages_fixture()
        stats = [plan.compression_stats(), None, None, None]
        times = profile_primitive_times(
            stages, CostModel.reference(), 4, compression=stats)
        dense = profile_primitive_times(stages, CostModel.reference(), 4)
        assert times[0] < dense[0]

    def test_dense_stats_change_nothing(self):
        from repro.costs import CompressionStats

        stages = stages_fixture()
        dense = profile_primitive_times(stages, CostModel.reference(), 4)
        neutral = profile_primitive_times(
            stages, CostModel.reference(), 4,
            compression=[CompressionStats()] * len(stages))
        assert neutral == pytest.approx(dense)

    def test_length_mismatch_rejected(self):
        from repro.costs import CompressionStats

        with pytest.raises(PlannerError):
            profile_primitive_times(
                stages_fixture(), CostModel.reference(), 4,
                compression=[CompressionStats()])
