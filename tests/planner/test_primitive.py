"""Unit tests for primitive extraction and merging (Section IV-B)."""

import pytest

from repro.errors import PlannerError
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Flatten,
    FullyConnected,
    LayerKind,
    MaxPool2d,
    ReLU,
    ScaledSigmoid,
    SoftMax,
)
from repro.nn.model import Sequential
from repro.planner.primitive import (
    extract_primitives,
    merge_primitives,
    model_stages,
)


def fc_model():
    model = Sequential((4,))
    model.add(FullyConnected(4, 8))
    model.add(ReLU())
    model.add(FullyConnected(8, 2))
    model.add(SoftMax())
    return model


class TestExtraction:
    def test_kinds_in_order(self):
        primitives = extract_primitives(fc_model())
        assert [p.kind for p in primitives] == [
            LayerKind.LINEAR, LayerKind.NONLINEAR,
            LayerKind.LINEAR, LayerKind.NONLINEAR,
        ]

    def test_shapes_threaded_through(self):
        primitives = extract_primitives(fc_model())
        assert primitives[0].input_shape == (4,)
        assert primitives[0].output_shape == (8,)
        assert primitives[2].output_shape == (2,)

    def test_mixed_layer_decomposed(self):
        """ScaledSigmoid (Figure 2's mixed layer) splits into scale +
        sigmoid primitives."""
        model = Sequential((4,))
        model.add(FullyConnected(4, 4))
        model.add(ScaledSigmoid(2.0))
        model.add(FullyConnected(4, 2))
        model.add(SoftMax())
        primitives = extract_primitives(model)
        assert [p.kind for p in primitives] == [
            LayerKind.LINEAR, LayerKind.LINEAR, LayerKind.NONLINEAR,
            LayerKind.LINEAR, LayerKind.NONLINEAR,
        ]

    def test_maxpool_rejected(self):
        """Position-sensitive layers can't run on obfuscated tensors."""
        model = Sequential((1, 4, 4))
        model.add(Conv2d(1, 2, kernel=3, padding=1))
        model.add(MaxPool2d(2))
        model.add(Flatten())
        model.add(FullyConnected(8, 2))
        model.add(SoftMax())
        with pytest.raises(PlannerError, match="position-sensitive"):
            extract_primitives(model)

    def test_final_softmax_allowed(self):
        extract_primitives(fc_model())  # must not raise

    def test_non_final_softmax_rejected(self):
        model = Sequential((4,))
        model.add(FullyConnected(4, 4))
        model.add(SoftMax())
        model.add(FullyConnected(4, 2))
        model.add(SoftMax())
        with pytest.raises(PlannerError):
            extract_primitives(model)


class TestMerging:
    def test_adjacent_same_kind_merged(self):
        """Conv + BN (+ Flatten + FC) fuse into single linear stages."""
        model = Sequential((1, 4, 4))
        model.add(Conv2d(1, 2, kernel=3, padding=1))
        model.add(BatchNorm(2))
        model.add(ReLU())
        model.add(Flatten())
        model.add(FullyConnected(32, 2))
        model.add(SoftMax())
        stages = model_stages(model)
        assert [s.kind for s in stages] == [
            LayerKind.LINEAR, LayerKind.NONLINEAR,
            LayerKind.LINEAR, LayerKind.NONLINEAR,
        ]
        assert len(stages[0].primitives) == 2  # conv + bn
        assert len(stages[2].primitives) == 2  # flatten + fc

    def test_alternation_guaranteed(self):
        stages = model_stages(fc_model())
        for a, b in zip(stages, stages[1:]):
            assert a.kind is not b.kind

    def test_indices_sequential(self):
        stages = model_stages(fc_model())
        assert [s.index for s in stages] == list(range(len(stages)))

    def test_indicator_matches_paper(self):
        """I_i = +1 linear, -1 non-linear (Table II)."""
        stages = model_stages(fc_model())
        assert [s.indicator for s in stages] == [1, -1, 1, -1]

    def test_merge_empty_rejected(self):
        with pytest.raises(PlannerError):
            merge_primitives([])

    def test_op_counts_merge(self):
        stages = model_stages(fc_model())
        counts = stages[0].op_counts()
        assert counts.input_size == 4
        assert counts.output_size == 8

    def test_describe(self):
        stages = model_stages(fc_model())
        assert "FullyConnected" in stages[0].describe()
        assert "linear" in stages[0].describe()
