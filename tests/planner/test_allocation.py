"""Unit tests for load-balanced resource allocation (Eq. 4-8)."""

import pytest

from repro.errors import InfeasibleAllocationError, PlannerError
from repro.nn.layers import FullyConnected, LayerKind, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import (
    allocate_even,
    allocate_load_balanced,
    build_allocation_milp,
)
from repro.planner.ilp import solve_milp
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.planner.profiling import profile_primitive_times
from repro.costs import CostModel


def fc_stages():
    model = Sequential((4,))
    model.add(FullyConnected(4, 8))
    model.add(ReLU())
    model.add(FullyConnected(8, 2))
    model.add(SoftMax())
    return model_stages(model)


class TestEvenAllocation:
    def test_capacity_used(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 4)  # capacity 16
        result = allocate_even(stages, cluster)
        assert result.method == "even"
        assert result.plan.total_threads() == 16

    def test_remainder_goes_to_early_stages(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 3,
                                          hyperthreading=False)
        result = allocate_even(stages, cluster)
        threads = [a.threads for a in result.plan.assignments]
        assert max(threads) - min(threads) <= 1

    def test_validates_against_constraints(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        result = allocate_even(stages, cluster)
        # Plan construction itself enforces Eq. 5-8.
        assert result.plan.total_threads() <= cluster.total_capacity()


class TestWaterFilling:
    def test_slow_stage_gets_more_threads(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        times = [100.0, 1.0, 1.0, 1.0]
        result = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
        threads = [a.threads for a in result.plan.assignments]
        assert threads[0] == max(threads)
        assert threads[0] > threads[2]

    def test_fills_capacity(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        times = [3.0, 2.0, 2.0, 1.0]
        result = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
        # linear stages fill the model server, nonlinear the data server
        assert result.plan.total_threads() == cluster.total_capacity()

    def test_beats_even_on_skewed_load(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 4)
        times = [50.0, 5.0, 1.0, 1.0]
        even = allocate_even(stages, cluster)
        balanced = allocate_load_balanced(stages, times, cluster,
                                          method="water_filling")
        even_sum = sum(t / a.threads for t, a in
                       zip(times, even.plan.assignments))
        balanced_sum = sum(t / a.threads for t, a in
                           zip(times, balanced.plan.assignments))
        assert balanced_sum < even_sum

    def test_infeasible_cluster(self):
        stages = fc_stages()
        # 1-core data server (cap 2) must host 2 nonlinear stages: ok;
        # but without hyperthreading it cannot.
        cluster = ClusterSpec.homogeneous(1, 1, 1,
                                          hyperthreading=False)
        with pytest.raises(InfeasibleAllocationError):
            allocate_load_balanced(stages, [1.0] * 4, cluster,
                                   method="water_filling")

    def test_input_validation(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        with pytest.raises(PlannerError):
            allocate_load_balanced(stages, [1.0], cluster)
        with pytest.raises(PlannerError):
            allocate_load_balanced(stages, [0.0] * 4, cluster)
        with pytest.raises(PlannerError):
            allocate_load_balanced([], [], cluster)
        with pytest.raises(PlannerError):
            allocate_load_balanced(stages, [1.0] * 4, cluster,
                                   method="magic")


class TestMilpFormulation:
    def test_solves_and_decodes(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 1)
        times = [4.0, 2.0, 3.0, 1.0]
        result = allocate_load_balanced(stages, times, cluster,
                                        method="milp")
        assert result.method == "milp"
        assert result.plan.total_threads() >= 4

    def test_milp_objective_not_worse_than_water_filling(self):
        """The faithful MILP optimizes Eq. 4 exactly, so its pairwise
        imbalance is <= the heuristic's."""
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        times = [6.0, 3.0, 2.0, 1.0]
        milp = allocate_load_balanced(stages, times, cluster,
                                      method="milp")
        heuristic = allocate_load_balanced(stages, times, cluster,
                                           method="water_filling")
        assert milp.objective <= heuristic.objective + 1e-9

    def test_respects_capacity(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 1)
        times = [5.0, 5.0, 5.0, 5.0]
        result = allocate_load_balanced(stages, times, cluster,
                                        method="milp")
        loads: dict[int, int] = {}
        for assignment in result.plan.assignments:
            loads[assignment.server_id] = \
                loads.get(assignment.server_id, 0) + assignment.threads
        for server_id, load in loads.items():
            capacity = cluster.servers[server_id].capacity(True)
            assert load <= capacity

    def test_build_produces_expected_structure(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 1)
        problem, index = build_allocation_milp(stages, [1.0] * 4,
                                               cluster)
        # one u per (stage, thread count), one x per (stage, server)
        assert len(index["u"]) == sum(
            cluster.servers[0].capacity(True)
            if s.kind is LayerKind.LINEAR
            else cluster.servers[1].capacity(True)
            for s in stages
        )
        assert len(index["x"]) == len(stages)
        result = solve_milp(problem)
        assert result.is_optimal


class TestAutoMethod:
    def test_auto_picks_milp_for_small(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(1, 1, 1)
        result = allocate_load_balanced(stages, [1.0] * 4, cluster,
                                        method="auto")
        assert result.method == "milp"

    def test_auto_picks_water_filling_for_large(self):
        stages = fc_stages()
        cluster = ClusterSpec.homogeneous(4, 4, 24)
        result = allocate_load_balanced(stages, [1.0] * 4, cluster,
                                        method="auto")
        assert result.method == "water_filling"


class TestWithRealProfile:
    def test_end_to_end_with_profiled_times(self):
        stages = fc_stages()
        times = profile_primitive_times(stages, CostModel.reference(),
                                        4)
        cluster = ClusterSpec.homogeneous(2, 1, 4)
        result = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
        # Within the data-provider role, the heavier non-linear stage
        # (the wide ReLU, dominated by enc/dec) must get at least as
        # many threads as the light final SoftMax stage.
        threads = [a.threads for a in result.plan.assignments]
        heavy_relu = threads[1]
        light_softmax = threads[3]
        assert times[1] > times[3]
        assert heavy_relu >= light_softmax
