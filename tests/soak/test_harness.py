"""Soak harness smoke tests: options validation, a short real run,
and the BENCH_soak.json document shape."""

import json

import pytest

from repro.errors import ReproError
from repro.soak import (
    SCENARIO_NAMES,
    SoakOptions,
    SoakReport,
    run_soak,
)


class TestSoakOptions:
    def test_defaults_cover_every_scenario(self):
        options = SoakOptions()
        assert options.scenarios == SCENARIO_NAMES
        assert options.duration == 20.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError, match="unknown soak scenario"):
            SoakOptions(scenarios=("single", "typo"))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ReproError):
            SoakOptions(duration=0.0)


class TestSoakReport:
    def test_ok_mirrors_doc(self):
        assert SoakReport(doc={"ok": True}).ok
        assert not SoakReport(doc={"ok": False}).ok


class TestShortSoakRun:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("soak") / "BENCH_soak.json"
        options = SoakOptions(
            duration=2.0, seed=7, out=str(out),
            scenarios=("single", "faulted"),
        )
        return run_soak(options), out

    def test_short_run_passes(self, report):
        result, _ = report
        assert result.ok, "\n".join(result.doc.get("failures", []))
        assert not result.doc["failures"]

    def test_document_schema(self, report):
        result, out = report
        doc = json.loads(out.read_text())
        assert doc == result.doc
        assert doc["schema"] == "soak/1"
        assert doc["seed"] == 7
        for key in ("elapsed_s", "requests_total", "sustained_rps",
                    "iterations", "latency_ms", "recovery_s",
                    "leaks", "chaos", "failures", "ok"):
            assert key in doc, f"missing {key} in BENCH_soak.json"
        assert doc["requests_total"] > 0
        assert doc["sustained_rps"] > 0
        assert set(doc["iterations"]) == {"single", "faulted"}
        assert all(count > 0 for count in doc["iterations"].values())
        assert doc["latency_ms"]["p50"] <= doc["latency_ms"]["p99"]

    def test_leak_sentinels_reported_clean(self, report):
        result, _ = report
        leaks = result.doc["leaks"]
        assert leaks["threads"] == []
        assert leaks["fd_delta"] <= 0
        assert leaks["socket_delta"] <= 0

    def test_render_is_human_readable(self, report):
        result, _ = report
        text = result.render()
        assert "req/s sustained" in text
        assert "single" in text

    def test_outputs_were_bit_identical(self, report):
        # Drift would have surfaced as a SoakCheckError failure; a
        # passing run with >1 iteration per scenario proves each
        # repeat matched its frozen reference.
        result, _ = report
        assert result.ok
