"""Unit tests for the soak leak sentinels."""

import socket
import threading
import time
from collections import Counter

import pytest

from repro.soak.sentinels import (
    LeakReport,
    LeakSentinel,
    ResourceCensus,
    RssWatermark,
    fd_census,
    rss_bytes,
    socket_count,
    thread_census,
)


class TestCensus:
    def test_thread_census_counts_named_threads(self):
        stop = threading.Event()
        thread = threading.Thread(target=stop.wait,
                                  name="census-probe")
        thread.start()
        try:
            assert thread_census()["census-probe"] == 1
        finally:
            stop.set()
            thread.join()
        assert thread_census()["census-probe"] == 0

    def test_fd_census_sees_an_open_socket(self):
        before = fd_census()
        if before is None:
            pytest.skip("no /proc/self/fd on this platform")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            after = fd_census()
            assert sock.fileno() in after
            assert after[sock.fileno()].startswith("socket:")
            assert socket_count(after) == socket_count(before) + 1
        finally:
            sock.close()

    def test_socket_count_unknown_when_unsupported(self):
        assert socket_count(None) == -1

    def test_rss_bytes_positive_or_unknown(self):
        rss = rss_bytes()
        assert rss == -1 or rss > 0

    def test_capture_is_consistent(self):
        census = ResourceCensus.capture()
        assert census.threads[threading.current_thread().name] >= 1
        if census.fds is None:
            assert census.fd_count == -1 and census.sockets == -1
        else:
            assert census.fd_count == len(census.fds)
            assert 0 <= census.sockets <= census.fd_count


class TestLeakSentinel:
    def test_clean_run_reports_no_leaks(self):
        sentinel = LeakSentinel(settle_timeout=2.0)
        sentinel.baseline()
        report = sentinel.finish()
        assert report.ok, report.describe()
        assert "no leaks" in report.describe()

    def test_finish_before_baseline_is_an_error(self):
        with pytest.raises(RuntimeError):
            LeakSentinel().finish()

    def test_leaked_thread_is_named_in_the_report(self):
        sentinel = LeakSentinel(settle_timeout=0.3,
                                settle_interval=0.05)
        sentinel.baseline()
        stop = threading.Event()
        leak = threading.Thread(target=stop.wait, name="leaky-pool")
        leak.start()
        try:
            report = sentinel.finish()
            assert not report.ok
            assert "leaky-pool" in report.leaked_threads
            assert "leaky-pool" in report.describe()
        finally:
            stop.set()
            leak.join()

    def test_leaked_socket_shows_in_fd_delta(self):
        if fd_census() is None:
            pytest.skip("no /proc/self/fd on this platform")
        sentinel = LeakSentinel(settle_timeout=0.3,
                                settle_interval=0.05)
        sentinel.baseline()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            report = sentinel.finish()
            assert not report.ok
            assert report.fd_delta >= 1
            assert report.socket_delta >= 1
            assert any("socket:" in entry
                       for entry in report.leaked_fds)
        finally:
            sock.close()

    def test_settle_waits_out_async_teardown(self):
        """A thread that exits shortly *after* finish() is called must
        not be reported: the settle loop retries until the census
        converges."""
        sentinel = LeakSentinel(settle_timeout=3.0,
                                settle_interval=0.05)
        sentinel.baseline()
        straggler = threading.Thread(target=time.sleep, args=(0.4,),
                                     name="draining-executor")
        straggler.start()
        report = sentinel.finish()
        straggler.join()
        assert report.ok, report.describe()

    def test_fewer_resources_than_baseline_is_not_a_leak(self):
        report = LeakReport(leaked_threads=[], leaked_fds=[],
                            fd_delta=-2, socket_delta=-1,
                            supported=True)
        assert report.ok

    def test_unsupported_platform_checks_threads_only(self):
        clean = LeakReport(leaked_threads=[], leaked_fds=[],
                           fd_delta=0, socket_delta=0,
                           supported=False)
        assert clean.ok
        leaky = LeakReport(leaked_threads=["pool"], leaked_fds=[],
                           fd_delta=0, socket_delta=0,
                           supported=False)
        assert not leaky.ok


class TestRssWatermark:
    def test_flatness_judged_on_steady_phase_only(self):
        mark = RssWatermark()
        mark.samples = [100_000_000, 180_000_000]  # warm-up growth
        mark.steady_start = 180_000_000
        mark.samples.append(181_000_000)
        assert mark.steady_growth_mb == pytest.approx(1.0)
        assert mark.flat(tolerance_mb=2.0)
        assert not mark.flat(tolerance_mb=0.5)
        # The 80MB warm-up never counted.
        assert mark.peak_mb == pytest.approx(181.0)

    def test_never_marked_steady_is_trivially_flat(self):
        mark = RssWatermark()
        mark.samples = [100, 200, 300]
        assert mark.steady_growth_mb == 0.0
        assert mark.flat(tolerance_mb=0.0)

    def test_live_sampling(self):
        mark = RssWatermark()
        first = mark.sample()
        if first < 0:
            assert not mark.supported
            pytest.skip("rss sampling unsupported here")
        mark.mark_steady()
        mark.sample()
        assert mark.supported
        assert len(mark.samples) == 3
        assert mark.peak_mb > 0

    def test_shrinking_rss_counts_as_flat(self):
        mark = RssWatermark()
        mark.samples = [200_000_000]
        mark.steady_start = 200_000_000
        mark.samples.append(150_000_000)
        assert mark.steady_growth_mb == pytest.approx(-50.0)
        assert mark.flat(tolerance_mb=0.0)
