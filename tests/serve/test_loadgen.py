"""Loadgen end-to-end: self-hosted gateway, exact accounting, the
``serve/1`` report schema, and zero cross-tenant decrypts."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import LoadgenOptions, run_loadgen
from repro.serve.loadgen import (
    SCHEMA,
    _retry_after_seconds,
    _submit,
    _TenantOutcome,
    render_report,
)


class TestOptions:
    def test_rejects_empty_campaign(self):
        with pytest.raises(ServeError):
            LoadgenOptions(tenants=0)
        with pytest.raises(ServeError):
            LoadgenOptions(requests=0)
        with pytest.raises(ServeError):
            LoadgenOptions(mode="cloud")


class TestLocalCampaign:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serve") / "BENCH_serve.json"
        options = LoadgenOptions(
            tenants=2, requests=2, mode="local", key_size=128,
            seed=9, tenant_quota=4, queue_capacity=8,
            serve_workers=2, out=str(out),
        )
        return run_loadgen(options), out

    def test_accounting_exact(self, report):
        result, _ = report
        assert result["accounting_ok"], result["errors"]
        assert result["accepted"] + result["shed"] \
            == result["submitted"]
        assert result["submitted"] == 4
        assert result["server"]["all_terminal"]
        assert result["server"]["jobs"] == result["submitted"]

    def test_zero_cross_tenant_decrypts(self, report):
        result, _ = report
        assert result["cross_tenant_decrypts"] == 0
        assert result["isolation"]["attempts"] == 2
        assert result["isolation"]["self_decrypt_ok"]

    def test_schema(self, report):
        result, out = report
        doc = json.loads(out.read_text())
        assert doc == result
        assert doc["schema"] == SCHEMA
        for key in ("mode", "tenants", "requests_per_tenant",
                    "submitted", "accepted", "shed", "outcomes",
                    "accounting_ok", "wall_seconds", "req_per_s",
                    "latency_ms", "isolation", "config", "server"):
            assert key in doc, f"missing {key} in BENCH_serve.json"
        assert doc["latency_ms"]["p50"] <= doc["latency_ms"]["p99"]
        assert doc["req_per_s"] > 0

    def test_render(self, report):
        result, _ = report
        text = render_report(result)
        assert "accounting" in text and "exact" in text
        assert "isolation: 0 cross-tenant decrypts" in text


class TestOversubscribed:
    def test_quota_sheds_and_accounting_holds(self):
        """A burst beyond the per-tenant quota must shed — and the
        identity still holds exactly."""
        options = LoadgenOptions(
            tenants=2, requests=5, mode="local", key_size=128,
            seed=13, tenant_quota=2, queue_capacity=16,
            serve_workers=2, out=None, submit_retries=0,
        )
        result = run_loadgen(options)
        assert result["accounting_ok"], result["errors"]
        assert result["shed"] > 0
        assert result["accepted"] + result["shed"] \
            == result["submitted"] == 10
        assert result["outcomes"].get("done") == result["accepted"]

    def test_retry_after_converts_sheds_into_accepts(self):
        """With Retry-After honored, the same oversubscribed burst
        re-posts after the hinted delay and lands: retries show up in
        the report and the accounting identity still holds."""
        options = LoadgenOptions(
            tenants=2, requests=5, mode="local", key_size=128,
            seed=13, tenant_quota=2, queue_capacity=16,
            serve_workers=2, out=None, submit_retries=4,
        )
        result = run_loadgen(options)
        assert result["accounting_ok"], result["errors"]
        assert result["retries"] > 0
        assert result["accepted"] + result["shed"] \
            + result["rate_limited"] == result["submitted"] == 10
        # The retried posts recovered capacity the no-retry run shed.
        assert result["shed"] == 0


class _ScriptedClient:
    """Replays a fixed sequence of (status, body, headers) posts."""

    def __init__(self, responses):
        self._responses = list(responses)
        self.posts = 0

    def post(self, path, doc):
        self.posts += 1
        return self._responses.pop(0)


class TestSubmitRetries:
    def _options(self, **overrides):
        return LoadgenOptions(mode="local", out=None, **overrides)

    def test_503_with_retry_after_is_retried_to_success(self):
        client = _ScriptedClient([
            (503, {"error": "full"}, {"Retry-After": "0"}),
            (202, {"job_id": "j1"}, {}),
        ])
        outcome = _TenantOutcome()
        status, body = _submit(client, {}, self._options(), outcome)
        assert status == 202 and body == {"job_id": "j1"}
        assert outcome.retries == 1
        assert outcome.shed_posts == 1
        assert client.posts == 2

    def test_no_retry_after_header_means_no_retry(self):
        client = _ScriptedClient([
            (503, {"error": "full"}, {}),
        ])
        outcome = _TenantOutcome()
        status, _ = _submit(client, {}, self._options(), outcome)
        assert status == 503
        assert outcome.retries == 0
        assert client.posts == 1

    def test_attempts_bounded_by_submit_retries(self):
        shed = (503, {"error": "full"}, {"Retry-After": "0"})
        client = _ScriptedClient([shed, shed, shed, shed])
        outcome = _TenantOutcome()
        status, _ = _submit(
            client, {}, self._options(submit_retries=2), outcome
        )
        assert status == 503
        assert outcome.retries == 2
        assert client.posts == 3  # initial + two retries

    def test_429_retries_then_surfaces_rate_limit(self):
        limited = (429, {"error": "slow down"}, {"Retry-After": "0"})
        client = _ScriptedClient([limited, limited, limited])
        outcome = _TenantOutcome()
        status, _ = _submit(
            client, {}, self._options(submit_retries=2), outcome
        )
        assert status == 429
        assert outcome.retries == 2
        assert outcome.shed_posts == 0  # 429s are not sheds

    def test_retry_after_parsing(self):
        assert _retry_after_seconds({"Retry-After": "1.5"}) == 1.5
        assert _retry_after_seconds({"retry-after": "2"}) == 2.0
        assert _retry_after_seconds({"Retry-After": "-3"}) == 0.0
        assert _retry_after_seconds({"Retry-After": "soon"}) is None
        assert _retry_after_seconds({}) is None

    def test_negative_retry_knobs_refused(self):
        with pytest.raises(ServeError):
            LoadgenOptions(submit_retries=-1)
        with pytest.raises(ServeError):
            LoadgenOptions(retry_after_cap=-0.1)
