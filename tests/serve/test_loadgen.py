"""Loadgen end-to-end: self-hosted gateway, exact accounting, the
``serve/1`` report schema, and zero cross-tenant decrypts."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import LoadgenOptions, run_loadgen
from repro.serve.loadgen import SCHEMA, render_report


class TestOptions:
    def test_rejects_empty_campaign(self):
        with pytest.raises(ServeError):
            LoadgenOptions(tenants=0)
        with pytest.raises(ServeError):
            LoadgenOptions(requests=0)
        with pytest.raises(ServeError):
            LoadgenOptions(mode="cloud")


class TestLocalCampaign:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serve") / "BENCH_serve.json"
        options = LoadgenOptions(
            tenants=2, requests=2, mode="local", key_size=128,
            seed=9, tenant_quota=4, queue_capacity=8,
            serve_workers=2, out=str(out),
        )
        return run_loadgen(options), out

    def test_accounting_exact(self, report):
        result, _ = report
        assert result["accounting_ok"], result["errors"]
        assert result["accepted"] + result["shed"] \
            == result["submitted"]
        assert result["submitted"] == 4
        assert result["server"]["all_terminal"]
        assert result["server"]["jobs"] == result["submitted"]

    def test_zero_cross_tenant_decrypts(self, report):
        result, _ = report
        assert result["cross_tenant_decrypts"] == 0
        assert result["isolation"]["attempts"] == 2
        assert result["isolation"]["self_decrypt_ok"]

    def test_schema(self, report):
        result, out = report
        doc = json.loads(out.read_text())
        assert doc == result
        assert doc["schema"] == SCHEMA
        for key in ("mode", "tenants", "requests_per_tenant",
                    "submitted", "accepted", "shed", "outcomes",
                    "accounting_ok", "wall_seconds", "req_per_s",
                    "latency_ms", "isolation", "config", "server"):
            assert key in doc, f"missing {key} in BENCH_serve.json"
        assert doc["latency_ms"]["p50"] <= doc["latency_ms"]["p99"]
        assert doc["req_per_s"] > 0

    def test_render(self, report):
        result, _ = report
        text = render_report(result)
        assert "accounting" in text and "exact" in text
        assert "isolation: 0 cross-tenant decrypts" in text


class TestOversubscribed:
    def test_quota_sheds_and_accounting_holds(self):
        """A burst beyond the per-tenant quota must shed — and the
        identity still holds exactly."""
        options = LoadgenOptions(
            tenants=2, requests=5, mode="local", key_size=128,
            seed=13, tenant_quota=2, queue_capacity=16,
            serve_workers=2, out=None,
        )
        result = run_loadgen(options)
        assert result["accounting_ok"], result["errors"]
        assert result["shed"] > 0
        assert result["accepted"] + result["shed"] \
            == result["submitted"] == 10
        assert result["outcomes"].get("done") == result["accepted"]
