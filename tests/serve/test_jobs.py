"""Job FSM, tracker, and admission-control concurrency battery.

The load-bearing invariant under any interleaving:
``accepted + shed == submitted`` with every job reaching exactly one
terminal state — the hammer test drives a thread storm at a tiny
queue/quota and then audits the tracker against it.
"""

import threading
import time

import pytest

from repro.config import RuntimeConfig
from repro.errors import (
    DeadlineExceededError,
    JobStateError,
    ServeError,
)
from repro.serve import (
    DEADLINE,
    DONE,
    FAILED,
    Job,
    JobManager,
    JobTracker,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
)


def _wait_all_terminal(tracker, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if tracker.all_terminal():
            return True
        time.sleep(0.01)
    return tracker.all_terminal()


class TestJobFSM:
    def test_happy_path_records_timings(self):
        job = Job("t", payload=[1.0])
        assert job.state == QUEUED and not job.terminal
        job.transition(RUNNING)
        assert job.queue_seconds is not None
        job.result = {"prediction": 1}
        job.transition(DONE)
        assert job.terminal
        assert job.service_seconds is not None

    def test_queued_cannot_jump_to_done(self):
        job = Job("t", payload=None)
        with pytest.raises(JobStateError, match="illegal transition"):
            job.transition(DONE)

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_absorb(self, terminal):
        job = Job("t", payload=None)
        if terminal in (DONE,):
            job.transition(RUNNING)
        job.transition(terminal)
        for next_state in LEGAL_TRANSITIONS:
            with pytest.raises(JobStateError):
                job.transition(next_state)

    def test_unknown_state_rejected(self):
        job = Job("t", payload=None)
        with pytest.raises(JobStateError, match="unknown state"):
            job.transition("exploded")

    def test_to_dict_hides_result_until_done(self):
        job = Job("t", payload=None)
        job.result = {"prediction": 2}
        assert "result" not in job.to_dict()
        job.transition(RUNNING)
        job.transition(DONE)
        doc = job.to_dict()
        assert doc["result"] == {"prediction": 2}
        assert doc["state"] == DONE and doc["terminal"]

    def test_to_dict_carries_error(self):
        job = Job("t", payload=None)
        job.error = "boom"
        job.transition(FAILED)
        assert job.to_dict()["error"] == "boom"


class TestJobTracker:
    def test_duplicate_id_rejected(self):
        tracker = JobTracker()
        job = Job("t", payload=None)
        tracker.add(job)
        with pytest.raises(ServeError, match="duplicate job id"):
            tracker.add(Job("t", payload=None, job_id=job.job_id))

    def test_counts_and_terminal(self):
        tracker = JobTracker()
        first, second = Job("a", None), Job("b", None)
        tracker.add(first)
        tracker.add(second)
        assert len(tracker) == 2
        assert not tracker.all_terminal()
        first.transition(SHED)
        second.transition(RUNNING)
        second.transition(DONE)
        assert tracker.all_terminal()
        assert tracker.counts() == {SHED: 1, DONE: 1}
        assert tracker.get(first.job_id) is first
        assert tracker.get("nope") is None

    def test_bounded_history_keeps_the_identity_exact(self):
        """Terminal jobs beyond the cap are evicted, but counts() and
        len() still cover the tracker's whole lifetime — the identity
        stays auditable while memory stays bounded."""
        tracker = JobTracker(max_terminal=2)
        jobs = []
        for index in range(5):
            job = Job("t", payload=[float(index)])
            tracker.add(job)
            job.transition(RUNNING)
            job.transition(DONE)
            tracker.note_terminal(job)
            jobs.append(job)
        assert len(tracker) == 5            # retained + evicted
        assert len(tracker.jobs()) == 2     # memory is bounded
        assert tracker.counts() == {DONE: 5}
        assert tracker.all_terminal()
        # The oldest ids are gone (a status poll would 404) ...
        assert tracker.get(jobs[0].job_id) is None
        assert tracker.get(jobs[2].job_id) is None
        # ... the newest survive, with payloads released.
        assert tracker.get(jobs[4].job_id) is jobs[4]
        assert all(job.payload is None for job in jobs)

    def test_non_terminal_jobs_are_never_evicted(self):
        tracker = JobTracker(max_terminal=1)
        live = Job("t", payload=[1.0])
        tracker.add(live)
        for _ in range(3):
            job = Job("t", payload=None)
            tracker.add(job)
            job.transition(SHED)
            tracker.note_terminal(job)
        assert tracker.get(live.job_id) is live
        assert live.payload == [1.0]
        assert not tracker.all_terminal()
        assert sum(tracker.counts().values()) == 4


def _manager(runner, queue_capacity=8, workers=2, tenant_quota=4,
             default_deadline=30.0):
    config = RuntimeConfig().with_serve(
        queue_capacity=queue_capacity, workers=workers,
        tenant_quota=tenant_quota, default_deadline=default_deadline,
    )
    return JobManager(runner, config)


class TestAdmissionControl:
    def test_quota_sheds_excess(self):
        release = threading.Event()

        def runner(job):
            release.wait(10.0)
            return {"ok": True}

        manager = _manager(runner, tenant_quota=2, queue_capacity=8)
        manager.start()
        try:
            jobs = [manager.submit("t", i) for i in range(5)]
            states = [job.state for job in jobs]
            assert states.count(SHED) == 3
            release.set()
            assert _wait_all_terminal(manager.tracker)
            assert manager.tracker.counts() == {DONE: 2, SHED: 3}
        finally:
            release.set()
            manager.shutdown()

    def test_queue_capacity_sheds(self):
        release = threading.Event()

        def runner(job):
            release.wait(10.0)
            return {}

        # Capacity 1, one worker: job 0 runs, job 1 fills the queue,
        # the rest shed regardless of tenant.
        manager = _manager(runner, queue_capacity=1,
                           workers=1, tenant_quota=10)
        manager.start()
        try:
            first = manager.submit("t0", 0)
            deadline = time.monotonic() + 10.0
            while (first.state == QUEUED
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert first.state == RUNNING
            filler = manager.submit("t1", 1)
            assert filler.state == QUEUED
            late = [manager.submit("late", i) for i in range(2)]
            assert all(job.state == SHED for job in late)
            release.set()
            assert _wait_all_terminal(manager.tracker)
            counts = manager.tracker.counts()
            assert counts == {DONE: 2, SHED: 2}
        finally:
            release.set()
            manager.shutdown()

    def test_shutdown_fails_queued_jobs(self):
        release = threading.Event()

        def runner(job):
            release.wait(10.0)
            return {}

        manager = _manager(runner, workers=1, queue_capacity=8,
                           tenant_quota=8)
        manager.start()
        manager.submit("t", 0)          # occupies the worker
        queued = manager.submit("u", 1)  # waits in the queue
        time.sleep(0.1)
        release.set()
        manager.shutdown()
        assert queued.state == FAILED
        assert queued.error == "gateway shutdown"
        # Shut-down manager sheds instead of queueing.
        post = manager.submit("t", 2)
        assert post.state == SHED

    def test_deadline_expires_in_queue(self):
        release = threading.Event()

        def runner(job):
            release.wait(10.0)
            return {}

        manager = _manager(runner, workers=1, queue_capacity=8,
                           tenant_quota=8)
        manager.start()
        try:
            manager.submit("t", 0)  # occupies the only worker
            doomed = manager.submit("u", 1, deadline_seconds=0.05)
            time.sleep(0.2)
            release.set()
            assert _wait_all_terminal(manager.tracker)
            assert doomed.state == DEADLINE
            assert "expired in queue" in doomed.error
        finally:
            release.set()
            manager.shutdown()

    def test_runner_exceptions_map_to_states(self):
        def runner(job):
            if job.payload == "deadline":
                raise DeadlineExceededError("too slow")
            if job.payload == "boom":
                raise ValueError("boom")
            return {"ok": True}

        manager = _manager(runner)
        manager.start()
        try:
            jobs = {
                payload: manager.submit("t", payload)
                for payload in ("deadline", "boom", "fine")
            }
            assert _wait_all_terminal(manager.tracker)
            assert jobs["deadline"].state == DEADLINE
            assert jobs["boom"].state == FAILED
            assert "ValueError" in jobs["boom"].error
            assert jobs["fine"].state == DONE
        finally:
            manager.shutdown()


class TestManagerHistory:
    def test_manager_releases_payloads_and_bounds_history(self):
        """The manager's tracker must not retain payloads (or more
        than serve_job_history terminal jobs) on a long-running
        gateway, while the accounting identity survives eviction."""
        config = RuntimeConfig().with_serve(
            queue_capacity=8, workers=2, tenant_quota=8,
            job_history=3,
        )
        manager = JobManager(lambda job: {"ok": True}, config)
        manager.start()
        try:
            jobs = [manager.submit("t", [float(i)])
                    for i in range(10)]
            assert _wait_all_terminal(manager.tracker)
        finally:
            manager.shutdown()
        assert all(job.payload is None for job in jobs)
        assert len(manager.tracker.jobs()) <= 3
        assert len(manager.tracker) == 10
        counts = manager.tracker.counts()
        assert sum(counts.values()) == 10
        assert set(counts) <= TERMINAL_STATES


class TestPerTenantSerialization:
    def test_one_job_per_tenant_at_a_time(self):
        active = {}
        overlaps = []
        lock = threading.Lock()

        def runner(job):
            with lock:
                if active.get(job.tenant):
                    overlaps.append(job.tenant)
                active[job.tenant] = True
            time.sleep(0.02)
            with lock:
                active[job.tenant] = False
            return {}

        manager = _manager(runner, workers=4, queue_capacity=32,
                           tenant_quota=8)
        manager.start()
        try:
            for round_index in range(4):
                for tenant in ("a", "b", "c"):
                    manager.submit(tenant, round_index)
            assert _wait_all_terminal(manager.tracker)
            assert not overlaps
            assert manager.tracker.counts() == {DONE: 12}
        finally:
            manager.shutdown()


class TestHammer:
    """Thread storm at tiny capacity: the accounting identity must
    hold exactly and no job may be lost or double-terminal."""

    def test_accepted_plus_shed_equals_submitted(self):
        def runner(job):
            time.sleep(0.002)
            return {"ok": True}

        manager = _manager(runner, queue_capacity=4, workers=3,
                           tenant_quota=2)
        manager.start()
        submitted_per_thread = 25
        tenants = ("a", "b", "c", "d")
        results = {name: [] for name in tenants}

        def storm(name):
            for index in range(submitted_per_thread):
                results[name].append(manager.submit(name, index))

        threads = [
            threading.Thread(target=storm, args=(name,),
                             name=f"repro-test-hammer-{name}")
            for name in tenants
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert _wait_all_terminal(manager.tracker)
        finally:
            manager.shutdown()

        submitted = submitted_per_thread * len(tenants)
        all_jobs = [job for batch in results.values()
                    for job in batch]
        assert len(all_jobs) == submitted
        assert len(manager.tracker) == submitted  # no job lost
        shed = sum(1 for job in all_jobs if job.state == SHED)
        accepted = submitted - shed
        counts = manager.tracker.counts()
        # Exactly one terminal state per job, and they add up.
        assert sum(counts.values()) == submitted
        assert set(counts) <= TERMINAL_STATES
        assert counts.get(SHED, 0) == shed
        assert counts.get(DONE, 0) == accepted
        # Quota means shedding definitely happened at this scale.
        assert shed > 0 and accepted > 0
