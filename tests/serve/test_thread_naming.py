"""The ``repro-`` thread-naming convention, enforced two ways.

Statically: every ``threading.Thread(...)`` construction and every
``thread_name_prefix=`` in ``src/`` must carry a ``repro-`` name, so
operators (and the soak sentinels) can attribute any thread in a dump
to this package.  Dynamically: a live gateway serving real jobs must
not leave any non-``repro-`` thread running.
"""

import re
import threading
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _call_window(text: str, start: int, width: int = 400) -> str:
    return text[start:start + width]


class TestStaticConvention:
    def test_every_thread_construction_is_named_repro(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            text = path.read_text()
            for match in re.finditer(r"threading\.Thread\(", text):
                window = _call_window(text, match.start())
                if "name=" not in window or "repro-" not in window:
                    line = text[:match.start()].count("\n") + 1
                    offenders.append(f"{path.name}:{line}")
        assert not offenders, (
            "threading.Thread without a repro- name at: "
            + ", ".join(offenders)
        )

    def test_every_pool_prefix_is_repro(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            text = path.read_text()
            for match in re.finditer(r"thread_name_prefix\s*=", text):
                window = _call_window(text, match.start(), 120)
                if "repro-" not in window:
                    line = text[:match.start()].count("\n") + 1
                    offenders.append(f"{path.name}:{line}")
        assert not offenders, (
            "thread pool without a repro- prefix at: "
            + ", ".join(offenders)
        )


class TestLiveConvention:
    def test_gateway_spawns_only_repro_threads(self):
        from repro.config import RuntimeConfig
        from repro.serve.gateway import ServeGateway, build_serve_model
        from repro.serve.loadgen import _Client

        baseline = {id(t) for t in threading.enumerate()}
        model, decimals, input_shape = build_serve_model("tiny")
        config = RuntimeConfig(key_size=128, seed=41).with_serve(
            workers=2,
        )
        rng = np.random.default_rng(41)
        with ServeGateway(model, decimals, config) as gateway:
            host, port = gateway.address
            client = _Client(f"http://{host}:{port}")
            status, body, _ = client.post("/v1/infer", {
                "tenant": "naming",
                "input": rng.uniform(0, 1, input_shape).tolist(),
            })
            assert status == 202
            deadline = time.monotonic() + 30.0
            while (not gateway.manager.tracker.all_terminal()
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert gateway.manager.tracker.all_terminal()
            # Every thread this stack spawned must carry the prefix.
            # HTTP connection threads rename themselves on the first
            # request and exit after it (Connection: close), so give
            # any in-teardown stragglers a moment to drain.
            grace = time.monotonic() + 2.0
            while time.monotonic() < grace:
                rogue = [
                    t for t in threading.enumerate()
                    if id(t) not in baseline
                    and not t.name.startswith("repro-")
                ]
                if not rogue:
                    break
                time.sleep(0.05)
            assert not rogue, [t.name for t in rogue]
