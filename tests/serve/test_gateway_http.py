"""HTTP front-door contract tests over a real local-mode gateway.

One gateway per module (keygen and model build amortized); each test
talks real HTTP through the stdlib client wrapper — status codes,
``Retry-After``, the 403 cross-tenant read refusal, and the
Prometheus exposition are all asserted on the wire, not on internals.
"""

import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.serve import TERMINAL_STATES
from repro.serve.gateway import ServeGateway, build_serve_model
from repro.serve.loadgen import _Client

KEY_SIZE = 128
SEED = 31


@pytest.fixture(scope="module")
def gateway():
    model, decimals, input_shape = build_serve_model("tiny")
    config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED).with_serve(
        queue_capacity=8, workers=2, tenant_quota=2,
        retry_after=2.0,
    )
    gateway = ServeGateway(model, decimals, config)
    gateway.input_shape = input_shape
    gateway.start()
    yield gateway
    gateway.close()


@pytest.fixture(scope="module")
def client(gateway):
    host, port = gateway.address
    return _Client(f"http://{host}:{port}")


def _sample(gateway, seed=0):
    rng = np.random.default_rng(SEED + seed)
    return rng.uniform(0, 1, gateway.input_shape).tolist()


def _poll_terminal(client, tenant, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = client.get(
            f"/v1/jobs/{job_id}?tenant={tenant}"
        )
        assert status == 200
        if body["state"] in TERMINAL_STATES:
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never went terminal")


class TestInferRoundTrip:
    def test_submit_poll_done(self, gateway, client):
        status, body, _ = client.post(
            "/v1/infer", {"tenant": "rt", "input": _sample(gateway)}
        )
        assert status == 202
        assert body["state"] in ("queued", "running")
        final = _poll_terminal(client, "rt", body["job_id"])
        assert final["state"] == "done"
        assert len(final["result"]["probabilities"]) == 3
        assert final["queue_seconds"] is not None
        assert final["service_seconds"] is not None

    def test_healthz(self, client):
        status, body, _ = client.get("/healthz")
        assert status == 200 and body == {"ok": True}

    def test_unknown_route_404(self, client):
        status, _, _ = client.get("/v1/nope")
        assert status == 404
        status, _, _ = client.post("/v1/nope", {})
        assert status == 404


class TestRejections:
    @pytest.mark.parametrize("doc", [
        {},                                  # no tenant, no input
        {"tenant": "t"},                     # no input
        {"input": [1.0]},                    # no tenant
        {"tenant": "t", "input": [1.0], "deadline": "soon"},
    ])
    def test_malformed_body_400(self, client, doc):
        status, body, _ = client.post("/v1/infer", doc)
        assert status == 400
        assert "malformed" in body["error"]

    def test_bad_tenant_name_400(self, gateway, client):
        status, body, _ = client.post(
            "/v1/infer",
            {"tenant": "bad name!", "input": _sample(gateway)},
        )
        assert status == 400
        assert "invalid tenant name" in body["error"]

    def test_unknown_job_404(self, client):
        status, _, _ = client.get("/v1/jobs/deadbeef?tenant=rt")
        assert status == 404

    def test_cross_tenant_read_403_and_counted(self, gateway,
                                               client):
        status, body, _ = client.post(
            "/v1/infer", {"tenant": "owner",
                          "input": _sample(gateway, 1)}
        )
        assert status == 202
        job_id = body["job_id"]
        status, body, _ = client.get(
            f"/v1/jobs/{job_id}?tenant=snoop"
        )
        assert status == 403
        assert "different tenant" in body["error"]
        denied = {
            labels["tenant"]: counter.value
            for labels, counter in gateway.obs.registry.find(
                "counter", "serve_cross_tenant_denied")
        }
        assert denied.get("snoop", 0) >= 1
        # A missing tenant param is refused the same way.
        status, _, _ = client.get(f"/v1/jobs/{job_id}")
        assert status == 403
        _poll_terminal(client, "owner", job_id)


class TestShedding:
    def test_over_capacity_503_with_retry_after(self, gateway,
                                                client):
        """Quota 2: a burst of 5 for one tenant must shed at least
        one request with 503 + Retry-After while the rest land."""
        statuses, retry_after = [], []
        pending = []
        for index in range(5):
            status, body, headers = client.post(
                "/v1/infer",
                {"tenant": "burst", "input": _sample(gateway, index)},
            )
            statuses.append(status)
            if status == 202:
                pending.append(body["job_id"])
            elif status == 503:
                retry_after.append(headers.get("Retry-After"))
                assert body["state"] == "shed"
        assert statuses.count(503) >= 1
        assert statuses.count(202) + statuses.count(503) == 5
        assert all(value == "2" for value in retry_after)
        for job_id in pending:
            assert _poll_terminal(client, "burst",
                                  job_id)["state"] == "done"


class TestTenantRejection:
    """Registration refusals are permanent conditions: 403 with no
    Retry-After, unlike the retryable 503 shed path."""

    def test_full_tenant_table_403_without_retry_after(self):
        model, decimals, input_shape = build_serve_model("tiny")
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(workers=1, max_tenants=1)
        with ServeGateway(model, decimals, config) as gateway:
            host, port = gateway.address
            client = _Client(f"http://{host}:{port}")
            rng = np.random.default_rng(SEED)
            sample = rng.uniform(0, 1, input_shape).tolist()
            status, _, _ = client.post(
                "/v1/infer", {"tenant": "first", "input": sample}
            )
            assert status == 202
            status, body, headers = client.post(
                "/v1/infer", {"tenant": "second", "input": sample}
            )
            assert status == 403
            assert "cap reached" in body["error"]
            assert "Retry-After" not in headers

    def test_allowlist_miss_403(self):
        model, decimals, input_shape = build_serve_model("tiny")
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(workers=1, tenant_allowlist=("vip",))
        with ServeGateway(model, decimals, config) as gateway:
            host, port = gateway.address
            client = _Client(f"http://{host}:{port}")
            rng = np.random.default_rng(SEED)
            sample = rng.uniform(0, 1, input_shape).tolist()
            status, _, _ = client.post(
                "/v1/infer", {"tenant": "vip", "input": sample}
            )
            assert status == 202
            status, body, headers = client.post(
                "/v1/infer", {"tenant": "intruder", "input": sample}
            )
            assert status == 403
            assert "allowlist" in body["error"]
            assert "Retry-After" not in headers


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, gateway, client):
        import urllib.request

        host, port = gateway.address
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10) as reply:
            assert reply.status == 200
            assert "text/plain" in reply.headers["Content-Type"]
            text = reply.read().decode("utf-8")
        assert "# TYPE serve_jobs_submitted counter" in text
        assert 'serve_jobs_submitted{tenant="rt"}' in text
        assert "# TYPE serve_http_responses counter" in text
        assert "serve_tenants" in text
