"""Per-tenant time-window rate limiting at the gateway front door.

The ``serve_tenant_rps`` knob puts a sliding one-second window
(:class:`repro.protocol.ratelimit.RateLimiter`) in front of every
tenant's submits: over-limit requests get **429 + Retry-After** on
the wire, are counted per tenant in ``serve_rate_limited``, and never
consume queue or quota.  Limits are per tenant — one tenant saturating
its window must not slow a neighbour down.
"""

import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ReproError
from repro.protocol.ratelimit import RateLimitExceeded
from repro.serve.gateway import ServeGateway, build_serve_model
from repro.serve.loadgen import _Client

KEY_SIZE = 128
SEED = 47
RPS = 2


@pytest.fixture(scope="module")
def limited_gateway():
    model, decimals, input_shape = build_serve_model("tiny")
    config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED).with_serve(
        queue_capacity=16, workers=2, tenant_quota=8,
        tenant_rps=RPS,
    )
    gateway = ServeGateway(model, decimals, config)
    gateway.input_shape = input_shape
    gateway.start()
    yield gateway
    gateway.close()


@pytest.fixture(scope="module")
def client(limited_gateway):
    host, port = limited_gateway.address
    return _Client(f"http://{host}:{port}")


def _sample(gateway, seed=0):
    rng = np.random.default_rng(SEED + seed)
    return rng.uniform(0, 1, gateway.input_shape).tolist()


def _drain_window():
    time.sleep(1.0 + 0.1)


def _burst(client, gateway, tenant, count):
    statuses = []
    for i in range(count):
        status, body, headers = client.post(
            "/v1/infer",
            {"tenant": tenant, "input": _sample(gateway, i)},
        )
        statuses.append((status, body, headers))
    return statuses


class TestOverLimitSubmits:
    def test_burst_over_rps_gets_429_with_retry_after(
            self, limited_gateway, client):
        replies = _burst(client, limited_gateway, "bursty", RPS + 2)
        codes = [status for status, _, _ in replies]
        assert codes[:RPS] == [202] * RPS
        assert set(codes[RPS:]) == {429}
        for status, body, headers in replies[RPS:]:
            assert "error" in body
            assert headers.get("Retry-After") == "1"

    def test_window_slides_open_again(self, limited_gateway, client):
        _drain_window()
        replies = _burst(client, limited_gateway, "patient", RPS + 1)
        assert [s for s, _, _ in replies][-1] == 429
        _drain_window()
        status, body, _ = client.post(
            "/v1/infer",
            {"tenant": "patient", "input": _sample(limited_gateway)},
        )
        assert status == 202
        assert "job_id" in body

    def test_limits_are_per_tenant(self, limited_gateway, client):
        _drain_window()
        replies = _burst(client, limited_gateway, "noisy", RPS + 1)
        assert [s for s, _, _ in replies][-1] == 429
        status, _, _ = client.post(
            "/v1/infer",
            {"tenant": "quiet", "input": _sample(limited_gateway)},
        )
        assert status == 202

    def test_rejections_counted_per_tenant_in_metrics(
            self, limited_gateway, client):
        _drain_window()
        _burst(client, limited_gateway, "counted", RPS + 3)
        text = limited_gateway.obs.registry.to_prometheus()
        line = next(
            (line for line in text.splitlines()
             if line.startswith("serve_rate_limited")
             and 'tenant="counted"' in line),
            None,
        )
        assert line is not None
        assert float(line.rsplit(" ", 1)[1]) == 3.0

    def test_limiter_map_bounded_by_registered_tenants(
            self, limited_gateway):
        assert set(limited_gateway._limiters) <= \
            set(limited_gateway.registry.names())

    def test_unregistered_tenant_never_allocates_a_limiter(
            self, limited_gateway, client):
        """A rejected tenant name must not leave a limiter behind —
        the limiter map is bounded by the tenant table, not by
        attacker-chosen names."""
        before = set(limited_gateway._limiters)
        status, _, _ = client.post(
            "/v1/infer",
            {"tenant": "bad name!", "input": _sample(limited_gateway)},
        )
        assert status == 400
        assert set(limited_gateway._limiters) == before


class TestDisabledByDefault:
    def test_zero_rps_never_rate_limits(self):
        model, decimals, input_shape = build_serve_model("tiny")
        config = RuntimeConfig(
            key_size=KEY_SIZE, seed=SEED,
        ).with_serve(queue_capacity=16, workers=2, tenant_quota=8)
        assert config.serve_tenant_rps == 0
        with ServeGateway(model, decimals, config) as gateway:
            sample = np.random.default_rng(SEED).uniform(
                0, 1, input_shape
            )
            for _ in range(RPS + 3):
                job = gateway.submit("free", sample)
                assert job.state != "shed"
            assert gateway._limiters == {}


class TestSubmitLevelContract:
    def test_submit_raises_rate_limit_exceeded(self, limited_gateway):
        """The Python-level API surfaces the same condition as the
        typed ProtocolError subclass (what the HTTP handler maps to
        429)."""
        _drain_window()
        sample = np.random.default_rng(SEED).uniform(
            0, 1, limited_gateway.input_shape
        )
        for _ in range(RPS):
            limited_gateway.submit("direct", sample)
        with pytest.raises(RateLimitExceeded):
            limited_gateway.submit("direct", sample)
        # ...and it is a ReproError, so callers that guard broadly
        # still catch it.
        with pytest.raises(ReproError):
            limited_gateway.submit("direct", sample)
