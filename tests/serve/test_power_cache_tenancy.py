"""Power-cache tenancy: fixed-base tables never cross tenant walls.

A fleet worker hosts many tenants' sessions side by side.  Each
session's engines must own their own :class:`PowerCache` — a shared
table would leak one tenant's ciphertext-derived bases into another's
timing/metrics surface — and the ``paillier_power_cache_entries``
gauge must be labelled per (worker, tenant) so /metrics attributes
every cache to its owner.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.serialize import (
    any_tensor_from_bytes,
    any_tensor_to_bytes,
)
from repro.crypto.tensor import EncryptedTensor
from repro.net import WorkerServer, build_worker_spec
from repro.net.transport import (
    KIND_HELLO,
    KIND_RESULT,
    KIND_TASK,
    KIND_WELCOME,
    Envelope,
    dial,
)
from repro.net.wire import ROLE_DATA, ROLE_MODEL
from repro.nn import model_zoo
from repro.nn.layers import LayerKind
from repro.observability import Observability
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider

TENANTS = ("acme", "globex")


@pytest.fixture(scope="module")
def tiny_model():
    return model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="tenancy-tiny",
    )


def _tenant_spec(model, tenant, seed, role):
    config = RuntimeConfig(key_size=128, seed=seed)
    model_provider = ModelProvider(model, decimals=2, config=config)
    data_provider = DataProvider(value_decimals=2, config=config)
    model_provider.register_public_key(data_provider.public_key)
    plan = allocate_even(model_provider.stages,
                         ClusterSpec.homogeneous(1, 1, 2)).plan
    spec = build_worker_spec(model_provider, data_provider, plan,
                             role, tenant=tenant)
    return spec, model_provider, data_provider, plan


class TestDataRoleEngines:
    def test_per_tenant_data_engines_and_caches_are_distinct(
            self, tiny_model):
        obs = Observability(enabled=True)
        server = WorkerServer(obs=obs)
        host, port = server.start()
        connections = []
        try:
            for offset, tenant in enumerate(TENANTS):
                spec, _, _, _ = _tenant_spec(
                    tiny_model, tenant, seed=60 + offset,
                    role=ROLE_DATA,
                )
                connection = dial(host, port)
                connections.append(connection)
                assert connection.request(
                    Envelope(KIND_HELLO, spec), timeout=5
                ).kind == KIND_WELCOME
            sessions = [server._sessions[t] for t in TENANTS]
            engines = [s._engine for s in sessions]
            assert engines[0] is not engines[1]
            assert engines[0].power_cache is not engines[1].power_cache
            gauges = {
                (g["labels"].get("tenant"), g["labels"].get("worker"))
                for g in obs.registry.snapshot()["gauges"]
                if g["name"] == "paillier_power_cache_entries"
            }
            for tenant in TENANTS:
                assert (tenant, str(port)) in gauges
        finally:
            for connection in connections:
                connection.close()
            server.stop(abort=True)


class TestModelRoleEngines:
    def test_per_tenant_executor_engines_never_share_caches(
            self, tiny_model):
        """Model-side executor engines are lazy — run one linear task
        per tenant, then check the materialized engines and their
        fixed-base caches are per-tenant objects, with both tenants'
        gauges exposed in the shared registry."""
        obs = Observability(enabled=True)
        server = WorkerServer(obs=obs)
        host, port = server.start()
        connections = []
        try:
            stage_index = None
            for offset, tenant in enumerate(TENANTS):
                spec, model_provider, data_provider, plan = \
                    _tenant_spec(tiny_model, tenant, seed=70 + offset,
                                 role=ROLE_MODEL)
                linear = [s.index for s in plan.stages
                          if s.kind is LayerKind.LINEAR]
                stage_index = linear[-1]
                affine = model_provider._linear_plans[stage_index] \
                    .affines[0]
                in_dim = affine.weight.shape[1]
                x = np.arange(in_dim) % 5
                tensor = EncryptedTensor.encrypt(
                    x, data_provider.public_key, exponent=0,
                    engine=data_provider.engine,
                )
                connection = dial(host, port)
                connections.append(connection)
                assert connection.request(
                    Envelope(KIND_HELLO, spec), timeout=5
                ).kind == KIND_WELCOME
                reply = connection.request(Envelope(
                    KIND_TASK,
                    {"request_id": offset,
                     "stage_index": stage_index,
                     "obfuscation_round": None,
                     "trace_id": None, "trace_parent": None},
                    payload=any_tensor_to_bytes(tensor),
                ), timeout=10)
                assert reply.kind == KIND_RESULT
                out = any_tensor_from_bytes(
                    reply.payload, data_provider.public_key
                )
                expected = affine.apply_plain(x, input_exponent=0)
                assert np.array_equal(
                    out.decrypt(data_provider._private_key), expected
                )
            engines = [
                server._sessions[t]._executors[stage_index]._engine
                for t in TENANTS
            ]
            assert None not in engines
            assert engines[0] is not engines[1]
            assert engines[0].power_cache is not engines[1].power_cache
            # Different keypairs: a shared cache could not even be
            # correct, but the isolation must hold structurally.
            assert engines[0].public_key.n != engines[1].public_key.n
            gauges = {
                (g["labels"].get("tenant"), g["labels"].get("worker"))
                for g in obs.registry.snapshot()["gauges"]
                if g["name"] == "paillier_power_cache_entries"
            }
            for tenant in TENANTS:
                assert (tenant, str(port)) in gauges
        finally:
            for connection in connections:
                connection.close()
            server.stop(abort=True)
