"""Tenant isolation: distinct keypairs, cross-tenant decrypt attacks,
exact per-tenant metric partitioning.

The isolation battery runs real jobs end-to-end under two tenants of
one gateway and then attacks each tenant's ciphertexts with the other
tenant's private key — recovery must be impossible (an exception or
garbage, never the plaintext).
"""

import threading
import time
import zlib

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import TenantError, TenantRejectedError
from repro.observability import NULL_TRACER, Observability
from repro.serve import (
    DONE,
    Job,
    TenantRegistry,
    tenant_seed,
)
from repro.serve.gateway import ServeGateway, build_serve_model

KEY_SIZE = 128
SEED = 21


@pytest.fixture(scope="module")
def served():
    model, decimals, input_shape = build_serve_model("tiny")
    return model, decimals, input_shape


@pytest.fixture()
def registry(served):
    model, decimals, _ = served
    config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED).with_serve(
        max_tenants=4,
    )
    registry = TenantRegistry(model, decimals, config)
    yield registry
    registry.close()


class TestTenantSeeds:
    def test_deterministic(self):
        assert tenant_seed(7, "alice") == tenant_seed(7, "alice")

    def test_distinct_names_distinct_seeds(self):
        names = ["alice", "bob", "carol", "tenant-0", "tenant-1"]
        seeds = {tenant_seed(7, name) for name in names}
        assert len(seeds) == len(names)

    def test_master_seed_matters(self):
        assert tenant_seed(7, "alice") != tenant_seed(8, "alice")

    def test_seed_fits_rng_inputs(self):
        seed = tenant_seed(20240519, "alice")
        assert 0 <= seed < 2 ** 64

    def test_crc32_collisions_do_not_collide_seeds(self):
        """Tenant names are attacker-chosen, so the seed derivation
        must survive adversarial collisions in weak checksums: these
        two valid tenant names CRC32-collide (found by birthday
        search), so the original ``master_seed ^ crc32(name)``
        derivation would have handed both tenants the **same Paillier
        keypair**.  The cryptographic derivation must keep their
        seeds distinct."""
        first, second = "t-79462e94d11d", "t-4eaac92ea841"
        assert (zlib.crc32(first.encode("utf-8"))
                == zlib.crc32(second.encode("utf-8")))
        for master_seed in (7, 20240519):
            assert (tenant_seed(master_seed, first)
                    != tenant_seed(master_seed, second))


class TestTenantRegistry:
    def test_ensure_is_idempotent(self, registry):
        first = registry.ensure("alice")
        assert registry.ensure("alice") is first
        assert registry.get("alice") is first

    def test_unknown_tenant_rejected(self, registry):
        with pytest.raises(TenantError, match="unknown tenant"):
            registry.get("nobody")

    @pytest.mark.parametrize("bad", ["", "-lead", "sp ace", "a" * 65,
                                     "semi;colon", None, 7])
    def test_invalid_names_rejected(self, registry, bad):
        with pytest.raises(TenantError, match="invalid tenant name"):
            registry.ensure(bad)

    def test_tenant_cap_enforced(self, registry):
        for index in range(4):
            registry.ensure(f"t{index}")
        with pytest.raises(TenantError, match="cap reached"):
            registry.ensure("overflow")
        # Existing tenants stay reachable at the cap.
        assert registry.get("t0") is registry.ensure("t0")

    def test_distinct_keypairs(self, registry):
        alice = registry.ensure("alice")
        bob = registry.ensure("bob")
        assert alice.public_key.n != bob.public_key.n
        assert alice.config.seed != bob.config.seed

    def test_cap_refusal_is_non_retryable(self, registry):
        for index in range(4):
            registry.ensure(f"t{index}")
        with pytest.raises(TenantRejectedError):
            registry.ensure("overflow")

    def test_concurrent_ensure_shares_one_runtime(self, served):
        model, decimals, _ = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED)
        registry = TenantRegistry(model, decimals, config)
        runtimes = []
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            runtimes.append(registry.ensure("shared"))

        threads = [
            threading.Thread(target=race,
                             name=f"repro-test-ensure-{i}")
            for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(runtimes) == 4
            assert all(r is runtimes[0] for r in runtimes)
        finally:
            registry.close()

    def test_failed_creation_does_not_poison_the_slot(self, served):
        """A runtime that fails to construct must release its pending
        slot: later ensures re-attempt (and re-fail) instead of
        deadlocking or permanently occupying the table."""
        model, decimals, _ = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED)
        # Fleet mode without worker addresses fails inside the
        # TenantRuntime constructor, after the slot is reserved.
        registry = TenantRegistry(model, decimals, config,
                                  mode="fleet",
                                  worker_addresses=None)
        for _ in range(2):
            with pytest.raises(TenantError,
                               match="worker addresses"):
                registry.ensure("doomed")
        assert registry.names() == []
        registry.close()


class TestTenantAllowlist:
    def test_allowlist_refuses_unlisted_names(self, served):
        model, decimals, _ = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(tenant_allowlist=("alice", "bob"))
        registry = TenantRegistry(model, decimals, config)
        try:
            assert registry.ensure("alice").name == "alice"
            with pytest.raises(TenantRejectedError,
                               match="not on the allowlist"):
                registry.ensure("mallory")
            # The refused name burned no slot (and no keygen).
            assert registry.names() == ["alice"]
        finally:
            registry.close()


class TestIdleEviction:
    def _registry(self, served, **serve_kwargs):
        model, decimals, _ = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(**serve_kwargs)
        return TenantRegistry(model, decimals, config)

    def test_full_table_evicts_lru_idle_tenant(self, served):
        registry = self._registry(
            served, max_tenants=2, tenant_idle_seconds=0.01,
        )
        try:
            registry.ensure("old")
            time.sleep(0.02)
            registry.ensure("young")
            time.sleep(0.02)
            registry.ensure("new")  # evicts "old" (LRU idle)
            assert registry.names() == ["new", "young"]
            with pytest.raises(TenantError, match="unknown tenant"):
                registry.get("old")
        finally:
            registry.close()

    def test_in_use_tenants_are_never_evicted(self, served):
        registry = self._registry(
            served, max_tenants=2, tenant_idle_seconds=0.01,
        )
        try:
            registry.ensure("busy")
            registry.ensure("idle")
            time.sleep(0.02)
            registry.in_use = lambda name: name == "busy"
            registry.ensure("new")  # must pick "idle", not "busy"
            assert registry.names() == ["busy", "new"]
        finally:
            registry.close()

    def test_eviction_disabled_keeps_table_full(self, served):
        registry = self._registry(served, max_tenants=2)
        try:
            registry.ensure("a")
            registry.ensure("b")
            time.sleep(0.02)
            with pytest.raises(TenantRejectedError,
                               match="cap reached"):
                registry.ensure("c")
        finally:
            registry.close()


class TestCrossTenantIsolation:
    """Tenant A's key must never decrypt tenant B's ciphertexts."""

    def test_cross_decrypt_impossible(self, registry):
        alice = registry.ensure("alice")
        bob = registry.ensure("bob")
        values = np.array([1.25, -2.5, 7.0])
        ciphertext = alice.data_provider.encrypt_input(values)
        own = ciphertext.decrypt_float(alice.private_key)
        assert np.allclose(own.reshape(-1), values, atol=1e-6)
        try:
            stolen = ciphertext.decrypt_float(bob.private_key)
        except Exception:
            return  # refusing outright is isolation too
        assert not np.allclose(stolen.reshape(-1), values, atol=1e-3)

    def test_end_to_end_jobs_stay_isolated(self, served):
        """Run one real job per tenant through a shared gateway, then
        attack each tenant's fresh ciphertexts with the other key."""
        model, decimals, input_shape = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(workers=2)
        rng = np.random.default_rng(SEED)
        with ServeGateway(model, decimals, config) as gateway:
            jobs = {
                name: gateway.submit(
                    name, rng.uniform(0, 1, input_shape).tolist()
                )
                for name in ("alice", "bob")
            }
            for job in jobs.values():
                assert job.state != "shed"
            import time

            deadline = time.monotonic() + 30.0
            while (not all(j.terminal for j in jobs.values())
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            for name, job in jobs.items():
                assert job.state == DONE, (name, job.state, job.error)
                assert len(job.result["probabilities"]) == 3
            alice = gateway.registry.get("alice")
            bob = gateway.registry.get("bob")
            probe = np.array([3.5, -1.0, 0.25])
            for owner, attacker in ((alice, bob), (bob, alice)):
                ciphertext = owner.data_provider.encrypt_input(probe)
                try:
                    stolen = ciphertext.decrypt_float(
                        attacker.private_key
                    )
                except Exception:
                    continue
                assert not np.allclose(stolen.reshape(-1), probe,
                                       atol=1e-3)


class TestMetricPartitioning:
    def test_labels_partition_exactly(self, served):
        """Every serve_* counter carries a tenant label, the label set
        equals the tenant set, and per-tenant totals match what each
        tenant actually submitted — zero cross-tenant bleed."""
        model, decimals, input_shape = served
        config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED) \
            .with_serve(workers=2)
        obs = Observability(enabled=True, tracer=NULL_TRACER)
        rng = np.random.default_rng(SEED + 1)
        submissions = {"alice": 3, "bob": 1}
        with ServeGateway(model, decimals, config,
                          obs=obs) as gateway:
            for name, count in submissions.items():
                for _ in range(count):
                    gateway.submit(
                        name,
                        rng.uniform(0, 1, input_shape).tolist(),
                    )
            import time

            deadline = time.monotonic() + 30.0
            while (not gateway.manager.tracker.all_terminal()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert gateway.manager.tracker.all_terminal()

        submitted = {
            labels["tenant"]: counter.value
            for labels, counter in obs.registry.find(
                "counter", "serve_jobs_submitted")
        }
        assert submitted == {name: float(count)
                             for name, count in submissions.items()}
        terminal = {}
        for labels, counter in obs.registry.find(
                "counter", "serve_jobs_terminal"):
            assert set(labels) == {"tenant", "state"}
            terminal.setdefault(labels["tenant"], 0.0)
            terminal[labels["tenant"]] += counter.value
        assert terminal == submitted
        # Per-tenant histograms exist only for tenants that ran.
        service_tenants = {
            labels["tenant"]
            for labels, _ in obs.registry.find(
                "histogram", "serve_service_seconds")
        }
        assert service_tenants == set(submissions)
