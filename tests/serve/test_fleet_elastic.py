"""Elastic fleet serving: grow and shrink the shared worker fleet
while tenants keep computing bit-identical answers."""

import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.errors import ServeError
from repro.net import WorkerServer
from repro.serve.gateway import ServeGateway, build_serve_model

KEY_SIZE = 128
SEED = 67


def _config():
    return RuntimeConfig(key_size=KEY_SIZE, seed=SEED).with_serve(
        queue_capacity=8, workers=2, tenant_quota=4,
    )


def _run_one(gateway, tenant, input_shape):
    sample = np.random.default_rng(SEED).uniform(0, 1, input_shape)
    job = gateway.submit(tenant, sample)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not job.terminal:
        time.sleep(0.02)
    assert job.state == "done", job.to_dict()
    return job.to_dict()["result"]["probabilities"]


@pytest.fixture(scope="module")
def served():
    return build_serve_model("tiny")


class TestFleetGrowShrink:
    def test_grow_and_shrink_keep_answers_bit_identical(self, served):
        """The full elastic arc over one gateway: baseline answer,
        grow a third worker (existing tenant keeps computing, new
        tenant sees it from birth), then shrink an original — every
        phase returns the identical probability vector."""
        model, decimals, input_shape = served
        fleet = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in fleet]
        spare = WorkerServer()
        spare_address = spare.start()
        try:
            with ServeGateway(model, decimals, _config(),
                              mode="fleet",
                              worker_addresses=addresses) as gateway:
                baseline = _run_one(gateway, "t", input_shape)

                server_id = gateway.grow_fleet(spare_address,
                                               "model", cores=4)
                assert server_id == 2
                # The existing tenant survived the live admit...
                assert _run_one(gateway, "t", input_shape) \
                    == baseline
                # ...and a tenant created after the grow is born
                # onto the three-worker cluster.
                assert _run_one(gateway, "late", input_shape) \
                    == baseline
                assert len(gateway.registry.cluster.servers) == 3

                gateway.shrink_fleet(0)
                assert _run_one(gateway, "t", input_shape) \
                    == baseline
                # A tenant born after the shrink never dials the
                # departed worker.
                assert _run_one(gateway, "post", input_shape) \
                    == baseline
                size = gateway.obs.registry.gauge(
                    "serve_fleet_size").value
                assert size == 2
        finally:
            for server in fleet + [spare]:
                server.stop(abort=True)

    def test_shrink_refusals(self, served):
        model, decimals, input_shape = served
        fleet = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in fleet]
        spare = WorkerServer()
        spare_address = spare.start()
        try:
            with ServeGateway(model, decimals, _config(),
                              mode="fleet",
                              worker_addresses=addresses) as gateway:
                # Last-of-role: with one model and one data worker,
                # neither may drain.
                with pytest.raises(ServeError, match="last"):
                    gateway.shrink_fleet(0)
                with pytest.raises(ServeError, match="last"):
                    gateway.shrink_fleet(1)
                # Unknown id.
                with pytest.raises(ServeError, match="no fleet"):
                    gateway.shrink_fleet(9)
                # Double drain.
                gateway.grow_fleet(spare_address, "model", cores=4)
                gateway.shrink_fleet(0)
                with pytest.raises(ServeError, match="already"):
                    gateway.shrink_fleet(0)
                # The fleet still serves after the refusals.
                assert len(_run_one(gateway, "t", input_shape)) == 3
        finally:
            for server in fleet + [spare]:
                server.stop(abort=True)

    def test_grow_refused_in_local_mode(self, served):
        model, decimals, _ = served
        with ServeGateway(model, decimals, _config()) as gateway:
            with pytest.raises(ServeError, match="fleet mode"):
                gateway.grow_fleet(("127.0.0.1", 1), "model")
            with pytest.raises(ServeError, match="fleet mode"):
                gateway.shrink_fleet(0)
