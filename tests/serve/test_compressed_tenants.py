"""Tenant-level compression: the ``compress_*`` serving knobs.

With ``compress_enabled`` the registry derives one pruned+clustered
model at startup (deterministic under the master seed) and serves it
to every opted-in tenant; ``serve_compress_tenants`` narrows the
opt-in to an explicit allowlist.  End-to-end jobs must still complete
— in local mode and over a fleet, where the tenant's sparse plans
cross the handshake and the workers run the same compressed kernels.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.net import WorkerServer
from repro.serve.gateway import ServeGateway, build_serve_model
from repro.serve.tenants import compress_served_model

KEY_SIZE = 128
SEED = 53


def _config(**compress):
    config = RuntimeConfig(key_size=KEY_SIZE, seed=SEED).with_serve(
        queue_capacity=8, workers=2, tenant_quota=4,
    )
    return config.with_compress(**compress) if compress else config


def _run_one(gateway, tenant, input_shape):
    import time

    sample = np.random.default_rng(SEED).uniform(0, 1, input_shape)
    job = gateway.submit(tenant, sample)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not job.terminal:
        time.sleep(0.02)
    assert job.state == "done", job.to_dict()
    return job.to_dict()["result"]["probabilities"]


class TestCompressServedModel:
    def test_deterministic_under_the_master_seed(self):
        model, _, _ = build_serve_model("tiny")
        config = _config(enabled=True)
        first, report_a = compress_served_model(model, config)
        second, report_b = compress_served_model(model, config)
        assert report_a == report_b
        for layer_a, layer_b in zip(first.layers, second.layers):
            weight_a = getattr(layer_a, "weight", None)
            if weight_a is not None:
                assert np.array_equal(weight_a, layer_b.weight)

    def test_report_shape(self):
        model, _, _ = build_serve_model("tiny")
        _, report = compress_served_model(model, _config(enabled=True))
        assert report["target_sparsity"] == \
            pytest.approx(_config(enabled=True).compress_sparsity)
        assert report["applied_sparsity"] > 0
        assert report["clusters"] >= 1
        # Untrained tiny model has no evaluation data: accuracies are
        # structural Nones, not fabricated numbers.
        assert report["baseline_accuracy"] is None
        assert report["compressed_accuracy"] is None


class TestCompressedLocalServing:
    def test_all_tenants_get_the_compressed_model(self):
        model, decimals, input_shape = build_serve_model("tiny")
        config = _config(enabled=True, sparsity=0.6, clusters=4)
        with ServeGateway(model, decimals, config) as gateway:
            assert gateway.registry.compression is not None
            assert gateway.registry.compression["applied_sparsity"] \
                == pytest.approx(0.6)
            probabilities = _run_one(gateway, "anyone", input_shape)
            assert len(probabilities) == 3
            runtime = gateway.registry.get("anyone")
            assert runtime.model_provider._model \
                is gateway.registry._compressed_model

    def test_allowlist_narrows_the_opt_in(self):
        model, decimals, input_shape = build_serve_model("tiny")
        config = _config(enabled=True, tenants=("vip",))
        with ServeGateway(model, decimals, config) as gateway:
            _run_one(gateway, "vip", input_shape)
            _run_one(gateway, "walkin", input_shape)
            vip = gateway.registry.get("vip")
            walkin = gateway.registry.get("walkin")
            assert vip.model_provider._model \
                is gateway.registry._compressed_model
            assert walkin.model_provider._model is model

    def test_disabled_by_default(self):
        model, decimals, _ = build_serve_model("tiny")
        with ServeGateway(model, decimals, _config()) as gateway:
            assert gateway.registry.compression is None
            assert gateway.registry._compressed_model is None


class TestCompressedFleetServing:
    def test_compressed_tenant_runs_over_tcp_workers(self):
        """The compressed tenant's plans ride the handshake spec; the
        fleet workers rebuild them and the job completes with the
        same result the local-mode compressed gateway computes."""
        model, decimals, input_shape = build_serve_model("tiny")
        config = _config(enabled=True, sparsity=0.6, clusters=4)
        with ServeGateway(model, decimals, config) as local:
            expected = _run_one(local, "t", input_shape)
        fleet = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in fleet]
        try:
            with ServeGateway(model, decimals, config, mode="fleet",
                              worker_addresses=addresses) as gateway:
                probabilities = _run_one(gateway, "t", input_shape)
                assert probabilities == expected
        finally:
            for server in fleet:
                server.stop(abort=True)
