"""Shared fixtures: small keypairs and trained models, built once."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.paillier import generate_keypair
from repro.datasets import load_dataset
from repro.nn import model_zoo
from repro.nn.training import SGDTrainer

#: Small key for fast protocol tests; the key size is a config knob,
#: not a separate code path (see repro.config).
TEST_KEY_SIZE = 128


@pytest.fixture(scope="session")
def keypair():
    """A deterministic 128-bit Paillier keypair."""
    return generate_keypair(TEST_KEY_SIZE, seed=42)


@pytest.fixture(scope="session")
def keypair_256():
    """A deterministic 256-bit keypair for headroom-sensitive tests."""
    return generate_keypair(256, seed=43)


@pytest.fixture()
def rng():
    """A fresh seeded Python RNG per test."""
    return random.Random(1234)


@pytest.fixture()
def np_rng():
    """A fresh seeded numpy generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def breast_dataset():
    return load_dataset("breast")


@pytest.fixture(scope="session")
def trained_breast(breast_dataset):
    """A 3FC model trained to high accuracy on the breast stand-in."""
    model = model_zoo.build_model("breast")
    trainer = SGDTrainer(model, learning_rate=0.1, seed=0)
    trainer.fit(breast_dataset.train_x, breast_dataset.train_y, epochs=12)
    return model


@pytest.fixture(scope="session")
def tiny_conv_model():
    """A small conv model (8x8 input) for conv-path protocol tests."""
    return model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="tiny-conv",
    )


@pytest.fixture(scope="session")
def test_config():
    return RuntimeConfig(key_size=TEST_KEY_SIZE)
