"""Shared fixtures (small keypairs, trained models, built once) and a
lightweight per-test timeout guard.

The timeout guard gives ``pytest-timeout``-style semantics without the
plugin dependency: the ``timeout`` ini option (pyproject.toml) sets a
global per-test ceiling, overridable per test with
``@pytest.mark.timeout(seconds)``.  Implemented with SIGALRM so a
wedged channel/worker regression fails fast with a TimeoutGuard error
instead of hanging the whole suite; on platforms without SIGALRM it is
a no-op.
"""

from __future__ import annotations

import random
import signal
import threading

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.crypto.paillier import generate_keypair
from repro.datasets import load_dataset
from repro.nn import model_zoo
from repro.nn.training import SGDTrainer


class TimeoutGuardError(Exception):
    """A test exceeded its per-test timeout."""


def pytest_addoption(parser):
    parser.addini(
        "timeout",
        "global per-test timeout in seconds (0 disables)",
        default="0",
    )
    parser.addoption(
        "--tier1",
        action="store_true",
        default=False,
        help="tier-1 mode: deselect tests marked slow (shorthand for "
             "-m 'not slow'; see [tool.repro] tier1 in pyproject.toml)",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--tier1"):
        return
    selected, deselected = [], []
    for item in items:
        if item.get_closest_marker("slow"):
            deselected.append(item)
        else:
            selected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_for(item)
    can_alarm = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutGuardError(
            f"test exceeded its {seconds:g}s timeout "
            f"(tests/conftest.py timeout guard)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

#: Small key for fast protocol tests; the key size is a config knob,
#: not a separate code path (see repro.config).
TEST_KEY_SIZE = 128


@pytest.fixture(scope="session")
def keypair():
    """A deterministic 128-bit Paillier keypair."""
    return generate_keypair(TEST_KEY_SIZE, seed=42)


@pytest.fixture(scope="session")
def keypair_256():
    """A deterministic 256-bit keypair for headroom-sensitive tests."""
    return generate_keypair(256, seed=43)


@pytest.fixture()
def rng():
    """A fresh seeded Python RNG per test."""
    return random.Random(1234)


@pytest.fixture()
def np_rng():
    """A fresh seeded numpy generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def breast_dataset():
    return load_dataset("breast")


@pytest.fixture(scope="session")
def trained_breast(breast_dataset):
    """A 3FC model trained to high accuracy on the breast stand-in."""
    model = model_zoo.build_model("breast")
    trainer = SGDTrainer(model, learning_rate=0.1, seed=0)
    trainer.fit(breast_dataset.train_x, breast_dataset.train_y, epochs=12)
    return model


@pytest.fixture(scope="session")
def tiny_conv_model():
    """A small conv model (8x8 input) for conv-path protocol tests."""
    return model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="tiny-conv",
    )


@pytest.fixture(scope="session")
def test_config():
    return RuntimeConfig(key_size=TEST_KEY_SIZE)
