"""Unit tests for batch-axis lane packing.

Covers the :class:`LanePacker` encoding (round trips with negatives,
overflow and lane-carry detection, rebias algebra), the engine's packed
fast paths (``encrypt_many_packed`` / ``decrypt_many_packed`` /
``fc_matvec_packed`` and the ``add_plain_many`` rebias primitive), the
:class:`PackedEncryptedTensor` operations, the dispatch break-even
threshold, and the matvec weight-dedup satellite.
"""

import random

import numpy as np
import pytest

from repro.crypto.encoding import DEFAULT_GUARD_BITS, LanePacker
from repro.crypto.engine import (
    DEFAULT_DISPATCH_MIN_ITEMS,
    BlindingPool,
    PaillierEngine,
    _matvec_partial,
)
from repro.crypto.paillier import EncryptedNumber
from repro.crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from repro.errors import CryptoError, EncodingError, KeyMismatchError


@pytest.fixture()
def packer4(keypair):
    return LanePacker(keypair[0], lanes=4, mag_bits=16)


class TestLanePacker:
    def test_lane_geometry(self, keypair):
        pub, _ = keypair
        packer = LanePacker(pub, lanes=4, mag_bits=16)
        assert packer.lane_bits == 16 + DEFAULT_GUARD_BITS + 1
        assert packer.offset == 1 << (packer.lane_bits - 1)
        assert packer.max_magnitude == (1 << 16) - 1
        assert packer.capacity_bits == pub.n.bit_length() - 1

    def test_ones_mask_one_bit_per_lane(self, packer4):
        mask = packer4.ones_mask
        for lane in range(packer4.lanes):
            assert (mask >> (lane * packer4.lane_bits)) & 1 == 1
        assert bin(mask).count("1") == packer4.lanes

    def test_validation(self, keypair):
        pub, _ = keypair
        with pytest.raises(EncodingError):
            LanePacker(pub, lanes=0, mag_bits=8)
        with pytest.raises(EncodingError):
            LanePacker(pub, lanes=2, mag_bits=0)
        with pytest.raises(EncodingError):
            LanePacker(pub, lanes=2, mag_bits=8, guard_bits=-1)
        # lanes * lane_bits must fit below the modulus
        with pytest.raises(EncodingError):
            LanePacker(pub, lanes=pub.n.bit_length(), mag_bits=8)

    def test_capacity_matches_constructor(self, keypair):
        pub, _ = keypair
        cap = LanePacker.capacity(pub, mag_bits=16)
        LanePacker(pub, lanes=cap, mag_bits=16)  # fits exactly
        with pytest.raises(EncodingError):
            LanePacker(pub, lanes=cap + 1, mag_bits=16)

    def test_round_trip_with_negatives(self, packer4):
        values = [-(1 << 16) + 1, -1, 0, (1 << 16) - 1]
        assert packer4.unpack(packer4.pack(values)) == values

    def test_round_trip_partial_batch(self, packer4):
        values = [5, -7]
        residue = packer4.pack(values)
        assert packer4.unpack(residue, count=2) == values

    def test_overflow_rejected(self, packer4):
        with pytest.raises(EncodingError):
            packer4.pack([packer4.max_magnitude + 1])
        with pytest.raises(EncodingError):
            packer4.pack([-packer4.max_magnitude - 1])

    def test_too_many_values_rejected(self, packer4):
        with pytest.raises(EncodingError):
            packer4.pack([0] * (packer4.lanes + 1))

    def test_lane_carry_detected(self, packer4):
        """A residue with bits above the lane span means a lane
        overflowed into territory packing cannot account for."""
        residue = packer4.pack([1, 2, 3, 4])
        poisoned = residue | (1 << (packer4.lanes * packer4.lane_bits))
        with pytest.raises(EncodingError):
            packer4.unpack(poisoned)
        with pytest.raises(EncodingError):
            packer4.unpack(-1)

    def test_rebias_shifts_every_lane(self, packer4):
        """``ones_mask``-based shifts move all lanes in lockstep — the
        algebra the packed add/mul/matvec repairs are built on."""
        values = [3, -9, 0, 14]
        residue = packer4.pack(values)
        bumped = residue + 5 * packer4.ones_mask
        assert packer4.unpack(bumped) == [v + 5 for v in values]

    def test_rebias_residue_is_mask_times_delta_mod_n(self, packer4):
        n = packer4.public_key.n
        assert packer4.rebias_residue(-3) == \
            (-3 * packer4.ones_mask) % n

    def test_unpack_with_explicit_lane_offset(self, packer4):
        """A non-canonical (smaller) offset decodes when declared; the
        canonical default would misread the same residue."""
        values = [1, -2, 3, -4]
        half = packer4.offset // 2
        residue = packer4.pack(values) - half * packer4.ones_mask
        got = packer4.unpack(residue, lane_offset=half)
        assert got == values


class TestPackedEngine:
    def test_encrypt_decrypt_round_trip(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=3, mag_bits=12)
        engine = PaillierEngine(pub, private_key=priv, seed=9)
        batches = [[1, -2, 3], [4000, 0, -4000], [-1, -1, -1]]
        cells = engine.encrypt_many_packed(batches, packer)
        assert engine.decrypt_many_packed(cells, packer) == batches

    def test_packed_matches_manual_pack(self, keypair):
        """encrypt_many_packed(values) == encrypt_many(pack(values))
        under the same rng — packing is an encoding, not a new cipher."""
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=10)
        engine = PaillierEngine(pub, private_key=priv, seed=9)
        batches = [[7, -8], [-512, 511]]
        packed = engine.encrypt_many_packed(
            batches, packer, rng=random.Random(5)
        )
        manual = engine.encrypt_many(
            [packer.pack(b) for b in batches], rng=random.Random(5)
        )
        assert [c.ciphertext for c in packed] == \
            [c.ciphertext for c in manual]

    def test_key_mismatch_rejected(self, keypair, keypair_256):
        pub, priv = keypair
        other_pub, _ = keypair_256
        packer = LanePacker(other_pub, lanes=2, mag_bits=8)
        engine = PaillierEngine(pub, private_key=priv, seed=1)
        with pytest.raises(KeyMismatchError):
            engine.encrypt_many_packed([[1, 2]], packer)

    def test_add_plain_many(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=2)
        cells = engine.encrypt_many([10, 20, 30])
        raw = engine.add_plain_many(
            [c.ciphertext for c in cells], [1, pub.n - 2, 3]
        )
        got = [priv.decrypt(EncryptedNumber(pub, r)) for r in raw]
        assert got == [11, 18, 33]  # n-2 acts as -2 mod n

    def test_add_plain_many_length_mismatch(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=2)
        with pytest.raises(CryptoError):
            engine.add_plain_many([1, 2], [1])

    def test_fc_matvec_packed_matches_reference(self, keypair):
        pub, priv = keypair
        lanes = 3
        in_dim, out_dim = 4, 2
        packer = LanePacker(pub, lanes=lanes, mag_bits=20)
        engine = PaillierEngine(pub, private_key=priv, seed=3)
        rng = random.Random(17)
        xs = np.array(
            [[rng.randrange(-50, 50) for _ in range(in_dim)]
             for _ in range(lanes)], dtype=np.int64,
        )
        weight = np.array(
            [[rng.randrange(-30, 30) for _ in range(in_dim)]
             for _ in range(out_dim)], dtype=np.int64,
        )
        bias = np.array([rng.randrange(-100, 100)
                         for _ in range(out_dim)], dtype=np.int64)
        cells = engine.encrypt_many_packed(xs.T.tolist(), packer)
        bias_cells = engine.encrypt_many_packed(
            np.tile(bias, (lanes, 1)).T.tolist(), packer
        )
        out = engine.fc_matvec_packed(
            [c.ciphertext for c in cells], weight,
            [c.ciphertext for c in bias_cells], packer,
        )
        wrapped = [EncryptedNumber(pub, c) for c in out]
        got = np.array(
            engine.decrypt_many_packed(wrapped, packer, count=lanes),
            dtype=object,
        ).T
        expect = xs @ weight.T + bias
        assert got.tolist() == expect.tolist()


class TestDispatchThreshold:
    def test_default_threshold(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=1)
        assert engine.dispatch_min_items == DEFAULT_DISPATCH_MIN_ITEMS

    def test_explicit_threshold(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=1, dispatch_min_items=7)
        assert engine.dispatch_min_items == 7

    def test_invalid_threshold_rejected(self, keypair):
        pub, _ = keypair
        with pytest.raises(CryptoError):
            PaillierEngine(pub, seed=1, dispatch_min_items=0)

    def test_force_parallel_overrides_threshold(self, keypair):
        """force_parallel exists so tests can exercise the process
        path on tiny batches; it must win over the break-even gate."""
        pub, _ = keypair
        engine = PaillierEngine(
            pub, seed=1, force_parallel=True, dispatch_min_items=99
        )
        assert engine.dispatch_min_items == 1

    def test_blinding_pool_accepts_threshold(self, keypair):
        pub, _ = keypair
        pool = BlindingPool(pub, random.Random(1), target_size=4,
                            dispatch_min_items=3)
        assert pool.dispatch_min_items == 3

    def test_small_batch_stays_serial_and_correct(self, keypair):
        """Below the threshold nothing dispatches to processes, and the
        results are still exact (the satellite's regression case)."""
        pub, priv = keypair
        engine = PaillierEngine(
            pub, private_key=priv, workers=2, seed=4,
            dispatch_min_items=1000,
        )
        try:
            values = list(range(48))
            cells = engine.encrypt_many(values)
            assert engine.decrypt_many(cells) == values
        finally:
            engine.close()


class TestWeightDedup:
    def test_dedup_hits_counted(self, keypair, rng):
        """An im2col-style column (same weight at many output rows)
        costs one pow; every further use is a dictionary hit."""
        pub, priv = keypair
        n_sq = pub.n_squared
        cells = [pub.encrypt(v, rng).ciphertext for v in (3, 4)]
        rows = [[7, -9], [7, -9], [7, -9], [7, -9]]
        stats = {"columns_table": 0, "columns_plain": 0,
                 "tables_built": 0, "table_pows": 0, "plain_pows": 0,
                 "dedup_hits": 0}
        _matvec_partial(cells, rows, n_sq, window_bits=4, stats=stats)
        # 2 columns x 1 distinct weight each = 2 pows; the other
        # 3 uses per column are dedup hits.
        assert stats["dedup_hits"] == 6
        assert stats["table_pows"] + stats["plain_pows"] == 2

    def test_dedup_preserves_results(self, keypair):
        """A weight matrix with heavy repetition decodes identically to
        the plain per-entry reference."""
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=6)
        rng = random.Random(8)
        x = np.array([rng.randrange(-20, 20) for _ in range(6)],
                     dtype=np.int64)
        weight = np.array(
            [[5, -5, 5, -5, 5, -5] for _ in range(4)], dtype=np.int64
        )
        bias = np.array([1, 2, 3, 4], dtype=np.int64)
        tensor = EncryptedTensor.encrypt(x, pub, engine=engine)
        out = tensor.affine(weight, bias, engine=engine)
        assert out.decrypt(priv).tolist() == \
            (weight @ x + bias).tolist()


class TestPackedEncryptedTensor:
    def test_encrypt_batch_round_trip(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=3, mag_bits=14)
        xs = np.array([[1, -2, 3, -4], [5, 6, -7, 8], [0, 0, 9, -9]],
                      dtype=np.int64)
        tensor = PackedEncryptedTensor.encrypt_batch(xs, packer)
        assert tensor.batch == 3
        assert tensor.shape == (4,)
        assert tensor.size == 4  # cells = positions, not samples
        assert tensor.decrypt(priv).tolist() == xs.tolist()

    def test_partial_batch(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=4, mag_bits=10)
        xs = np.array([[1, 2], [3, 4]], dtype=np.int64)  # 2 < 4 lanes
        tensor = PackedEncryptedTensor.encrypt_batch(xs, packer)
        assert tensor.decrypt(priv).tolist() == xs.tolist()

    def test_add(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=12)
        a = np.array([[10, -20], [30, -40]], dtype=np.int64)
        b = np.array([[1, 2], [-3, -4]], dtype=np.int64)
        ta = PackedEncryptedTensor.encrypt_batch(a, packer)
        tb = PackedEncryptedTensor.encrypt_batch(b, packer)
        assert ta.add(tb).decrypt(priv).tolist() == (a + b).tolist()

    def test_mul_plain_heterogeneous_weights(self, keypair):
        """Per-cell weights rebias back to the canonical offset even
        when every cell gets a different (negative) weight."""
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=14)
        a = np.array([[3, -5], [7, -9]], dtype=np.int64)
        w = np.array([4, -6], dtype=np.int64)
        tensor = PackedEncryptedTensor.encrypt_batch(a, packer)
        assert tensor.mul_plain(w).decrypt(priv).tolist() == \
            (a * w).tolist()

    def test_affine_plaintext_bias(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=18)
        xs = np.array([[2, -3, 4], [-5, 6, -7]], dtype=np.int64)
        weight = np.array([[1, -2, 3], [4, 5, -6]], dtype=np.int64)
        bias = np.array([10, -20], dtype=np.int64)
        tensor = PackedEncryptedTensor.encrypt_batch(xs, packer)
        out = tensor.affine(weight, bias)
        assert out.decrypt(priv).tolist() == \
            (xs @ weight.T + bias).tolist()

    def test_affine_encrypted_bias(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=18)
        xs = np.array([[2, -3], [4, -5]], dtype=np.int64)
        weight = np.array([[1, -2], [3, 4]], dtype=np.int64)
        bias = np.array([7, -11], dtype=np.int64)
        tensor = PackedEncryptedTensor.encrypt_batch(xs, packer)
        packed_bias = PackedEncryptedTensor.encrypt_batch(
            np.tile(bias, (2, 1)), packer
        )
        out = tensor.affine(weight, packed_bias)
        assert out.decrypt(priv).tolist() == \
            (xs @ weight.T + bias).tolist()

    def test_reshape_and_gather(self, keypair):
        pub, priv = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=10)
        xs = np.arange(8, dtype=np.int64).reshape(2, 4)
        tensor = PackedEncryptedTensor.encrypt_batch(xs, packer)
        square = tensor.reshape((2, 2))
        assert square.decrypt(priv).shape == (2, 2, 2)
        picked = tensor.gather([3, 0])
        assert picked.decrypt(priv).tolist() == \
            xs[:, [3, 0]].tolist()

    def test_concatenate_geometry_checked(self, keypair):
        pub, _ = keypair
        p2 = LanePacker(pub, lanes=2, mag_bits=10)
        p3 = LanePacker(pub, lanes=3, mag_bits=10)
        a = PackedEncryptedTensor.encrypt_batch(
            np.ones((2, 2), dtype=np.int64), p2)
        b = PackedEncryptedTensor.encrypt_batch(
            np.ones((3, 2), dtype=np.int64), p3)
        with pytest.raises(EncodingError):
            PackedEncryptedTensor.concatenate([a, b])

    def test_batch_bounds_validated(self, keypair):
        pub, _ = keypair
        packer = LanePacker(pub, lanes=2, mag_bits=10)
        with pytest.raises(EncodingError):
            PackedEncryptedTensor.encrypt_batch(
                np.ones((3, 2), dtype=np.int64), packer
            )
