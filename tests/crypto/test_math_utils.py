"""Unit tests for the number-theoretic building blocks."""

import math
import random

import pytest

from repro.crypto.math_utils import (
    crt_pair,
    generate_prime,
    invmod,
    is_probable_prime,
    keypair_primes,
    lcm,
    sample_coprime,
)
from repro.errors import CryptoError


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 7917, 100000):
            assert not is_probable_prime(n)

    def test_negative(self):
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2 ** 127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 3)


class TestGeneratePrime:
    def test_bit_length_exact(self):
        rng = random.Random(0)
        for bits in (16, 24, 48, 64):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_oddness(self):
        rng = random.Random(1)
        assert generate_prime(32, rng) % 2 == 1

    def test_too_small_raises(self):
        with pytest.raises(CryptoError):
            generate_prime(8, random.Random(0))

    def test_deterministic_given_rng(self):
        assert generate_prime(32, random.Random(7)) == \
            generate_prime(32, random.Random(7))


class TestInvmod:
    def test_basic(self):
        assert invmod(3, 7) == 5  # 3*5 = 15 = 1 mod 7

    def test_round_trip_random(self):
        rng = random.Random(2)
        m = 10 ** 9 + 7
        for _ in range(50):
            a = rng.randrange(1, m)
            assert (a * invmod(a, m)) % m == 1

    def test_non_invertible_raises(self):
        with pytest.raises(CryptoError):
            invmod(6, 9)


class TestLcm:
    def test_known(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91

    def test_consistent_with_gcd(self):
        rng = random.Random(3)
        for _ in range(30):
            a = rng.randrange(1, 10 ** 6)
            b = rng.randrange(1, 10 ** 6)
            assert lcm(a, b) * math.gcd(a, b) == a * b


class TestCrtPair:
    def test_recombination(self):
        rng = random.Random(4)
        p, q = 10007, 10009
        q_inv_p = invmod(q, p)
        for _ in range(50):
            x = rng.randrange(0, p * q)
            recovered = crt_pair(x % p, x % q, p, q, q_inv_p) % (p * q)
            assert recovered == x


class TestSampleCoprime:
    def test_always_coprime(self):
        rng = random.Random(5)
        n = 3 * 5 * 7 * 11 * 13
        for _ in range(100):
            r = sample_coprime(n, rng)
            assert math.gcd(r, n) == 1
            assert 1 <= r < n


class TestKeypairPrimes:
    def test_modulus_bit_length(self):
        rng = random.Random(6)
        p, q = keypair_primes(128, rng)
        assert (p * q).bit_length() == 128
        assert p != q

    def test_odd_key_size_rejected(self):
        with pytest.raises(CryptoError):
            keypair_primes(127, random.Random(0))
