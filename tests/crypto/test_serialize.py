"""Unit tests for key and tensor wire formats."""

import numpy as np
import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.serialize import (
    ciphertext_bytes,
    private_key_from_json,
    private_key_to_json,
    public_key_from_json,
    public_key_to_json,
    tensor_frame_bytes,
    tensor_from_bytes,
    tensor_to_bytes,
)
from repro.crypto.tensor import EncryptedTensor
from repro.errors import EncodingError, KeyMismatchError


class TestKeySerialization:
    def test_public_round_trip(self, keypair):
        pub, _ = keypair
        restored = public_key_from_json(public_key_to_json(pub))
        assert restored.n == pub.n
        assert restored.key_size == pub.key_size

    def test_private_round_trip(self, keypair, rng):
        pub, priv = keypair
        restored = private_key_from_json(private_key_to_json(priv))
        cipher = pub.encrypt(12345, rng)
        assert restored.decrypt(cipher) == 12345

    def test_kind_checked(self, keypair):
        pub, priv = keypair
        with pytest.raises(EncodingError):
            public_key_from_json(private_key_to_json(priv))
        with pytest.raises(EncodingError):
            private_key_from_json(public_key_to_json(pub))

    def test_malformed_json(self):
        with pytest.raises(EncodingError):
            public_key_from_json("not json")


class TestTensorSerialization:
    def test_round_trip(self, keypair, rng):
        pub, priv = keypair
        values = np.array([[1, -2, 3], [4, 5, -6]])
        tensor = EncryptedTensor.encrypt(values, pub, rng, exponent=2)
        blob = tensor_to_bytes(tensor)
        restored = tensor_from_bytes(blob, pub)
        assert restored.shape == (2, 3)
        assert restored.exponent == 2
        assert np.array_equal(restored.decrypt(priv), values)

    def test_wire_size_is_deterministic(self, keypair, rng):
        pub, _ = keypair
        tensor = EncryptedTensor.encrypt(np.arange(5), pub, rng)
        blob = tensor_to_bytes(tensor)
        header = 15 + 4  # fixed v2 header + one dim
        assert len(blob) == header + 5 * ciphertext_bytes(pub.key_size)
        assert len(blob) == tensor_frame_bytes(pub.key_size, rank=1,
                                               size=5)

    def test_v1_frame_still_parses(self, keypair, rng):
        pub, priv = keypair
        values = np.array([7, -8, 9])
        tensor = EncryptedTensor.encrypt(values, pub, rng)
        blob = tensor_to_bytes(tensor, version=1)
        assert blob[4] == 1
        assert len(blob) == tensor_frame_bytes(pub.key_size, rank=1,
                                               size=3, version=1)
        restored = tensor_from_bytes(blob, pub)
        assert np.array_equal(restored.decrypt(priv), values)

    def test_negative_exponent_not_produced_but_header_signed(
            self, keypair, rng):
        pub, _ = keypair
        tensor = EncryptedTensor.encrypt(np.arange(3), pub, rng,
                                         exponent=7)
        restored = tensor_from_bytes(tensor_to_bytes(tensor), pub)
        assert restored.exponent == 7

    def test_bad_magic(self, keypair, rng):
        pub, _ = keypair
        blob = tensor_to_bytes(
            EncryptedTensor.encrypt(np.arange(2), pub, rng)
        )
        with pytest.raises(EncodingError):
            tensor_from_bytes(b"XXXX" + blob[4:], pub)

    def test_truncated_body(self, keypair, rng):
        pub, _ = keypair
        blob = tensor_to_bytes(
            EncryptedTensor.encrypt(np.arange(2), pub, rng)
        )
        with pytest.raises(EncodingError):
            tensor_from_bytes(blob[:-3], pub)

    def test_trailing_bytes(self, keypair, rng):
        pub, _ = keypair
        blob = tensor_to_bytes(
            EncryptedTensor.encrypt(np.arange(2), pub, rng)
        )
        with pytest.raises(EncodingError):
            tensor_from_bytes(blob + b"\x00", pub)

    def test_key_size_mismatch(self, keypair, rng):
        pub, _ = keypair
        other_pub, _ = generate_keypair(256, seed=9)
        blob = tensor_to_bytes(
            EncryptedTensor.encrypt(np.arange(2), pub, rng)
        )
        with pytest.raises(KeyMismatchError):
            tensor_from_bytes(blob, other_pub)

    def test_short_blob(self, keypair):
        pub, _ = keypair
        with pytest.raises(EncodingError):
            tensor_from_bytes(b"PP", pub)

    def test_out_of_range_ciphertext_detected(self, keypair, rng):
        pub, _ = keypair
        tensor = EncryptedTensor.encrypt(np.arange(1), pub, rng)
        blob = bytearray(tensor_to_bytes(tensor))
        width = ciphertext_bytes(pub.key_size)
        # zero out the single ciphertext -> value 0, illegal
        blob[-width:] = b"\x00" * width
        with pytest.raises(EncodingError):
            tensor_from_bytes(bytes(blob), pub)
