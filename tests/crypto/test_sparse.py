"""Unit tests for the compression-aware engine path.

Covers the three pieces introduced by the compressed matvecs:

* :class:`SparseMatvecPlan` — the once-per-layer sparse column index;
* :class:`PowerCache` — the bounded cross-call LRU of fixed-base
  tables (including a soak hammer that asserts the bound holds);
* :meth:`PaillierEngine.fc_matvec` / ``conv_im2col`` — bit-identity
  with the dense engine path on surviving weights, zero-skip counters,
  and process-pool dispatch.
"""

import random

import numpy as np
import pytest

from repro.crypto.engine import (
    PaillierEngine,
    PowerCache,
    PowerTable,
)
from repro.crypto.sparse import SparseMatvecPlan
from repro.errors import CryptoError
from repro.observability import Observability


WEIGHTS = [
    [3, 0, -2, 0],
    [0, 0, -2, 5],
    [3, 0, 0, 0],
]


class TestSparseMatvecPlan:
    def test_from_dense_structure(self):
        plan = SparseMatvecPlan.from_dense(WEIGHTS)
        assert (plan.out_dim, plan.in_dim) == (3, 4)
        # Column 1 is all zero and must not appear at all.
        assert [i for i, _ in plan.columns] == [0, 2, 3]
        as_dict = dict(plan.columns)
        assert as_dict[0] == ((3, (0, 2)),)
        assert as_dict[2] == ((-2, (0, 1)),)
        assert as_dict[3] == ((5, (1,)),)
        assert plan.nnz == 5
        assert plan.total == 12
        assert plan.distinct_values == 3
        assert plan.distinct_pairs == 3
        assert plan.row_weight_sums == (1, 3, 3)
        assert plan.max_weight_bits == 3

    def test_groups_sorted_ascending_by_weight(self):
        plan = SparseMatvecPlan.from_dense([[7], [-7], [2]])
        ((_, groups),) = plan.columns
        assert [w for w, _ in groups] == [-7, 2, 7]

    def test_density_and_distinct_per_column(self):
        plan = SparseMatvecPlan.from_dense(WEIGHTS)
        assert plan.density == pytest.approx(5 / 12)
        assert plan.sparsity == pytest.approx(7 / 12)
        assert plan.distinct_per_column == pytest.approx(1.0)

    def test_compression_stats_export(self):
        stats = SparseMatvecPlan.from_dense(WEIGHTS).compression_stats()
        assert stats.density == pytest.approx(5 / 12)
        assert stats.clusters == 3
        assert stats.distinct_per_column == pytest.approx(1.0)

    def test_equality_and_hash_are_structural(self):
        a = SparseMatvecPlan.from_dense(WEIGHTS)
        b = SparseMatvecPlan.from_dense(np.array(WEIGHTS))
        c = SparseMatvecPlan.from_dense([[1, 0], [0, 1]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_object_dtype_matrix(self):
        big = 10 ** 30
        plan = SparseMatvecPlan.from_dense(
            np.array([[big, 0], [0, -big]], dtype=object))
        assert plan.distinct_values == 2
        assert plan.max_weight_bits == big.bit_length()

    def test_zero_weight_group_rejected(self):
        with pytest.raises(CryptoError):
            SparseMatvecPlan(1, 1, [(0, ((0, (0,)),))], [0])

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(CryptoError):
            SparseMatvecPlan(1, 1, [(1, ((2, (0,)),))], [2])
        with pytest.raises(CryptoError):
            SparseMatvecPlan(1, 1, [(0, ((2, (1,)),))], [2])

    def test_row_sums_length_checked(self):
        with pytest.raises(CryptoError):
            SparseMatvecPlan(1, 2, [], [0])

    def test_non_2d_rejected(self):
        with pytest.raises(CryptoError):
            SparseMatvecPlan.from_dense([1, 2, 3])


class TestPowerCache:
    MOD = 97 * 101

    def table(self, base):
        return PowerTable(base, self.MOD, max_bits=8, window_bits=2)

    def test_put_peek_roundtrip(self):
        cache = PowerCache(max_entries=4)
        table = self.table(5)
        cache.put(5, table)
        assert cache.peek(5) is table
        assert (cache.hits, cache.misses) == (1, 0)
        assert cache.peek(6) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = PowerCache(max_entries=2)
        cache.put(1, self.table(2))
        cache.put(2, self.table(3))
        assert cache.peek(1) is not None  # refresh 1; 2 is now LRU
        cache.put(3, self.table(5))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.peek(2) is None
        assert cache.peek(1) is not None
        assert cache.peek(3) is not None

    def test_bound_enforced(self):
        cache = PowerCache(max_entries=3)
        for key in range(50):
            cache.put(key, self.table(key % 7 + 2))
            assert len(cache) <= 3
        assert cache.evictions == 47

    def test_reset_clears_and_zeroes_gauge(self):
        obs = Observability()
        gauge = obs.registry.gauge("paillier_power_cache_entries")
        cache = PowerCache(max_entries=4, gauge=gauge)
        for key in range(4):
            cache.put(key, self.table(key + 2))
        assert gauge.value == 4
        cache.reset()
        assert len(cache) == 0
        assert gauge.value == 0

    def test_bad_bound_rejected(self):
        with pytest.raises(CryptoError):
            PowerCache(max_entries=0)


def encrypt_cells(engine, values, seed=7):
    return engine.raw_encrypt_many(values, rng=random.Random(seed))


class TestCompressedMatvec:
    """fc_matvec / conv_im2col == matvec, bit for bit."""

    def setup_engine(self, keypair, **kwargs):
        pub, priv = keypair
        return PaillierEngine(pub, private_key=priv, seed=3, **kwargs)

    def test_fc_matvec_bit_identical_to_dense(self, keypair):
        engine = self.setup_engine(keypair)
        cells = encrypt_cells(engine, [11, 22, 33, 44])
        bias = encrypt_cells(engine, [1, 2, 3], seed=9)
        dense = engine.matvec(cells, WEIGHTS, bias)
        compressed = engine.fc_matvec(cells, WEIGHTS, bias)
        assert compressed == dense

    def test_conv_im2col_bit_identical_to_dense(self, keypair):
        engine = self.setup_engine(keypair)
        rng = np.random.default_rng(0)
        weights = rng.integers(-4, 5, size=(6, 9))
        weights[rng.random(weights.shape) < 0.6] = 0
        cells = encrypt_cells(engine, list(range(1, 10)))
        bias = encrypt_cells(engine, [5] * 6, seed=11)
        assert engine.conv_im2col(cells, weights, bias) \
            == engine.matvec(cells, weights, bias)

    def test_prebuilt_plan_matches_on_the_fly(self, keypair):
        engine = self.setup_engine(keypair)
        cells = encrypt_cells(engine, [7, 8, 9, 10])
        bias = encrypt_cells(engine, [0, 0, 0], seed=13)
        plan = SparseMatvecPlan.from_dense(WEIGHTS)
        assert engine.fc_matvec(cells, plan=plan, bias=bias) \
            == engine.fc_matvec(cells, WEIGHTS, bias)

    def test_decrypts_to_plaintext_math(self, keypair):
        engine = self.setup_engine(keypair)
        x = [11, 22, 33, 44]
        b = [1, 2, 3]
        cells = encrypt_cells(engine, x)
        bias = encrypt_cells(engine, b, seed=9)
        out = engine.fc_matvec(cells, WEIGHTS, bias)
        n = engine.public_key.n
        expected = [
            (sum(w * v for w, v in zip(row, x)) + bi) % n
            for row, bi in zip(WEIGHTS, b)
        ]
        assert engine.raw_decrypt_many(out) == expected

    def test_missing_weights_and_plan_rejected(self, keypair):
        engine = self.setup_engine(keypair)
        with pytest.raises(CryptoError):
            engine.fc_matvec([1, 2], bias=[1])

    def test_dimension_mismatches_rejected(self, keypair):
        engine = self.setup_engine(keypair)
        plan = SparseMatvecPlan.from_dense(WEIGHTS)
        cells = encrypt_cells(engine, [1, 2, 3, 4])
        with pytest.raises(CryptoError):
            engine.fc_matvec(cells[:2], plan=plan, bias=[1, 1, 1])
        with pytest.raises(CryptoError):
            engine.fc_matvec(cells, plan=plan, bias=[1])

    def test_zero_skip_counter(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=3,
                                obs=Observability())
        cells = encrypt_cells(engine, [1, 2, 3, 4])
        bias = encrypt_cells(engine, [0, 0, 0], seed=5)
        engine.fc_matvec(cells, WEIGHTS, bias)
        registry = engine.obs.registry
        skipped = registry.counter("paillier_compress_zero_skipped")
        assert skipped.value == 12 - 5
        ops = registry.counter("paillier_compress_ops", op="fc_matvec")
        assert ops.value == 1

    def test_pool_dispatch_bit_identical(self, keypair):
        sequential = self.setup_engine(keypair)
        pooled = self.setup_engine(keypair, workers=2,
                                   force_parallel=True)
        try:
            rng = np.random.default_rng(1)
            weights = rng.integers(-3, 4, size=(8, 8))
            weights[rng.random(weights.shape) < 0.5] = 0
            cells = encrypt_cells(sequential, list(range(8)))
            bias = encrypt_cells(sequential, [9] * 8, seed=21)
            assert pooled.fc_matvec(cells, weights, bias) \
                == sequential.fc_matvec(cells, weights, bias)
        finally:
            pooled.close()

    def test_all_zero_matrix_returns_bias(self, keypair):
        engine = self.setup_engine(keypair)
        cells = encrypt_cells(engine, [1, 2])
        bias = encrypt_cells(engine, [4, 5, 6], seed=2)
        out = engine.fc_matvec(cells, [[0, 0]] * 3, bias)
        assert engine.raw_decrypt_many(out) == [4, 5, 6]


class TestEnginePowerCache:
    def test_cache_bound_holds_under_hammer(self, keypair):
        """Soak hammer: thousands of distinct ciphertexts through the
        compressed path must never grow the cache past its bound."""
        pub, priv = keypair
        engine = PaillierEngine(
            pub, private_key=priv, seed=3, power_cache_entries=8,
            obs=Observability(),
        )
        # 20-bit clustered weights, sixteen clusters per column: big
        # exponents with enough *intra-call* per-column reuse that the
        # break-even favors building (and caching) fixed-base tables
        # over the shared squaring chain.
        heavy = 1 << 20
        col = [heavy - k for k in range(1, 32, 2)]
        weights = [[w, 0] for w in col] + [[0, w] for w in col]
        plan = SparseMatvecPlan.from_dense(weights)
        rng = random.Random(99)
        for round_number in range(30):
            cells = engine.raw_encrypt_many(
                [rng.randrange(pub.n), rng.randrange(pub.n)])
            engine.fc_matvec(cells, plan=plan, bias=[1] * 32)
            assert len(engine.power_cache) <= 8
        assert engine.power_cache.evictions > 0
        gauge = engine.obs.registry.gauge("paillier_power_cache_entries")
        assert gauge.value == len(engine.power_cache)
        engine.reset_power_cache()
        assert len(engine.power_cache) == 0
        assert gauge.value == 0

    def test_repeat_calls_hit_the_cache(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=3)
        heavy = 1 << 20
        col = [heavy - k for k in range(1, 32, 2)]
        weights = [[w, 0] for w in col] + [[0, w] for w in col]
        cells = encrypt_cells(engine, [5, 6])
        bias = encrypt_cells(engine, [0] * 32, seed=4)
        first = engine.fc_matvec(cells, weights, bias)
        hits_before = engine.power_cache.hits
        second = engine.fc_matvec(cells, weights, bias)
        assert second == first
        assert engine.power_cache.hits > hits_before

    def test_default_engine_uses_config_knobs(self, keypair):
        from repro.config import DEFAULT_CONFIG
        from repro.crypto.engine import default_engine

        engine = default_engine(keypair[0])
        assert engine.power_cache.max_entries \
            == DEFAULT_CONFIG.power_cache_entries
