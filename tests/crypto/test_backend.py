"""Unit tests for the pluggable bigint backend seam.

The contract: every backend returns plain Python ``int`` residues that
are bit-identical to CPython's built-in ``pow``/``%`` arithmetic —
switching backends may only change speed, never a ciphertext.  The
gmpy2 leg runs wherever gmpy2 is importable and is skipped (not
failed) elsewhere, so one test file serves both CI matrix legs.
"""

import pytest

from repro.config import RuntimeConfig
from repro.crypto.backend import (
    HAVE_GMPY2,
    BigintBackend,
    PythonBackend,
    active_backend,
    available_backends,
    resolve_backend,
    set_active_backend,
)
from repro.errors import ConfigurationError, CryptoError


class TestResolve:
    def test_python_always_available(self):
        assert "python" in available_backends()
        backend = resolve_backend("python")
        assert isinstance(backend, PythonBackend)
        assert backend.name == "python"

    def test_auto_resolves_to_an_available_backend(self):
        backend = resolve_backend("auto")
        assert backend.name in available_backends()
        if HAVE_GMPY2:
            assert backend.name == "gmpy2"
        else:
            assert backend.name == "python"

    def test_instance_passes_through(self):
        backend = resolve_backend("python")
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("openssl")

    def test_explicit_gmpy2_errors_when_missing(self):
        if HAVE_GMPY2:
            assert resolve_backend("gmpy2").name == "gmpy2"
        else:
            with pytest.raises(ConfigurationError):
                resolve_backend("gmpy2")

    def test_resolution_is_cached_per_name(self):
        assert resolve_backend("python") is resolve_backend("python")

    def test_active_backend_roundtrip(self):
        before = active_backend()
        try:
            assert set_active_backend("python").name == "python"
            assert active_backend().name == "python"
        finally:
            set_active_backend(before)
        assert active_backend() is before


class TestPrimitives:
    MOD = 1000003 * 1000033  # composite, like n^2

    @pytest.fixture(params=available_backends())
    def backend(self, request) -> BigintBackend:
        return resolve_backend(request.param)

    def test_powmod_matches_builtin(self, backend):
        for base, exp in [(2, 10), (12345, 678), (self.MOD - 1, 3)]:
            got = backend.powmod(base, exp, self.MOD)
            assert got == pow(base, exp, self.MOD)
            assert type(got) is int

    def test_powmod_negative_exponent(self, backend):
        got = backend.powmod(12345, -1, self.MOD)
        assert got == pow(12345, -1, self.MOD)

    def test_invert_matches_builtin(self, backend):
        got = backend.invert(98765, self.MOD)
        assert got == pow(98765, -1, self.MOD)
        assert got * 98765 % self.MOD == 1

    def test_invert_raises_crypto_error(self, backend):
        with pytest.raises(CryptoError):
            backend.invert(1000003, self.MOD)  # shares a factor

    def test_powmod_noninvertible_raises_crypto_error(self, backend):
        with pytest.raises(CryptoError):
            backend.powmod(1000003, -1, self.MOD)

    def test_mulmod_matches_builtin(self, backend):
        a, b = 2 ** 130 + 7, 2 ** 129 + 11
        assert backend.mulmod(a, b, self.MOD) == a * b % self.MOD

    def test_wrap_behaves_like_int(self, backend):
        wrapped = backend.wrap(self.MOD)
        assert int(123456789 * 987654321 % wrapped) \
            == 123456789 * 987654321 % self.MOD

    @pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
    def test_gmpy2_bit_identical_to_python(self):
        py = resolve_backend("python")
        gm = resolve_backend("gmpy2")
        for base in (3, 2 ** 64 + 1, self.MOD - 2):
            assert gm.powmod(base, 65537, self.MOD) \
                == py.powmod(base, 65537, self.MOD)
            assert gm.invert(base, self.MOD) \
                == py.invert(base, self.MOD)
            assert gm.mulmod(base, base + 1, self.MOD) \
                == py.mulmod(base, base + 1, self.MOD)


class TestConfigKnob:
    def test_default_is_auto(self):
        assert RuntimeConfig().bigint_backend == "auto"

    def test_with_bigint_backend(self):
        config = RuntimeConfig().with_bigint_backend("python")
        assert config.bigint_backend == "python"

    def test_bad_backend_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(bigint_backend="openssl")

    def test_power_cache_entries_validated(self):
        assert RuntimeConfig().power_cache_entries >= 1
        with pytest.raises(ConfigurationError):
            RuntimeConfig(power_cache_entries=0)
