"""Wire-format tests for lane-packed tensor frames (serialize v2),
including a malformed-frame fuzz sweep."""

import random
import struct

import numpy as np
import pytest

from repro.crypto.encoding import LanePacker
from repro.crypto.paillier import generate_keypair
from repro.crypto.serialize import (
    KIND_PACKED,
    KIND_SCALAR,
    any_tensor_from_bytes,
    any_tensor_to_bytes,
    frame_kind,
    packed_tensor_from_bytes,
    packed_tensor_to_bytes,
    tensor_frame_bytes,
    tensor_from_bytes,
    tensor_to_bytes,
)
from repro.crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from repro.errors import EncodingError, KeyMismatchError


@pytest.fixture()
def packed_tensor(keypair, rng):
    pub, _ = keypair
    packer = LanePacker(pub, lanes=4, mag_bits=16)
    values = np.array([[1, -2, 3], [40, 5, -6]])  # batch 2, 3 positions
    return PackedEncryptedTensor.encrypt_batch(values, packer, rng,
                                               exponent=1), values


class TestPackedRoundTrip:
    def test_round_trip_preserves_geometry_and_values(
            self, keypair, packed_tensor):
        pub, priv = keypair
        tensor, values = packed_tensor
        blob = packed_tensor_to_bytes(tensor)
        assert frame_kind(blob) == KIND_PACKED
        restored = packed_tensor_from_bytes(blob, pub)
        assert restored.batch == 2
        assert restored.shape == (3,)
        assert restored.exponent == 1
        assert restored.packer.lanes == 4
        assert restored.packer.mag_bits == 16
        assert restored.packer.guard_bits == tensor.packer.guard_bits
        assert np.array_equal(restored.decrypt(priv), values)

    def test_frame_size_matches_analytic(self, keypair, packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = packed_tensor_to_bytes(tensor)
        assert len(blob) == tensor_frame_bytes(
            pub.key_size, rank=1, size=tensor.size, packed=True
        )
        # The lane-geometry extension costs exactly 8 bytes over the
        # scalar v2 frame.
        assert len(blob) == tensor_frame_bytes(
            pub.key_size, rank=1, size=tensor.size
        ) + 8

    def test_any_dispatch_both_kinds(self, keypair, rng,
                                     packed_tensor):
        pub, priv = keypair
        packed, values = packed_tensor
        scalar = EncryptedTensor.encrypt(np.arange(4), pub, rng)
        restored_scalar = any_tensor_from_bytes(
            any_tensor_to_bytes(scalar), pub
        )
        assert isinstance(restored_scalar, EncryptedTensor)
        assert np.array_equal(restored_scalar.decrypt(priv),
                              np.arange(4))
        restored_packed = any_tensor_from_bytes(
            any_tensor_to_bytes(packed), pub
        )
        assert isinstance(restored_packed, PackedEncryptedTensor)
        assert np.array_equal(restored_packed.decrypt(priv), values)

    def test_scalar_parser_rejects_packed_frame(self, keypair,
                                                packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        with pytest.raises(EncodingError):
            tensor_from_bytes(packed_tensor_to_bytes(tensor), pub)

    def test_packed_parser_rejects_scalar_frame(self, keypair, rng):
        pub, _ = keypair
        blob = tensor_to_bytes(
            EncryptedTensor.encrypt(np.arange(2), pub, rng)
        )
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(blob, pub)

    def test_v1_frames_cannot_be_packed(self, keypair):
        pub, _ = keypair
        with pytest.raises(EncodingError):
            tensor_frame_bytes(pub.key_size, rank=1, size=2,
                               packed=True, version=1)


class TestMalformedPackedFrames:
    def test_key_mismatch(self, keypair, packed_tensor):
        _, _ = keypair
        tensor, _ = packed_tensor
        other_pub, _ = generate_keypair(256, seed=9)
        with pytest.raises(KeyMismatchError):
            packed_tensor_from_bytes(packed_tensor_to_bytes(tensor),
                                     other_pub)

    def test_batch_out_of_range(self, keypair, packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = bytearray(packed_tensor_to_bytes(tensor))
        # The lane-geometry extension sits right after the 15-byte v2
        # header: lanes, mag_bits, guard_bits, batch (>H each).
        struct.pack_into(">H", blob, 15 + 6, 9)  # batch 9 > 4 lanes
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(bytes(blob), pub)

    def test_zero_batch_rejected(self, keypair, packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = bytearray(packed_tensor_to_bytes(tensor))
        struct.pack_into(">H", blob, 15 + 6, 0)
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(bytes(blob), pub)

    def test_geometry_too_big_for_key_rejected(self, keypair,
                                               packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = bytearray(packed_tensor_to_bytes(tensor))
        # 1000 lanes cannot fit a 128-bit modulus: the rebuilt packer's
        # own capacity check must reject the frame.
        struct.pack_into(">H", blob, 15, 1000)
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(bytes(blob), pub)

    def test_truncated_lane_header(self, keypair, packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = packed_tensor_to_bytes(tensor)
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(blob[:18], pub)

    def test_truncated_and_trailing_bodies(self, keypair,
                                           packed_tensor):
        pub, _ = keypair
        tensor, _ = packed_tensor
        blob = packed_tensor_to_bytes(tensor)
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(blob[:-1], pub)
        with pytest.raises(EncodingError):
            packed_tensor_from_bytes(blob + b"\x00", pub)

    def test_fuzz_corruption_never_garbage(self, keypair,
                                           packed_tensor):
        """Random byte flips / truncations either raise EncodingError /
        KeyMismatchError or still parse to a well-formed tensor object
        — never any other exception."""
        pub, _ = keypair
        tensor, _ = packed_tensor
        base = packed_tensor_to_bytes(tensor)
        fuzz_rng = random.Random(20260806)
        for _ in range(300):
            blob = bytearray(base)
            if fuzz_rng.randrange(2):
                blob[fuzz_rng.randrange(len(blob))] ^= \
                    1 << fuzz_rng.randrange(8)
            else:
                blob = blob[:fuzz_rng.randrange(len(blob))]
            try:
                restored = any_tensor_from_bytes(bytes(blob), pub)
            except (EncodingError, KeyMismatchError):
                continue
            assert isinstance(restored,
                              (EncryptedTensor, PackedEncryptedTensor))
            assert restored.size == int(np.prod(restored.shape))


class TestKindConstants:
    def test_kind_bytes_are_stable(self):
        # Wire constants: changing these breaks deployed peers.
        assert KIND_SCALAR == 0
        assert KIND_PACKED == 1
