"""Unit tests for encrypted tensors."""

import numpy as np
import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.tensor import EncryptedTensor
from repro.errors import EncodingError, KeyMismatchError


def encrypt(values, keypair, rng, exponent=0):
    return EncryptedTensor.encrypt(np.asarray(values), keypair[0], rng,
                                   exponent)


class TestRoundTrip:
    def test_2d_signed(self, keypair, rng):
        values = np.array([[1, -2], [3, -4]])
        tensor = encrypt(values, keypair, rng)
        assert np.array_equal(tensor.decrypt(keypair[1]), values)

    def test_3d_shape_preserved(self, keypair, rng):
        values = np.arange(8).reshape(2, 2, 2)
        tensor = encrypt(values, keypair, rng)
        assert tensor.shape == (2, 2, 2)
        assert np.array_equal(tensor.decrypt(keypair[1]), values)

    def test_decrypt_float_rescales(self, keypair, rng):
        tensor = encrypt([150, -25], keypair, rng, exponent=2)
        result = tensor.decrypt_float(keypair[1])
        assert result == pytest.approx([1.5, -0.25])

    def test_float_input_rejected(self, keypair, rng):
        with pytest.raises(EncodingError):
            encrypt(np.array([1.5, 2.5]), keypair, rng)

    def test_shape_cell_mismatch(self, keypair, rng):
        tensor = encrypt([1, 2, 3], keypair, rng)
        with pytest.raises(EncodingError):
            EncryptedTensor(keypair[0], tensor.cells(), (2, 2))


class TestShapeOps:
    def test_reshape_and_flatten(self, keypair, rng):
        tensor = encrypt(np.arange(6).reshape(2, 3), keypair, rng)
        reshaped = tensor.reshape((3, 2))
        assert reshaped.shape == (3, 2)
        flat = tensor.flatten()
        assert flat.shape == (6,)
        assert np.array_equal(flat.decrypt(keypair[1]), np.arange(6))

    def test_gather(self, keypair, rng):
        tensor = encrypt([10, 20, 30, 40], keypair, rng)
        sub = tensor.gather([3, 0])
        assert np.array_equal(sub.decrypt(keypair[1]), [40, 10])

    def test_concatenate(self, keypair, rng):
        a = encrypt([1, 2], keypair, rng, exponent=1)
        b = encrypt([3], keypair, rng, exponent=1)
        joined = EncryptedTensor.concatenate([a, b])
        assert np.array_equal(joined.decrypt(keypair[1]), [1, 2, 3])
        assert joined.exponent == 1

    def test_concatenate_exponent_mismatch(self, keypair, rng):
        a = encrypt([1], keypair, rng, exponent=1)
        b = encrypt([2], keypair, rng, exponent=2)
        with pytest.raises(EncodingError):
            EncryptedTensor.concatenate([a, b])

    def test_concatenate_empty(self):
        with pytest.raises(EncodingError):
            EncryptedTensor.concatenate([])


class TestArithmetic:
    def test_elementwise_add(self, keypair, rng):
        a = encrypt([[1, 2], [3, 4]], keypair, rng)
        b = encrypt([[10, -20], [30, -40]], keypair, rng)
        result = a.add(b).decrypt(keypair[1])
        assert np.array_equal(result, [[11, -18], [33, -36]])

    def test_add_shape_mismatch(self, keypair, rng):
        a = encrypt([1, 2], keypair, rng)
        b = encrypt([1, 2, 3], keypair, rng)
        with pytest.raises(EncodingError):
            a.add(b)

    def test_add_key_mismatch(self, keypair, rng):
        other = generate_keypair(128, seed=55)
        a = encrypt([1], keypair, rng)
        b = EncryptedTensor.encrypt(np.array([1]), other[0], rng)
        with pytest.raises(KeyMismatchError):
            a.add(b)

    def test_add_plain(self, keypair, rng):
        a = encrypt([5, -5], keypair, rng)
        result = a.add_plain(np.array([1, 2]), rng).decrypt(keypair[1])
        assert np.array_equal(result, [6, -3])

    def test_mul_plain(self, keypair, rng):
        a = encrypt([2, -3, 4], keypair, rng)
        result = a.mul_plain(np.array([5, 6, 0])).decrypt(keypair[1])
        assert np.array_equal(result, [10, -18, 0])

    def test_mul_plain_size_mismatch(self, keypair, rng):
        a = encrypt([1, 2], keypair, rng)
        with pytest.raises(EncodingError):
            a.mul_plain(np.array([1, 2, 3]))


class TestAffine:
    def test_matches_plaintext(self, keypair, rng):
        x = np.array([2, -1, 3])
        weights = np.array([[1, 0, 2], [0, -4, 1]])
        bias = np.array([5, -6])
        tensor = encrypt(x, keypair, rng)
        result = tensor.affine(weights, bias, rng).decrypt(keypair[1])
        expected = weights @ x + bias
        assert np.array_equal(result.astype(np.int64), expected)

    def test_exponent_accumulation(self, keypair, rng):
        tensor = encrypt([10], keypair, rng, exponent=1)
        out = tensor.affine(np.array([[3]]), np.array([0]), rng,
                            weight_exponent=2)
        assert out.exponent == 3

    def test_weight_shape_validation(self, keypair, rng):
        tensor = encrypt([1, 2], keypair, rng)
        with pytest.raises(EncodingError):
            tensor.affine(np.array([[1, 2, 3]]), np.array([0]), rng)

    def test_bias_shape_validation(self, keypair, rng):
        tensor = encrypt([1, 2], keypair, rng)
        with pytest.raises(EncodingError):
            tensor.affine(np.array([[1, 2]]), np.array([0, 1]), rng)

    def test_random_affine_vs_numpy(self, keypair_256, rng, np_rng):
        pub, priv = keypair_256
        x = np_rng.integers(-100, 100, size=6)
        weights = np_rng.integers(-50, 50, size=(4, 6))
        bias = np_rng.integers(-1000, 1000, size=4)
        tensor = EncryptedTensor.encrypt(x, pub, rng)
        result = tensor.affine(weights, bias, rng).decrypt(priv)
        assert np.array_equal(
            result.astype(np.int64), weights @ x + bias
        )
