"""Unit tests for the batched Paillier engine.

The engine's contract is exact agreement with the scalar reference
implementation: same seed, same ciphertext bits — across the blinding
pool, CRT acceleration, the process pool, and the windowed matvec.
"""

import os
import random
import time

import numpy as np
import pytest

from repro.crypto.engine import (
    BlindingPool,
    PaillierEngine,
    PowerTable,
    default_engine,
)
from repro.crypto.paillier import encrypt_many, generate_keypair
from repro.crypto.tensor import EncryptedTensor
from repro.errors import CryptoError, EncryptionError, KeyMismatchError


def scalar_encrypt(public, values, seed):
    """The scalar reference: one rng, one encrypt per value, in order."""
    rng = random.Random(seed)
    return [public.encrypt(m, rng).ciphertext for m in values]


class TestEncryptMany:
    def test_rng_mode_bit_identical_to_scalar(self, keypair):
        pub, _ = keypair
        values = [0, 1, 42, 10 ** 9, pub.n - 1]
        engine = PaillierEngine(pub)
        got = [c.ciphertext
               for c in engine.encrypt_many(values, rng=random.Random(7))]
        assert got == scalar_encrypt(pub, values, 7)

    def test_pooled_mode_bit_identical_to_scalar_seed(self, keypair):
        """The pool draws r values in the same order the scalar path
        would, so pooled ciphertexts match the scalar reference."""
        pub, _ = keypair
        values = list(range(10))
        engine = PaillierEngine(pub, seed=5, pool_size=4)
        got = [c.ciphertext for c in engine.encrypt_many(values)]
        assert got == scalar_encrypt(pub, values, 5)

    def test_pooled_mode_deterministic_per_seed(self, keypair):
        pub, _ = keypair
        a = PaillierEngine(pub, seed=11).encrypt_many([1, 2, 3])
        b = PaillierEngine(pub, seed=11).encrypt_many([1, 2, 3])
        c = PaillierEngine(pub, seed=12).encrypt_many([1, 2, 3])
        assert [x.ciphertext for x in a] == [x.ciphertext for x in b]
        assert [x.ciphertext for x in a] != [x.ciphertext for x in c]

    def test_out_of_range_plaintext(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=1)
        with pytest.raises(EncryptionError):
            engine.encrypt_many([pub.n])
        with pytest.raises(EncryptionError):
            engine.encrypt_many([-1])

    def test_empty_batch(self, keypair):
        pub, _ = keypair
        assert PaillierEngine(pub, seed=1).encrypt_many([]) == []

    def test_module_encrypt_many_routes_through_engine(self, keypair):
        """Satellite: the legacy encrypt_many API keeps its exact
        output while running on the batched engine."""
        pub, priv = keypair
        values = [5, 9, 2, 1]
        got = encrypt_many(pub, values, random.Random(3))
        assert [c.ciphertext for c in got] == scalar_encrypt(pub, values, 3)
        # rng is now optional: pooled mode still decrypts correctly
        pooled = encrypt_many(pub, values)
        assert [priv.decrypt(c) for c in pooled] == values


class TestCrtAcceleration:
    def test_crt_blinding_bit_identical(self, keypair):
        """The key holder's CRT pool produces the exact same factors
        as the public-key pow path."""
        pub, priv = keypair
        plain = PaillierEngine(pub, seed=5).encrypt_many(range(8))
        crt = PaillierEngine(pub, private_key=priv, seed=5) \
            .encrypt_many(range(8))
        assert [c.ciphertext for c in plain] == \
            [c.ciphertext for c in crt]

    def test_mismatched_private_key_rejected(self, keypair):
        pub, _ = keypair
        _, other_priv = generate_keypair(128, seed=99)
        with pytest.raises(KeyMismatchError):
            PaillierEngine(pub, private_key=other_priv)


class TestDecryptMany:
    def test_matches_scalar_decrypt(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=2)
        ciphers = engine.encrypt_many(range(12))
        assert engine.decrypt_many(ciphers) == list(range(12))

    def test_requires_private_key(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=2)
        ciphers = engine.encrypt_many([1])
        with pytest.raises(CryptoError):
            engine.decrypt_many(ciphers)

    def test_wrong_key_rejected(self, keypair):
        pub, priv = keypair
        other_pub, _ = generate_keypair(128, seed=77)
        engine = PaillierEngine(pub, private_key=priv, seed=2)
        foreign = PaillierEngine(other_pub, seed=2).encrypt_many([1])
        with pytest.raises(KeyMismatchError):
            engine.decrypt_many(foreign)


class TestBlindingPool:
    def test_exhaustion_refills_in_rng_order(self, keypair):
        """Draining past the pool size refills from the same rng
        stream: a tiny pool and a large pool yield identical factor
        sequences for the same seed."""
        pub, _ = keypair
        small = BlindingPool(pub, random.Random(4), target_size=3)
        large = BlindingPool(pub, random.Random(4), target_size=64)
        assert [small.draw() for _ in range(11)] == \
            [large.draw() for _ in range(11)]

    def test_draw_many_tops_up(self, keypair):
        pub, _ = keypair
        pool = BlindingPool(pub, random.Random(4), target_size=2)
        factors = pool.draw_many(9)
        assert len(factors) == 9
        assert len(set(factors)) == 9

    def test_prefill_then_online_draws_are_pops(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=6, pool_size=8)
        engine.prefill()
        assert len(engine.pool) == 8
        engine.encrypt_many([1, 2, 3])
        assert len(engine.pool) == 5

    def test_background_producer_refills(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=6, pool_size=16)
        engine.start_background_refill()
        try:
            deadline = 50
            while len(engine.pool) < 16 and deadline:
                time.sleep(0.02)
                deadline -= 1
            assert len(engine.pool) == 16
            # producer values are the same rng stream as sync refill
            reference = PaillierEngine(pub, seed=6, pool_size=16)
            reference.prefill()
            assert list(engine.pool._factors)[:16] == \
                list(reference.pool._factors)[:16]
        finally:
            engine.close()


class TestPowerTable:
    def test_matches_builtin_pow(self, keypair):
        pub, _ = keypair
        rng = random.Random(8)
        modulus = pub.n_squared
        base = rng.randrange(2, modulus)
        table = PowerTable(base, modulus, max_bits=16)
        for exponent in (0, 1, 2, 7, 255, 256, 65535):
            assert table.pow(exponent) == pow(base, exponent, modulus)

    def test_lazy_extension_past_max_bits(self, keypair):
        pub, _ = keypair
        modulus = pub.n_squared
        table = PowerTable(12345, modulus, max_bits=4)
        big = 10 ** 9 + 7
        assert table.pow(big) == pow(12345, big, modulus)

    def test_negative_exponent_rejected(self, keypair):
        pub, _ = keypair
        with pytest.raises(CryptoError):
            PowerTable(3, pub.n_squared, 8).pow(-1)


class TestMatvec:
    def test_bit_identical_to_scalar_affine(self, keypair):
        pub, priv = keypair
        rng = random.Random(9)
        x = np.array([3, -4, 5, 0, 7, 2], dtype=np.int64)
        weight = np.array(
            [[rng.randrange(-10 ** 6, 10 ** 6) for _ in range(6)]
             for _ in range(5)],
            dtype=np.int64,
        )
        weight[0, 2] = 0
        weight[3] = 0  # an all-zero row: output is just the bias
        bias = np.array([1, -2, 3, 0, 9], dtype=np.int64)
        tensor = EncryptedTensor.encrypt(x, pub, random.Random(11))
        scalar = tensor.affine(weight, bias, random.Random(13))
        engine = PaillierEngine(pub, seed=77)
        batched = tensor.affine(weight, bias, random.Random(13),
                                engine=engine)
        assert [c.ciphertext for c in scalar.cells()] == \
            [c.ciphertext for c in batched.cells()]
        expected = weight.astype(object) @ x.astype(object) \
            + bias.astype(object)
        assert list(batched.decrypt(priv)) == list(expected)

    def test_shape_mismatches_rejected(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=1)
        cells = [c.ciphertext for c in engine.encrypt_many([1, 2, 3])]
        bias = [c.ciphertext for c in engine.encrypt_many([0])]
        with pytest.raises(CryptoError):
            engine.matvec(cells, np.ones((1, 2), dtype=np.int64), bias)
        with pytest.raises(CryptoError):
            engine.matvec(cells, np.ones((2, 3), dtype=np.int64), bias)

    def test_scalar_mul_many(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, private_key=priv, seed=3)
        ciphers = engine.encrypt_many([4, 6, 9])
        raw = engine.scalar_mul_many(
            [c.ciphertext for c in ciphers], [3, 0, 2]
        )
        assert [priv.raw_decrypt(c) for c in raw] == [12, 0, 18]


class TestProcessPool:
    """The workers > 0 paths agree with the sequential engine.

    ``force_parallel`` pins the dispatch decision so the process path
    is exercised even on single-core CI boxes.
    """

    def test_parallel_encrypt_decrypt_matvec(self, keypair):
        pub, priv = keypair
        values = list(range(20))
        with PaillierEngine(pub, private_key=priv, workers=2,
                            force_parallel=True, seed=5) as parallel:
            sequential = PaillierEngine(pub, seed=5)
            par = [c.ciphertext for c in parallel.encrypt_many(values)]
            seq = [c.ciphertext for c in sequential.encrypt_many(values)]
            # parallel engine holds the private key, so its pool is
            # CRT-accelerated; values still match the plain-pow pool
            assert par == seq
            ciphers = parallel.encrypt_many(
                values, rng=random.Random(1)
            )
            assert parallel.decrypt_many(ciphers) == values

            rng = random.Random(2)
            cells = [c.ciphertext for c in ciphers][:16]
            weight = np.array(
                [[rng.randrange(-999, 999) for _ in range(16)]
                 for _ in range(3)],
                dtype=np.int64,
            )
            bias = [c.ciphertext
                    for c in parallel.encrypt_many([1, 2, 3])]
            assert parallel.matvec(cells, weight, bias) == \
                sequential.matvec(cells, weight, bias)

    def test_effective_workers_capped_by_cores(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, workers=64)
        assert engine.effective_workers == min(64, os.cpu_count() or 1)

    def test_negative_workers_rejected(self, keypair):
        pub, _ = keypair
        with pytest.raises(CryptoError):
            PaillierEngine(pub, workers=-1)


class TestRerandomize:
    def test_preserves_plaintext_changes_bits(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, seed=4)
        ciphers = engine.encrypt_many([7, 8])
        fresh = engine.rerandomize_many([c.ciphertext for c in ciphers])
        assert fresh != [c.ciphertext for c in ciphers]
        assert [priv.raw_decrypt(c) for c in fresh] == [7, 8]

    def test_rng_mode_matches_scalar_rerandomize(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=4)
        cipher = pub.encrypt(9, random.Random(1))
        scalar = pub.rerandomize(cipher.ciphertext, random.Random(2))
        batched = engine.rerandomize_many(
            [cipher.ciphertext], rng=random.Random(2)
        )
        assert batched == [scalar]


class TestDefaultEngine:
    def test_shared_per_key(self, keypair):
        pub, _ = keypair
        assert default_engine(pub) is default_engine(pub)

    def test_tensor_encrypt_routes_through_engine(self, keypair):
        """Satellite: EncryptedTensor.encrypt keeps its exact output
        while running on the engine."""
        pub, _ = keypair
        values = np.array([[1, -2], [3, 4]], dtype=np.int64)
        tensor = EncryptedTensor.encrypt(values, pub, random.Random(6))
        rng = random.Random(6)
        from repro.crypto.encoding import SignedEncoder

        encoder = SignedEncoder(pub)
        expected = [
            pub.encrypt(encoder.encode(int(v)), rng).ciphertext
            for v in values.reshape(-1)
        ]
        assert [c.ciphertext for c in tensor.cells()] == expected


class TestAddMany:
    def test_scalar_path_matches_reference(self, keypair):
        pub, priv = keypair
        engine = PaillierEngine(pub, seed=2)
        lefts = engine.raw_encrypt_many([1, 2, 3])
        rights = engine.raw_encrypt_many([10, 20, 30])
        n_sq = pub.n_squared
        assert engine.add_many(lefts, rights) \
            == [a * b % n_sq for a, b in zip(lefts, rights)]

    def test_length_mismatch_rejected(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=2)
        with pytest.raises(CryptoError):
            engine.add_many([1, 2], [3])

    def test_dispatch_break_even_is_add_specific(self, keypair):
        """Adds are one modular multiply each, so the process-pool
        break-even sits ADD_DISPATCH_FACTOR above the pow-bound one."""
        from repro.crypto.engine import ADD_DISPATCH_FACTOR

        pub, _ = keypair
        engine = PaillierEngine(pub, seed=2, workers=2)
        try:
            # Single-core CI clamps effective_workers to 1; the
            # break-even rule is what's under test, so un-clamp it.
            engine.effective_workers = 2
            threshold = engine.dispatch_min_items * ADD_DISPATCH_FACTOR
            assert not engine.add_dispatch(threshold - 1)
            assert engine.add_dispatch(threshold)
        finally:
            engine.close()

    def test_sequential_engine_never_dispatches(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=2)
        assert not engine.add_dispatch(10 ** 9)

    def test_force_parallel_dispatches_any_batch(self, keypair):
        pub, _ = keypair
        engine = PaillierEngine(pub, seed=2, workers=2,
                                force_parallel=True)
        try:
            assert engine.add_dispatch(1)
        finally:
            engine.close()

    def test_pooled_path_bit_identical(self, keypair):
        pub, _ = keypair
        sequential = PaillierEngine(pub, seed=2)
        pooled = PaillierEngine(pub, seed=2, workers=2,
                                force_parallel=True)
        try:
            lefts = sequential.raw_encrypt_many(list(range(20)))
            rights = sequential.raw_encrypt_many(list(range(20, 40)))
            assert pooled.add_many(lefts, rights) \
                == sequential.add_many(lefts, rights)
        finally:
            pooled.close()
