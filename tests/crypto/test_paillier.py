"""Unit tests for Paillier's cryptosystem: the paper's Eq. (1)-(3)."""

import random

import pytest

from repro.crypto.paillier import (
    EncryptedNumber,
    encrypt_many,
    generate_keypair,
)
from repro.errors import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)


class TestKeyGeneration:
    def test_deterministic_by_seed(self):
        pub1, _ = generate_keypair(128, seed=1)
        pub2, _ = generate_keypair(128, seed=1)
        assert pub1.n == pub2.n

    def test_different_seeds_differ(self):
        pub1, _ = generate_keypair(128, seed=1)
        pub2, _ = generate_keypair(128, seed=2)
        assert pub1.n != pub2.n

    def test_modulus_bits(self):
        for bits in (128, 256):
            pub, _ = generate_keypair(bits, seed=0)
            assert pub.n.bit_length() == bits
            assert pub.key_size == bits

    def test_bad_size_raises(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(17, seed=0)


class TestEncryptDecrypt:
    def test_round_trip(self, keypair, rng):
        pub, priv = keypair
        for m in (0, 1, 42, 10 ** 9, pub.n - 1):
            assert priv.decrypt(pub.encrypt(m, rng)) == m

    def test_random_round_trips(self, keypair, rng):
        pub, priv = keypair
        for _ in range(50):
            m = rng.randrange(0, pub.n)
            assert priv.decrypt(pub.encrypt(m, rng)) == m

    def test_probabilistic(self, keypair, rng):
        """Semantic security: re-encrypting yields fresh ciphertexts."""
        pub, _ = keypair
        c1 = pub.encrypt(7, rng)
        c2 = pub.encrypt(7, rng)
        assert c1.ciphertext != c2.ciphertext

    def test_out_of_range_plaintext(self, keypair, rng):
        pub, _ = keypair
        with pytest.raises(EncryptionError):
            pub.raw_encrypt(pub.n, rng)
        with pytest.raises(EncryptionError):
            pub.raw_encrypt(-1, rng)

    def test_out_of_range_ciphertext(self, keypair):
        _, priv = keypair
        with pytest.raises(DecryptionError):
            priv.raw_decrypt(0)
        with pytest.raises(DecryptionError):
            priv.raw_decrypt(priv.public_key.n_squared)

    def test_wrong_key_decrypt(self, keypair, rng):
        pub, _ = keypair
        _, other_priv = generate_keypair(128, seed=99)
        cipher = pub.encrypt(5, rng)
        with pytest.raises(KeyMismatchError):
            other_priv.decrypt(cipher)


class TestHomomorphisms:
    def test_addition_eq1(self, keypair, rng):
        """Paper Eq. (1): m1 + m2 = D(E(m1) * E(m2))."""
        pub, priv = keypair
        for _ in range(20):
            m1 = rng.randrange(0, 10 ** 9)
            m2 = rng.randrange(0, 10 ** 9)
            total = pub.encrypt(m1, rng) + pub.encrypt(m2, rng)
            assert priv.decrypt(total) == m1 + m2

    def test_scalar_mul_eq2(self, keypair, rng):
        """Paper Eq. (2): w * m = D(E(m)^w)."""
        pub, priv = keypair
        for _ in range(20):
            w = rng.randrange(1, 10 ** 4)
            m = rng.randrange(0, 10 ** 6)
            assert priv.decrypt(pub.encrypt(m, rng) * w) == w * m

    def test_linear_form_eq3(self, keypair, rng):
        """Paper Eq. (3): sum_i w_i m_i + b homomorphically."""
        pub, priv = keypair
        weights = [3, 0, 7, 11]
        messages = [5, 9, 2, 1]
        bias = 13
        ciphers = encrypt_many(pub, messages, rng)
        acc = pub.encrypt(bias, rng)
        for w, c in zip(weights, ciphers):
            if w:
                acc = acc + c * w
        expected = sum(w * m for w, m in zip(weights, messages)) + bias
        assert priv.decrypt(acc) == expected

    def test_scalar_zero(self, keypair, rng):
        pub, priv = keypair
        assert priv.decrypt(pub.encrypt(123, rng) * 0) == 0

    def test_negative_scalar_via_inverse(self, keypair, rng):
        """Negative scalars map through the ciphertext inverse; combined
        with the signed encoding the result decodes to -w*m."""
        pub, priv = keypair
        m, w = 17, -3
        residue = priv.decrypt(pub.encrypt(m, rng) * w)
        assert (residue - (w * m)) % pub.n == 0

    def test_key_mismatch_add(self, keypair, rng):
        pub, _ = keypair
        other_pub, _ = generate_keypair(128, seed=77)
        with pytest.raises(KeyMismatchError):
            _ = pub.encrypt(1, rng) + other_pub.encrypt(2, rng)

    def test_mul_by_non_int_not_implemented(self, keypair, rng):
        pub, _ = keypair
        with pytest.raises(TypeError):
            _ = pub.encrypt(1, rng) * 1.5

    def test_mul_by_numpy_integer_scalar(self, keypair, rng):
        """Regression: np.int64 is numbers.Integral but not int; scalar
        multiplication must accept it (scaled weights come out of numpy
        arrays element by element)."""
        import numpy as np

        pub, priv = keypair
        cipher = pub.encrypt(21, rng)
        for w in (np.int64(2), np.int32(-1), np.uint8(3)):
            product = cipher * w
            residue = priv.decrypt(product)
            assert (residue - int(w) * 21) % pub.n == 0
        assert priv.decrypt(np.int64(4) * cipher) == 84
        with pytest.raises(TypeError):
            _ = cipher * np.float64(2.0)


class TestEncryptedNumberRepr:
    def test_repr_mentions_key_size(self, keypair, rng):
        pub, _ = keypair
        assert "key_size=128" in repr(pub.encrypt(1, rng))
