"""Unit tests for signed and fixed-point encodings."""

import pytest

from repro.crypto.encoding import FixedPointEncoder, SignedEncoder
from repro.errors import EncodingError


class TestSignedEncoder:
    def test_round_trip_positive(self, keypair):
        encoder = SignedEncoder(keypair[0])
        for v in (0, 1, 999, 10 ** 12):
            assert encoder.decode(encoder.encode(v)) == v

    def test_round_trip_negative(self, keypair):
        encoder = SignedEncoder(keypair[0])
        for v in (-1, -999, -(10 ** 12)):
            assert encoder.decode(encoder.encode(v)) == v

    def test_max_magnitude_boundary(self, keypair):
        encoder = SignedEncoder(keypair[0])
        edge = encoder.max_magnitude
        assert encoder.decode(encoder.encode(edge)) == edge
        assert encoder.decode(encoder.encode(-edge)) == -edge

    def test_overflow_rejected(self, keypair):
        encoder = SignedEncoder(keypair[0])
        with pytest.raises(EncodingError):
            encoder.encode(encoder.max_magnitude + 1)

    def test_float_rejected(self, keypair):
        encoder = SignedEncoder(keypair[0])
        with pytest.raises(EncodingError):
            encoder.encode(1.5)

    def test_decode_out_of_range(self, keypair):
        encoder = SignedEncoder(keypair[0])
        with pytest.raises(EncodingError):
            encoder.decode(-1)
        with pytest.raises(EncodingError):
            encoder.decode(keypair[0].n)

    def test_homomorphic_signed_sum(self, keypair, rng):
        """Signed encoding survives homomorphic addition when within
        headroom: E(enc(5)) * E(enc(-8)) decodes to -3."""
        pub, priv = keypair
        encoder = SignedEncoder(pub)
        total = pub.encrypt(encoder.encode(5), rng) + \
            pub.encrypt(encoder.encode(-8), rng)
        assert encoder.decode(priv.decrypt(total)) == -3


class TestFixedPointEncoder:
    def test_scale(self, keypair):
        encoder = FixedPointEncoder(keypair[0], 3)
        assert encoder.scale == 1000

    def test_round_trip(self, keypair):
        encoder = FixedPointEncoder(keypair[0], 4)
        for v in (0.0, 1.5, -2.25, 3.1415):
            assert encoder.decode(encoder.encode(v)) == pytest.approx(
                v, abs=10 ** -4
            )

    def test_rounding(self, keypair):
        encoder = FixedPointEncoder(keypair[0], 1)
        assert encoder.decode(encoder.encode(0.26)) == pytest.approx(0.3)

    def test_negative_exponent_rejected(self, keypair):
        with pytest.raises(EncodingError):
            FixedPointEncoder(keypair[0], -1)

    def test_accumulated_exponent_decode(self, keypair):
        """After a product, the caller passes input+weight exponent."""
        encoder = FixedPointEncoder(keypair[0], 2)
        raw = encoder.encode(1.25)  # 125 at exponent 2
        # pretend a weight at exponent 2 multiplied it by 300 (=3.00)
        product = (raw * 300) % keypair[0].n
        assert encoder.decode(product, accumulated_exponent=4) == \
            pytest.approx(3.75)

    def test_headroom_exponent(self, keypair):
        encoder = FixedPointEncoder(keypair[0], 0)
        digits = encoder.headroom_exponent(max_abs_value=1.0)
        assert 10 ** digits <= encoder.signed.max_magnitude
        assert 10 ** (digits + 1) > encoder.signed.max_magnitude

    def test_headroom_requires_positive(self, keypair):
        encoder = FixedPointEncoder(keypair[0], 0)
        with pytest.raises(EncodingError):
            encoder.headroom_exponent(0)
