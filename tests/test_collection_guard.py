"""Guards for the test-suite plumbing itself.

Two failure modes this catches:

* a test directory added without an ``__init__.py`` — its modules are
  not importable by dotted path, which breaks tooling that resolves
  tests as packages and invites basename collisions between
  directories;
* the ``[tool.repro]`` tier-1 alias in pyproject.toml drifting away
  from the markers / options it refers to.
"""

from __future__ import annotations

import importlib.util
import sys
import tomllib
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
PYPROJECT = REPO_ROOT / "pyproject.toml"


def _test_dirs() -> list[Path]:
    """Every directory under tests/ that contains test modules."""
    dirs = {TESTS_DIR}
    for module in TESTS_DIR.rglob("test_*.py"):
        dirs.add(module.parent)
    return sorted(dirs)


class TestPackageDiscoverability:
    def test_every_test_dir_has_an_init(self):
        missing = [
            str(directory.relative_to(REPO_ROOT))
            for directory in _test_dirs()
            if not (directory / "__init__.py").is_file()
        ]
        assert not missing, (
            "test directories missing __init__.py (their modules are "
            f"not importable by dotted path): {missing}"
        )

    def test_every_test_module_resolves_by_dotted_path(self):
        if str(REPO_ROOT) not in sys.path:
            sys.path.insert(0, str(REPO_ROOT))
        unresolvable = []
        for module in sorted(TESTS_DIR.rglob("test_*.py")):
            relative = module.relative_to(REPO_ROOT)
            dotted = ".".join(relative.with_suffix("").parts)
            if importlib.util.find_spec(dotted) is None:
                unresolvable.append(dotted)
        assert not unresolvable, (
            f"test modules not importable as packages: {unresolvable}"
        )


class TestTier1Alias:
    def test_pyproject_defines_the_tier1_alias(self):
        with PYPROJECT.open("rb") as handle:
            doc = tomllib.load(handle)
        alias = doc.get("tool", {}).get("repro", {}).get("tier1")
        assert alias, "[tool.repro] tier1 alias missing from pyproject"
        assert "not slow" in alias, (
            "the tier-1 alias must deselect slow-marked tests "
            f"(got {alias!r})"
        )

    def test_slow_marker_the_alias_relies_on_is_registered(self):
        with PYPROJECT.open("rb") as handle:
            doc = tomllib.load(handle)
        markers = doc["tool"]["pytest"]["ini_options"]["markers"]
        assert any(m.split(":")[0].strip() == "slow" for m in markers)

    def test_tier1_option_deselects_slow(self, pytestconfig):
        # The --tier1 shorthand exists (wired in tests/conftest.py)...
        assert pytestconfig.getoption("--tier1") in (True, False)
        # ...and this module itself is part of tier 1: it must carry
        # no slow marker, or the guard would never run in tier-1 mode.
        import tests.test_collection_guard as self_module

        assert not getattr(self_module, "pytestmark", None)
