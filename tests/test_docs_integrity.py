"""Documentation integrity: the docs reference things that exist.

Keeps README/DESIGN/EXPERIMENTS honest as the code evolves: every
bench/example file they mention must exist, and the DESIGN inventory's
module paths must import.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestReadme:
    def test_exists_with_core_sections(self):
        text = read("README.md")
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Testing"):
            assert heading in text

    def test_referenced_files_exist(self):
        text = read("README.md")
        for match in re.findall(
            r"(?:benchmarks|examples|docs)/[\w./-]+", text
        ):
            target = match.rstrip(".,)")
            assert (REPO / target).exists(), f"README references {target}"

    def test_quickstart_snippet_runs(self):
        """The README's quickstart block must be executable as-is."""
        text = read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match, "README quickstart code block missing"
        code = match.group(1)
        namespace: dict = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)


class TestDesign:
    def test_inventory_modules_import(self):
        text = read("DESIGN.md")
        modules = set(re.findall(r"`(repro\.[\w.]+)`", text))
        assert len(modules) > 20
        for module in sorted(modules):
            # inventory entries name modules, sometimes with a trailing
            # class/function — import the longest importable prefix
            parts = module.split(".")
            for cut in range(len(parts), 0, -1):
                try:
                    importlib.import_module(".".join(parts[:cut]))
                    break
                except ImportError:
                    continue
            else:
                pytest.fail(f"DESIGN.md references {module}")

    def test_bench_targets_exist(self):
        text = read("DESIGN.md")
        for match in re.findall(r"benchmarks/[\w.]+\.py", text):
            assert (REPO / match).exists(), f"DESIGN references {match}"


class TestExperimentsDoc:
    def test_covers_every_paper_artifact(self):
        text = read("EXPERIMENTS.md")
        for artifact in ("Fig. 1", "Tables IV & V", "Fig. 6", "Fig. 8",
                         "Fig. 7", "Fig. 9", "Table VI", "Table VII"):
            assert artifact in text, f"EXPERIMENTS.md missing {artifact}"

    def test_bench_commands_point_at_real_files(self):
        text = read("EXPERIMENTS.md")
        for match in re.findall(r"benchmarks/[\w.]+\.py", text):
            assert (REPO / match).exists()


class TestExamples:
    def test_all_examples_listed_in_readme(self):
        readme = read("README.md")
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, (
                f"examples/{example.name} not mentioned in README"
            )
