"""Cross-module integration tests: the full PP-Stream lifecycle.

Train -> select scaling factor -> plan (primitives, profile, allocate)
-> deploy (protocol session and threaded pipeline) -> verify against
plaintext inference and against the simulator's view of the same plan.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.datasets import load_dataset
from repro.nn import model_zoo
from repro.nn.metrics import top1_accuracy
from repro.nn.training import SGDTrainer
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.planner.profiling import profile_primitive_times
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.parameter_scaling import (
    round_parameters,
    select_scaling_factor,
)
from repro.simulate.simulator import PipelineSimulator
from repro.stream import Pipeline


@pytest.fixture(scope="module")
def lifecycle():
    """Everything downstream of training, built once."""
    dataset = load_dataset("heart")
    model = model_zoo.build_model("heart")
    SGDTrainer(model, learning_rate=0.1, seed=0).fit(
        dataset.train_x, dataset.train_y, epochs=12
    )
    decision = select_scaling_factor(
        model, dataset.train_x, dataset.train_y, dataset.num_classes
    )
    stages = model_stages(model)
    cost_model = CostModel.reference()
    times = profile_primitive_times(stages, cost_model,
                                    decision.decimals)
    cluster = ClusterSpec.homogeneous(2, 1, 2)
    allocation = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
    return dataset, model, decision, allocation, cost_model


class TestFullLifecycle:
    def test_scaling_preserves_test_accuracy(self, lifecycle):
        dataset, model, decision, _, _ = lifecycle
        rounded = round_parameters(model, decision.decimals)
        original = top1_accuracy(model.predict(dataset.test_x),
                                 dataset.test_y)
        scaled = top1_accuracy(rounded.predict(dataset.test_x),
                               dataset.test_y)
        assert abs(original - scaled) < 0.02

    def test_protocol_accuracy_matches_plain(self, lifecycle):
        """End-to-end encrypted inference reaches the same test
        accuracy as plaintext on a sample batch."""
        dataset, model, decision, _, _ = lifecycle
        config = RuntimeConfig(key_size=128, seed=3)
        session = InferenceSession(
            ModelProvider(model, decimals=decision.decimals,
                          config=config),
            DataProvider(value_decimals=decision.decimals,
                         config=config),
        )
        sample_x = dataset.test_x[:10]
        sample_y = dataset.test_y[:10]
        encrypted_preds = [session.run(x).prediction for x in sample_x]
        plain_preds = model.predict(sample_x)
        assert top1_accuracy(np.array(encrypted_preds), sample_y) == \
            pytest.approx(
                top1_accuracy(plain_preds, sample_y), abs=0.11
        )

    def test_pipeline_and_session_agree(self, lifecycle):
        """The threaded pipeline and the sequential protocol session
        compute identical predictions for the same plan/model."""
        dataset, model, decision, allocation, _ = lifecycle
        config = RuntimeConfig(key_size=128, seed=4)
        model_provider = ModelProvider(model,
                                       decimals=decision.decimals,
                                       config=config)
        data_provider = DataProvider(value_decimals=decision.decimals,
                                     config=config)
        pipeline = Pipeline(model_provider, data_provider,
                            allocation.plan)
        inputs = list(dataset.test_x[:5])
        stats = pipeline.run_stream(inputs)
        stream_preds = [
            r.prediction
            for r in sorted(stats.results, key=lambda r: r.request_id)
        ]

        config2 = RuntimeConfig(key_size=128, seed=5)
        session = InferenceSession(
            ModelProvider(model, decimals=decision.decimals,
                          config=config2),
            DataProvider(value_decimals=decision.decimals,
                         config=config2),
        )
        session_preds = [session.run(x).prediction for x in inputs]
        assert stream_preds == session_preds

    def test_simulator_reflects_plan_structure(self, lifecycle):
        """The simulator consumes the same plan the runtime deploys
        and reports a latency decomposed over its stages."""
        _, _, decision, allocation, cost_model = lifecycle
        simulator = PipelineSimulator(allocation.plan, cost_model,
                                      decision.decimals)
        assert len(simulator.costs) == len(allocation.plan.stages)
        assert simulator.request_latency() > 0
        stream = simulator.simulate_stream(8)
        assert stream.throughput > 0

    def test_more_cores_reduce_simulated_latency(self, lifecycle):
        dataset, model, decision, _, cost_model = lifecycle
        stages = model_stages(model)
        times = profile_primitive_times(stages, cost_model,
                                        decision.decimals)
        latencies = []
        for cores in (2, 8):
            cluster = ClusterSpec.homogeneous(2, 1, cores)
            allocation = allocate_load_balanced(
                stages, times, cluster, method="water_filling"
            )
            latencies.append(
                PipelineSimulator(allocation.plan, cost_model,
                                  decision.decimals).request_latency()
            )
        assert latencies[1] < latencies[0]
