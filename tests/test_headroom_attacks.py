"""Tests for the headroom analyzer and the extraction-attack evaluation."""

import numpy as np
import pytest

from repro.errors import ObfuscationError, ScalingError
from repro.nn.layers import FullyConnected, ReLU, Sigmoid, SoftMax
from repro.nn.model import Sequential
from repro.obfuscation.attacks import (
    extraction_comparison,
    least_squares_extraction,
)
from repro.scaling.headroom import analyze_headroom, require_headroom


def small_model(scale=1.0):
    rng = np.random.default_rng(0)
    model = Sequential((4,))
    fc1 = FullyConnected(4, 6, rng=rng)
    fc1.weight *= scale
    model.add(fc1)
    model.add(ReLU())
    model.add(FullyConnected(6, 2, rng=rng))
    model.add(SoftMax())
    return model


class TestHeadroom:
    def test_safe_with_large_key(self):
        report = analyze_headroom(small_model(), decimals=3,
                                  key_size=2048)
        assert report.safe
        assert report.margin_bits > 100

    def test_unsafe_with_tiny_key_and_huge_factor(self):
        report = analyze_headroom(small_model(scale=1e6), decimals=6,
                                  key_size=64)
        assert not report.safe

    def test_margin_shrinks_with_decimals(self):
        low = analyze_headroom(small_model(), decimals=1, key_size=256)
        high = analyze_headroom(small_model(), decimals=6,
                                key_size=256)
        assert high.margin_bits < low.margin_bits

    def test_margin_grows_with_key_size(self):
        small = analyze_headroom(small_model(), decimals=4,
                                 key_size=128)
        large = analyze_headroom(small_model(), decimals=4,
                                 key_size=2048)
        assert large.margin_bits > small.margin_bits

    def test_require_raises_on_overflow(self):
        with pytest.raises(ScalingError, match="overflow"):
            require_headroom(small_model(scale=1e6), decimals=6,
                             key_size=64)

    def test_require_passes_when_safe(self):
        report = require_headroom(small_model(), decimals=3,
                                  key_size=512)
        assert report.safe

    def test_input_bound_validation(self):
        with pytest.raises(ScalingError):
            analyze_headroom(small_model(), 3, 256, input_bound=0)

    def test_sigmoid_resets_bound(self):
        rng = np.random.default_rng(1)
        model = Sequential((4,))
        model.add(FullyConnected(4, 4, rng=rng))
        model.add(Sigmoid())
        model.add(FullyConnected(4, 2, rng=rng))
        model.add(SoftMax())
        report = analyze_headroom(model, decimals=3, key_size=256,
                                  input_bound=100.0)
        # the sigmoid stage bound is 1.0 in float units
        sigmoid_stage = 1
        assert report.bound_by_stage[sigmoid_stage] <= 10 ** 3


class TestExtractionAttack:
    def test_attack_succeeds_without_obfuscation(self):
        """The strawman is genuinely vulnerable: the attacker recovers
        the weights to numerical precision."""
        plain, _ = extraction_comparison(queries=300, seed=1)
        assert plain.relative_error < 1e-8

    def test_attack_fails_with_obfuscation(self):
        """Per-round permutations destroy the regression structure —
        the recovered weights are garbage (§III-D)."""
        _, protected = extraction_comparison(queries=300, seed=1)
        assert protected.relative_error > 0.5

    def test_more_queries_do_not_help_against_obfuscation(self):
        _, few = extraction_comparison(queries=100, seed=2)
        _, many = extraction_comparison(queries=1000, seed=2)
        assert many.relative_error > 0.5
        assert few.relative_error > 0.5

    def test_needs_enough_queries(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ObfuscationError):
            least_squares_extraction(
                rng.standard_normal((4, 8)), rng.standard_normal(4),
                queries=5, obfuscate=False,
            )

    def test_shape_validation(self):
        with pytest.raises(ObfuscationError):
            least_squares_extraction(
                np.zeros((4, 8)), np.zeros(3), queries=20,
                obfuscate=False,
            )
