"""Smoke tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestTopLevelCli:
    def test_demo_runs(self, capsys):
        code = repro_main(["demo", "--model", "breast", "--samples",
                           "1", "--key-size", "128"])
        assert code == 0
        output = capsys.readouterr().out
        assert "agreement" in output
        assert "ciphertexts only: True" in output

    def test_summary(self, capsys):
        assert repro_main(["summary"]) == 0
        assert "PP-Stream" in capsys.readouterr().out

    def test_experiments_forwarding(self, capsys):
        code = repro_main(["experiments", "exp5", "--fast"])
        assert code == 0
        assert "Table VI" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            repro_main(["launch-testbed"])


class TestNetCli:
    def test_worker_bad_listen(self, capsys):
        assert repro_main(["worker", "--listen",
                           "definitely:not:a:port"]) == 2
        assert "cannot listen" in capsys.readouterr().err

    def test_serve_requires_two_workers(self, capsys):
        assert repro_main(["serve", "--workers", "1"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_round_trip_bit_identical(self, capsys):
        """The acceptance check: encrypted inference over localhost
        TCP worker processes, verified bit-identical in-process."""
        code = repro_main(["serve", "--workers", "2", "--samples", "2",
                           "--key-size", "128", "--verify"])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "2/2 requests completed over TCP" in output
        assert "bit-identical" in output


class TestExperimentsCli:
    def test_exp5_fast(self, capsys):
        assert experiments_main(["exp5", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "Distance correlation" in output

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            experiments_main([])

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            experiments_main(["exp99"])
