"""Shared fixtures for the elastic-fleet tests (docs/ELASTIC.md).

Mirrors ``tests/net/conftest.py`` — the same tiny conv model and a
128-bit key — but every coordinator here is an
:class:`~repro.cluster.ElasticCoordinator` with observability on (the
rebalancer reads live gauges/histograms) and the ``cluster_*`` knobs
tuned so a single six-request stream is enough telemetry to trigger a
re-plan deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ElasticCoordinator
from repro.config import RuntimeConfig
from repro.net import WorkerServer
from repro.nn import model_zoo
from repro.observability import NULL_TRACER, Observability
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.stream import Pipeline, RetryPolicy


@pytest.fixture(scope="session")
def cluster_model():
    return model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="tiny-conv",
    )


@pytest.fixture(scope="session")
def cluster_config():
    # backlog_high=1 with the high-water watermark: any stream that
    # ever queued a single item is "backed up", so one warm-up stream
    # arms the rebalancer.  min_service_samples=1 accepts the same
    # stream as service-time telemetry; cooldown 0 keeps tests
    # synchronous.
    return RuntimeConfig(key_size=128, seed=78).with_net(
        heartbeat_interval=0.2, heartbeat_timeout=3.0,
    ).with_reconnect(
        attempts=4, base_delay=0.02, max_delay=0.2,
    ).with_cluster(
        backlog_high=1.0, backlog_low=0.0, rebalance_cooldown=0.0,
        min_service_samples=1,
    )


@pytest.fixture(scope="session")
def cluster_inputs():
    rng = np.random.default_rng(1)
    return [rng.uniform(0, 1, (1, 8, 8)) for _ in range(6)]


@pytest.fixture()
def make_providers(cluster_model, cluster_config):
    """Fresh provider pair per call (in-process runs mutate obfuscator
    state, so reference and distributed runs each get their own)."""

    def build(config=None, obs=None):
        config = config or cluster_config
        return (
            ModelProvider(cluster_model, decimals=2, config=config,
                          obs=obs),
            DataProvider(value_decimals=2, config=config, obs=obs),
        )

    return build


@pytest.fixture()
def reference_results(make_providers, cluster_inputs):
    """request_id -> probabilities from the in-process pipeline."""

    def build(plan):
        model_provider, data_provider = make_providers()
        stats = Pipeline(model_provider, data_provider,
                         plan).run_stream(cluster_inputs)
        assert not stats.dead_letters
        return {r.request_id: r.probabilities for r in stats.results}

    return build


@pytest.fixture()
def worker_farm():
    """Start in-thread workers; guarantees teardown stops them all."""
    started = []

    def launch(*servers):
        addresses = []
        for server in servers:
            started.append(server)
            addresses.append(server.start())
        return list(servers), addresses

    yield launch
    for server in started:
        server.stop(abort=True)


@pytest.fixture()
def make_elastic(make_providers, worker_farm, cluster_config):
    """Build a connected 2-worker elastic fleet; teardown closes it.

    Returns ``(coordinator, servers, plan)`` — one model worker and
    one data worker, two cores each (the 8-stage tiny model needs
    capacity >= 4 per role for the even baseline).
    """
    coordinators = []

    def build(config=None, membership=True):
        config = config or cluster_config
        obs = Observability(enabled=True, tracer=NULL_TRACER)
        model_provider, data_provider = make_providers(config, obs)
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        plan = allocate_even(model_provider.stages, cluster).plan
        servers, addresses = worker_farm(WorkerServer(),
                                         WorkerServer())
        coordinator = ElasticCoordinator(
            model_provider, data_provider, plan, addresses,
            retry_policy=RetryPolicy(max_retries=4, base_delay=0.02),
            membership=membership,
        )
        coordinator.connect()
        coordinators.append(coordinator)
        return coordinator, servers, plan

    yield build
    for coordinator in coordinators:
        coordinator.close()
