"""ClusterState: the epoch-numbered member table."""

import pytest

from repro.cluster import ClusterState
from repro.errors import ClusterMembershipError


class TestClusterState:
    def test_joins_bump_the_epoch_monotonically(self):
        state = ClusterState()
        assert state.epoch == 0
        assert state.apply_join(0, "model", ("h", 1), 2) == 1
        assert state.apply_join(1, "data", ("h", 2), 2) == 2
        snapshot = state.snapshot()
        assert snapshot.epoch == 2
        assert [m.server_id for m in snapshot.present()] == [0, 1]

    def test_double_join_of_a_present_member_refused(self):
        state = ClusterState()
        state.apply_join(0, "model", ("h", 1), 2)
        with pytest.raises(ClusterMembershipError):
            state.apply_join(0, "model", ("h", 1), 2)

    def test_leave_keeps_the_slot_but_marks_the_span(self):
        state = ClusterState()
        state.apply_join(0, "model", ("h", 1), 2)
        state.apply_join(1, "data", ("h", 2), 2)
        epoch = state.apply_leave(0)
        assert epoch == 3
        assert state.has_left(0)
        assert not state.has_left(1)
        snapshot = state.snapshot()
        # Append-only: the departed member keeps its row...
        assert len(snapshot.members) == 2
        member = snapshot.member(0)
        assert member.left_epoch == 3
        assert not member.present
        # ...but only the survivor is present.
        assert [m.server_id for m in snapshot.present()] == [1]

    def test_leave_of_unknown_or_departed_member_refused(self):
        state = ClusterState()
        state.apply_join(0, "model", ("h", 1), 2)
        with pytest.raises(ClusterMembershipError):
            state.apply_leave(7)
        state.apply_leave(0)
        with pytest.raises(ClusterMembershipError):
            state.apply_leave(0)

    def test_snapshot_is_immutable_under_later_mutation(self):
        state = ClusterState()
        state.apply_join(0, "model", ("h", 1), 2)
        before = state.snapshot()
        state.apply_join(1, "data", ("h", 2), 2)
        state.apply_leave(0)
        assert before.epoch == 1
        assert len(before.members) == 1
        assert before.member(0).present

    def test_snapshot_member_lookup_raises_on_unknown_id(self):
        state = ClusterState()
        with pytest.raises(ClusterMembershipError):
            state.snapshot().member(3)

    def test_member_describe_mentions_identity_and_span(self):
        state = ClusterState()
        state.apply_join(0, "model", ("h", 9), 4)
        text = state.snapshot().member(0).describe()
        assert "model" in text and "h:9" in text
