"""Drain-and-migrate: quiesce, replay, zero dead letters."""

import numpy as np
import pytest

from repro.errors import ClusterMembershipError
from repro.net import WorkerServer


class TestDrain:
    def test_drain_migrates_work_bit_identically(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        (_big,), (address,) = worker_farm(WorkerServer())
        handle, _ = coordinator.admit_join(address, "model", cores=6)
        coordinator.apply_plan(coordinator.allocation_for())

        epoch = coordinator.drain_member(0)
        assert epoch == 4  # two seed joins + admit + leave
        assert coordinator.state.has_left(0)
        drained = coordinator.handles[0]
        assert drained.draining and not drained.alive
        # Every stage moved off the drained member; the original data
        # worker and the joined model worker carry the fleet.
        assignees = {a.server_id for a in coordinator.plan.assignments}
        assert 0 not in assignees
        assert handle.server_id in assignees

        stats = coordinator.run_stream(cluster_inputs)
        assert not stats.dead_letters
        assert len(stats.results) == len(cluster_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])
        # Zero restart budget consumed: a drain is not a failure.
        assert all(h.restarts == 0 for h in coordinator.handles)

    def test_drain_mid_stream_replays_in_flight_items(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        import threading

        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        (_big,), (address,) = worker_farm(WorkerServer())
        coordinator.admit_join(address, "model", cores=6)

        box = {}

        def stream():
            box["stats"] = coordinator.run_stream(cluster_inputs)

        streamer = threading.Thread(target=stream)
        streamer.start()
        # Drain the original model worker while items are in flight:
        # racing items replay on the new assignee, zero dead letters.
        coordinator.drain_member(0)
        streamer.join()
        stats = box["stats"]
        assert not stats.dead_letters
        assert len(stats.results) == len(cluster_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])

    def test_drain_last_of_a_role_refused(self, make_elastic):
        coordinator, _servers, _plan = make_elastic()
        with pytest.raises(ClusterMembershipError):
            coordinator.drain_member(0)  # the only model worker
        with pytest.raises(ClusterMembershipError):
            coordinator.drain_member(1)  # the only data worker
        # Nothing changed: both members still present, plan intact.
        assert coordinator.state.epoch == 2
        assert len(coordinator.state.snapshot().present()) == 2

    def test_double_drain_refused(self, make_elastic, worker_farm):
        coordinator, _servers, _plan = make_elastic()
        (_big,), (address,) = worker_farm(WorkerServer())
        coordinator.admit_join(address, "model", cores=4)
        coordinator.drain_member(0)
        with pytest.raises(ClusterMembershipError):
            coordinator.drain_member(0)

    def test_drain_unknown_id_refused(self, make_elastic):
        coordinator, _servers, _plan = make_elastic()
        with pytest.raises(ClusterMembershipError):
            coordinator.drain_member(9)
