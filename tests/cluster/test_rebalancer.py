"""Telemetry-driven re-planning: trigger, hysteresis, migration."""

import numpy as np

from repro.cluster import Rebalancer
from repro.net import WorkerServer


class TestRebalancer:
    def test_moves_backed_up_stages_onto_the_joined_worker(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        """The acceptance path: a stream backs stages up, a bigger
        worker joins, and the re-plan provably routes those stages
        onto it — asserted via the per-worker labeled metrics."""
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        registry = coordinator.obs.registry

        # Deliberately back the stages up: a burst of six requests
        # against two workers leaves queue-depth high-water marks and
        # per-stage service-time histograms behind.
        warmup = coordinator.run_stream(cluster_inputs)
        assert not warmup.dead_letters
        rebalancer = Rebalancer(coordinator, watermark="high")
        backlog = rebalancer.backlog_by_stage()
        assert max(backlog.values()) >= 1.0, backlog
        assert len(rebalancer.measured_times()) == len(plan.stages)

        (_big,), (address,) = worker_farm(WorkerServer())
        handle, _epoch = coordinator.admit_join(address, "model",
                                                cores=6)
        joined_id = handle.server_id
        # Joining alone moved nothing: the member idles until a plan
        # routes work onto it.
        assert all(a.server_id != joined_id
                   for a in coordinator.plan.assignments)

        assert rebalancer.step() is True
        moved = sorted(
            a.stage_index for a in coordinator.plan.assignments
            if a.server_id == joined_id
        )
        # Six cores against the originals' two: water-filling must
        # put linear stages on the joined member.
        assert moved, "re-plan left the joined worker idle"

        stats = coordinator.run_stream(cluster_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])
        # Per-worker labeled telemetry proves the migration actually
        # executed there (not just that the plan says so).
        roundtrips = {
            labels["stage"]: hist.count
            for labels, hist in registry.find(
                "histogram", "net_stage_roundtrip_seconds")
            if labels.get("worker") == str(joined_id)
        }
        assert set(map(int, roundtrips)) == set(moved)
        assert all(count >= len(cluster_inputs)
                   for count in roundtrips.values())
        queue_labels = [
            labels for labels, _gauge in registry.find(
                "gauge", "stream_queue_depth")
            if labels.get("worker") == str(joined_id)
        ]
        assert queue_labels, "no per-worker queue gauge twin"
        # The unlabeled aggregates survive alongside the twins.
        assert any(
            "worker" not in labels
            for labels, _g in registry.find(
                "histogram", "net_stage_roundtrip_seconds")
        )

    def test_hysteresis_disarms_until_backlog_recedes(
            self, make_elastic, worker_farm, cluster_inputs):
        coordinator, _servers, _plan = make_elastic()
        (_big,), (address,) = worker_farm(WorkerServer())
        coordinator.run_stream(cluster_inputs)
        coordinator.admit_join(address, "model", cores=6)
        rebalancer = Rebalancer(coordinator, watermark="high")
        assert rebalancer.step() is True
        assert rebalancer.armed is False
        # High-water marks never recede, so with backlog_low=0 the
        # trigger stays disarmed: no thrash on the same telemetry.
        assert rebalancer.step() is False
        assert rebalancer.rebalances == 1

    def test_no_telemetry_means_no_replan(self, make_elastic):
        coordinator, _servers, _plan = make_elastic()
        rebalancer = Rebalancer(coordinator)
        assert rebalancer.backlog_by_stage() == {}
        assert rebalancer.step() is False
        assert coordinator.plans_applied == 0

    def test_identical_allocation_is_skipped(
            self, make_elastic, cluster_inputs):
        """Backlog over threshold but no better placement available:
        the step declines rather than churning specs."""
        coordinator, _servers, _plan = make_elastic()
        coordinator.run_stream(cluster_inputs)
        rebalancer = Rebalancer(coordinator, watermark="high")
        before = coordinator.plan.assignments
        stepped = rebalancer.step()
        if not stepped:
            # Either the measured times reproduce the live plan
            # (skip) or they reshuffle within the same two workers —
            # both are valid; what's asserted is consistency.
            assert coordinator.plan.assignments == before
        assert coordinator.state.epoch == 2  # no membership change
