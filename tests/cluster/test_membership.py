"""The join/leave/announce wire protocol against a live fleet."""

import threading

import numpy as np
import pytest

from repro.cluster import Rebalancer
from repro.errors import ClusterMembershipError
from repro.net import WorkerServer


class TestWireJoin:
    def test_worker_joins_an_actively_streaming_fleet(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        host, port = coordinator.membership_address
        (spare,), _ = worker_farm(WorkerServer())

        box = {}

        def stream():
            box["stats"] = coordinator.run_stream(cluster_inputs)

        streamer = threading.Thread(target=stream)
        streamer.start()
        announce = spare.join_fleet(host, port, "model", cores=6)
        streamer.join()

        assert announce["status"] == "joined"
        assert announce["server_id"] == 2
        assert announce["role"] == "model"
        # The seed fleet produced epochs 1 and 2; the join is 3.
        assert announce["epoch"] == 3
        member = coordinator.state.snapshot().member(2)
        assert member.present and member.cores == 6
        # The stream that raced the join finished untouched: joining
        # never moves work by itself.
        stats = box["stats"]
        assert not stats.dead_letters
        assert len(stats.results) == len(cluster_inputs)
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])
        assert all(a.server_id != 2
                   for a in coordinator.plan.assignments)

    def test_rejoin_same_address_and_role_is_idempotent(
            self, make_elastic, worker_farm):
        coordinator, _servers, _plan = make_elastic()
        host, port = coordinator.membership_address
        (spare,), _ = worker_farm(WorkerServer())
        first = spare.join_fleet(host, port, "model", cores=4)
        second = spare.join_fleet(host, port, "model", cores=4)
        assert second["server_id"] == first["server_id"]
        # No second epoch bump: the listener resolved to the existing
        # slot instead of minting a new member.
        assert second["epoch"] == first["epoch"]

    def test_join_refused_when_membership_disabled(
            self, make_elastic):
        coordinator, _servers, _plan = make_elastic(membership=False)
        with pytest.raises(ClusterMembershipError):
            coordinator.membership_address


class TestWireLeave:
    def test_leave_drains_the_member_and_bumps_the_epoch(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        host, port = coordinator.membership_address
        # A warm-up stream leaves service-time telemetry behind so the
        # re-plan below can water-fill onto the big joiner.
        warmup = coordinator.run_stream(cluster_inputs)
        assert not warmup.dead_letters
        (spare,), _ = worker_farm(WorkerServer())
        joined = spare.join_fleet(host, port, "model", cores=6)
        server_id = joined["server_id"]
        # Route real work onto the member before it leaves.
        measured = Rebalancer(coordinator).measured_times()
        vector = [max(measured[s.index], 1e-9) for s in plan.stages]
        coordinator.apply_plan(
            coordinator.allocation_for(times=vector))
        assert any(a.server_id == server_id
                   for a in coordinator.plan.assignments)

        announce = spare.leave_fleet(host, port, server_id)
        assert announce["status"] == "draining"
        assert announce["epoch"] == joined["epoch"] + 1
        assert coordinator.state.has_left(server_id)
        assert all(a.server_id != server_id
                   for a in coordinator.plan.assignments)

        stats = coordinator.run_stream(cluster_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])

    def test_leave_of_unknown_member_surfaces_as_membership_error(
            self, make_elastic, worker_farm):
        coordinator, _servers, _plan = make_elastic()
        host, port = coordinator.membership_address
        (spare,), _ = worker_farm(WorkerServer())
        with pytest.raises(ClusterMembershipError):
            spare.leave_fleet(host, port, 17)
