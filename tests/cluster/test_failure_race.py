"""The generation guard racing membership changes (satellite: a stale
epoch-N failure report must never evict the epoch-N+1 member)."""

import time

import numpy as np
import pytest

from repro.net import WorkerServer


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {message}")


class TestStaleFailureReports:
    def test_stale_report_after_recovery_is_a_no_op(
            self, make_elastic, cluster_inputs, reference_results):
        """Failure observed at generation 0, recovery bumps to 1 —
        a late duplicate report quoting generation 0 must not
        re-kill the healed member."""
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        handle = coordinator.handles[0]
        assert handle.generation == 0

        # A real failure: connections cut, recovery reconnects (the
        # worker process never died, so reconnect heals at zero
        # restart cost).
        coordinator.report_failure(handle, 0)
        _wait_until(lambda: handle.alive and handle.generation == 1,
                    message="recovery to generation 1")
        deaths_after_first = coordinator._m_deaths.value

        # The stale duplicate: same handle, old generation.
        coordinator.report_failure(handle, 0)
        time.sleep(0.1)
        assert handle.alive, "stale report re-killed a healed member"
        assert handle.generation == 1
        assert coordinator._m_deaths.value == deaths_after_first
        assert handle.restarts == 0

        stats = coordinator.run_stream(cluster_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])

    def test_stale_report_races_concurrent_join(
            self, make_elastic, worker_farm, cluster_inputs,
            reference_results):
        """The satellite's exact race: a failure report for epoch N
        lands while a join is minting epoch N+1.  The join's member
        must stay attached, un-evicted, and un-re-dialed."""
        coordinator, _servers, plan = make_elastic()
        reference = reference_results(plan)
        victim = coordinator.handles[0]
        observed_generation = victim.generation

        # The failure is observed...
        coordinator.report_failure(victim, observed_generation)
        # ...and while recovery runs, a join lands (epoch 2 -> 3).
        (_big,), (address,) = worker_farm(WorkerServer())
        joined, join_epoch = coordinator.admit_join(
            address, "model", cores=6
        )
        assert join_epoch == 3
        _wait_until(lambda: victim.alive, message="victim recovery")
        joined_generation = joined.generation
        joined_reconnects = coordinator._m_reconnects.value

        # The stale epoch-N report arrives after the join: it quotes
        # the victim's old generation and must touch *neither* slot.
        coordinator.report_failure(victim, observed_generation)
        time.sleep(0.1)
        assert victim.alive and victim.generation \
            == observed_generation + 1
        assert joined.alive, "stale report evicted the joined member"
        assert joined.generation == joined_generation
        assert not joined.draining
        assert coordinator._m_reconnects.value == joined_reconnects, \
            "stale report re-dialed a member it never referred to"
        member = coordinator.state.snapshot().member(joined.server_id)
        assert member.present

        # The fleet still computes the same answers.
        coordinator.apply_plan(coordinator.allocation_for())
        stats = coordinator.run_stream(cluster_inputs)
        assert not stats.dead_letters
        for result in stats.results:
            assert np.array_equal(result.probabilities,
                                  reference[result.request_id])

    def test_report_for_draining_member_spawns_no_recovery(
            self, make_elastic, worker_farm):
        coordinator, _servers, _plan = make_elastic()
        (_big,), (address,) = worker_farm(WorkerServer())
        coordinator.admit_join(address, "model", cores=4)
        coordinator.drain_member(0)
        drained = coordinator.handles[0]
        generation = drained.generation
        recoveries_before = len(coordinator._recoveries)

        coordinator.report_failure(drained, generation)
        time.sleep(0.1)
        assert not drained.alive
        assert len(coordinator._recoveries) == recoveries_before, \
            "a drained member's failure report spawned recovery"
