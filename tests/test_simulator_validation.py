"""Validate the simulator against the real runtime.

DESIGN.md's substitution 1 claims the discrete-event simulator, fed a
cost model *calibrated from this interpreter's own kernels*, predicts
the real threaded runtime's behaviour.  This test measures both on the
same plan and checks they agree within a small factor.

To keep the comparison honest despite CPython's GIL (which serializes
intra-stage threads in the real runtime), the plan uses one thread per
stage, where the simulator's parallelism assumption is vacuous.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.planner.plan import ClusterSpec, Plan, StageAssignment
from repro.protocol import DataProvider, ModelProvider
from repro.simulate.simulator import PipelineSimulator
from repro.stream import Pipeline

KEY_SIZE = 128


@pytest.fixture(scope="module")
def calibrated_setup(request):
    trained = request.getfixturevalue("trained_breast")
    config = RuntimeConfig(key_size=KEY_SIZE, seed=51)
    model_provider = ModelProvider(trained, decimals=3, config=config)
    data_provider = DataProvider(value_decimals=3, config=config)
    stages = model_provider.stages
    cluster = ClusterSpec.homogeneous(1, 1, 2)
    assignments = tuple(
        StageAssignment(stage.index,
                        0 if stage.index % 2 == 0 else 1, 1)
        for stage in stages
    )
    plan = Plan(cluster, tuple(stages), assignments,
                use_tensor_partitioning=True)
    cost_model = CostModel.calibrate(KEY_SIZE, samples=32)
    return model_provider, data_provider, plan, cost_model


class TestSimulatorValidation:
    def test_predicted_latency_within_factor_of_measured(
        self, calibrated_setup, breast_dataset
    ):
        model_provider, data_provider, plan, cost_model = \
            calibrated_setup
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:4]))
        measured = stats.mean_latency

        simulator = PipelineSimulator(plan, cost_model, decimals=3)
        predicted = simulator.request_latency()

        # Python-level dispatch overhead isn't in the calibrated ops,
        # so allow a generous band: the simulator must land within
        # 5x of reality in both directions (it typically lands much
        # closer; the point is order-of-magnitude validity).
        assert predicted == pytest.approx(measured, rel=4.0)
        assert 0.2 < predicted / measured < 5.0

    def test_per_stage_costs_track_reality(
        self, calibrated_setup, breast_dataset
    ):
        """Per-stage predicted compute must track the measured busy
        time: within 5x for every stage that does non-trivial work,
        and the heavy stages (both FC affines) identified correctly."""
        model_provider, data_provider, plan, cost_model = \
            calibrated_setup
        requests = 4
        pipeline = Pipeline(model_provider, data_provider, plan)
        stats = pipeline.run_stream(
            list(breast_dataset.test_x[:requests])
        )
        measured = [busy / requests
                    for busy in stats.stage_busy_seconds]

        simulator = PipelineSimulator(plan, cost_model, decimals=3)
        predicted = [cost.compute for cost in simulator.costs]
        floor = max(measured) * 0.05
        for index, (real, model) in enumerate(zip(measured,
                                                  predicted)):
            if real < floor:
                continue
            ratio = model / real
            assert 0.2 < ratio < 5.0, (
                f"stage {index}: predicted {model:.4f}s vs measured "
                f"{real:.4f}s"
            )
        # the two heavy stages are the same in both views — except
        # when the contested stages are a measured near-tie, where the
        # ranking legitimately flips with scheduler noise
        top2_measured = set(np.argsort(measured)[-2:])
        top2_predicted = set(np.argsort(predicted)[-2:])
        if top2_measured != top2_predicted:
            contested = sorted(measured[i]
                               for i in top2_measured ^ top2_predicted)
            assert contested[-1] <= contested[0] * 1.5, (
                f"heavy stages disagree beyond a near-tie: measured "
                f"top2 {sorted(top2_measured)} vs predicted "
                f"{sorted(top2_predicted)} ({measured=})"
            )
