"""Tracer unit tests: span nesting, cross-thread trace propagation,
tree reconstruction, and the allocation-free no-op mode."""

from __future__ import annotations

import threading

from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
)


class TestSpans:
    def test_span_nesting_reconstructs_as_a_tree(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id("t")
        with tracer.span("root", trace_id=trace_id) as root:
            with tracer.span("child-a", trace_id=trace_id,
                             parent_id=root.span_id) as child:
                tracer.event("leaf", trace_id=trace_id,
                             parent_id=child.span_id)
            with tracer.span("child-b", trace_id=trace_id,
                             parent_id=root.span_id):
                pass
        roots = tracer.tree(trace_id)
        assert len(roots) == 1
        assert roots[0]["span"].name == "root"
        children = sorted(c["span"].name for c in roots[0]["children"])
        assert children == ["child-a", "child-b"]
        (child_a,) = [c for c in roots[0]["children"]
                      if c["span"].name == "child-a"]
        assert [n["span"].name for n in child_a["children"]] == ["leaf"]

    def test_finish_is_idempotent_and_duration_monotonic(self):
        tracer = Tracer()
        span = tracer.begin_span("op")
        assert span.duration == 0.0  # still open
        span.finish()
        first_end = span.end
        span.finish()
        assert span.end == first_end
        assert span.duration >= 0.0

    def test_event_has_zero_duration(self):
        tracer = Tracer()
        event = tracer.event("retry", attempt=1)
        assert event.duration == 0.0
        assert event.attrs["attempt"] == 1

    def test_exception_recorded_on_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("payload")
        except ValueError:
            pass
        (span,) = tracer.spans(name="boom")
        assert "ValueError" in span.attrs["error"]
        assert span.end is not None

    def test_orphan_parent_is_treated_as_root(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id()
        tracer.event("stray", trace_id=trace_id, parent_id="missing")
        roots = tracer.tree(trace_id)
        assert [r["span"].name for r in roots] == ["stray"]

    def test_export_and_render(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id("req")
        with tracer.span("request", trace_id=trace_id,
                         request_id=7) as root:
            tracer.event("retry", trace_id=trace_id,
                         parent_id=root.span_id)
        exported = tracer.export()
        assert all(isinstance(d, dict) for d in exported)
        assert {d["name"] for d in exported} == {"request", "retry"}
        text = tracer.render(trace_id)
        assert "request" in text and "retry" in text
        assert text.splitlines()[0] == f"trace {trace_id}:"


class TestCrossThread:
    def test_trace_id_propagates_across_stage_threads(self):
        """The stream-runtime pattern: a root span opened on the
        producer thread, child spans recorded on worker threads, the
        root finished on the drain thread."""
        tracer = Tracer()
        trace_id = tracer.new_trace_id("req0")
        root = tracer.begin_span("request", trace_id=trace_id)

        def stage(index: int) -> None:
            with tracer.span(f"stage-{index}", trace_id=trace_id,
                             parent_id=root.span_id):
                pass

        threads = [threading.Thread(target=stage, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        root.finish()

        assert len(tracer.spans(trace_id=trace_id)) == 5
        roots = tracer.tree(trace_id)
        assert len(roots) == 1
        names = sorted(c["span"].name for c in roots[0]["children"])
        assert names == [f"stage-{i}" for i in range(4)]

    def test_trace_ids_are_unique_under_contention(self):
        tracer = Tracer()
        seen: list[str] = []
        lock = threading.Lock()

        def grab() -> None:
            ids = [tracer.new_trace_id() for _ in range(200)]
            with lock:
                seen.extend(ids)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 800


class TestNullTracer:
    def test_no_op_mode_allocates_no_spans(self):
        context_a = NULL_TRACER.span("a")
        context_b = NULL_TRACER.span("b", trace_id="t", x=1)
        assert context_a is context_b  # shared singleton context
        with context_a as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.begin_span("c") is NULL_SPAN
        assert NULL_TRACER.event("d") is NULL_SPAN
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.trace_ids() == []
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.new_trace_id("req") is None
        assert NULL_TRACER.tree("any") == []
        assert NULL_TRACER.render("any") == ""

    def test_null_span_absorbs_the_live_span_api(self):
        NULL_SPAN.set_attr("k", "v")
        NULL_SPAN.finish()
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.duration == 0.0
        assert NULL_SPAN.span_id is None

    def test_live_span_is_a_real_object(self):
        # Guard against the twins drifting: the enabled tracer must
        # hand out distinct Span instances.
        tracer = Tracer()
        a, b = tracer.begin_span("a"), tracer.begin_span("b")
        assert isinstance(a, Span) and a is not b
        assert a.span_id != b.span_id
