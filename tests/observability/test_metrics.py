"""MetricsRegistry unit tests: identity, concurrency, bucket edges,
snapshot round-trip, and the Prometheus text format."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    SIZE_BUCKETS,
)


class TestIdentity:
    def test_same_name_and_labels_is_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", stage="0")
        b = registry.counter("requests", stage="0")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", stage="0", op="enc")
        b = registry.counter("x", op="enc", stage="0")
        assert a is b

    def test_different_labels_are_different_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", stage="0")
        b = registry.counter("requests", stage="1")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("queue_depth")
        with pytest.raises(ObservabilityError):
            registry.gauge("queue_depth")
        with pytest.raises(ObservabilityError):
            registry.histogram("queue_depth")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("c").inc(-1)

    def test_bad_histogram_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ObservabilityError):
            registry.histogram("h2", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h3", buckets=(2.0, 1.0))


class TestConcurrency:
    def test_threaded_hammer_loses_no_increments(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2500

        def hammer(index: int) -> None:
            counter = registry.counter("hits", op="hammer")
            gauge = registry.gauge("depth")
            histogram = registry.histogram("lat", buckets=SIZE_BUCKETS)
            for i in range(per_thread):
                counter.inc()
                gauge.set(i)
                histogram.observe(i % 64)

        pool = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert registry.counter("hits", op="hammer").value \
            == threads * per_thread
        histogram = registry.histogram("lat", buckets=SIZE_BUCKETS)
        assert histogram.count == threads * per_thread
        assert sum(histogram.bucket_counts()) == threads * per_thread


class TestHistogramBuckets:
    def test_le_semantics_on_exact_bucket_edges(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        # A value exactly on a bound lands in that bound's bucket
        # (Prometheus le semantics), the epsilon above goes one up.
        histogram.observe(1.0)
        histogram.observe(2.0)
        histogram.observe(2.0000001)
        histogram.observe(4.0)
        histogram.observe(5.0)  # overflow
        assert histogram.bucket_counts() == [1, 1, 2, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(14.0000001)

    def test_below_first_bucket_and_default_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(0.0)
        assert histogram.bucket_counts()[0] == 1
        assert len(histogram.bucket_counts()) == len(DEFAULT_BUCKETS) + 1


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("reqs", stage="0").inc(3)
        registry.counter("reqs", stage="1").inc(5)
        registry.gauge("depth").set(2.5)
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_round_trips_losslessly_through_json(self):
        snapshot = self._populated().snapshot()
        decoded = json.loads(json.dumps(snapshot))
        rebuilt = MetricsRegistry.from_snapshot(decoded)
        assert rebuilt.snapshot() == snapshot

    def test_snapshot_is_sorted_and_stable(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        assert a == b
        names = [c["name"] for c in a["counters"]]
        assert names == sorted(names)


class TestPrometheus:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter("reqs", stage="0").inc(3)
        registry.gauge("depth").set(2)
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        expected = "\n".join([
            '# TYPE depth gauge',
            'depth 2',
            '# TYPE lat histogram',
            'lat_bucket{le="0.1"} 1',
            'lat_bucket{le="1"} 2',
            'lat_bucket{le="+Inf"} 3',
            'lat_sum 5.55',
            'lat_count 3',
            '# TYPE reqs counter',
            'reqs{stage="0"} 3',
        ]) + "\n"
        assert registry.to_prometheus() == expected

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestNullRegistry:
    def test_null_metrics_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") \
            is NULL_REGISTRY.histogram("b", buckets=(1,))

    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("a").inc(10)
        NULL_REGISTRY.gauge("a").set(10)
        NULL_REGISTRY.histogram("a").observe(10)
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        assert NULL_REGISTRY.to_prometheus() == ""
