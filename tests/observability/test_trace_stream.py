"""End-to-end: a faulted stream run's trace must agree exactly with
:class:`StreamStats` — every retry, restart, and dead-letter that the
runtime counts appears as a span, and vice versa."""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.config import RuntimeConfig
from repro.observability import Observability
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.stream import FaultPlan, Pipeline, RetryPolicy
from repro.stream.pipeline import StreamStats

FAST_RETRIES = RetryPolicy(max_retries=3, base_delay=0.002,
                           max_delay=0.02)


def _stream_threads():
    prefixes = ("repro-stage-", "repro-stream-")
    return [t.name for t in threading.enumerate()
            if t.name.startswith(prefixes)]


def assert_no_stream_threads():
    for _ in range(100):
        if not _stream_threads():
            return
        time.sleep(0.02)
    raise AssertionError(f"leaked stream threads: {_stream_threads()}")


def _build_observed_pipeline(trained, **kwargs):
    config = RuntimeConfig(key_size=128, seed=91)
    obs = Observability(enabled=True)
    model_provider = ModelProvider(trained, decimals=3, config=config,
                                   obs=obs)
    data_provider = DataProvider(value_decimals=3, config=config,
                                 obs=obs)
    cluster = ClusterSpec.homogeneous(1, 1, 2)
    plan = allocate_even(model_provider.stages, cluster).plan
    kwargs.setdefault("retry_policy", FAST_RETRIES)
    return Pipeline(model_provider, data_provider, plan, obs=obs,
                    **kwargs), obs


class TestFaultedRunTraces:
    def test_span_counts_match_stream_stats_exactly(
            self, trained_breast, breast_dataset):
        fault_plan = FaultPlan.parse(
            "transient:stage=0:request=1:count=2;"
            "crash:stage=2:request=2;"
            "permanent:stage=0:request=3"
        )
        pipeline, obs = _build_observed_pipeline(
            trained_breast, fault_plan=fault_plan,
        )
        inputs = list(breast_dataset.test_x[:5])
        stats = pipeline.run_stream(inputs)
        assert_no_stream_threads()
        tracer = obs.tracer

        # The run itself saw: 2 transient retries, 1 restart, 1
        # dead-letter — and the trace must reconstruct each of them.
        assert stats.total_retries == 2
        assert stats.total_restarts == 1
        assert len(stats.dead_letters) == 1

        assert len(tracer.spans(name="retry")) == stats.total_retries
        assert len(tracer.spans(name="restart")) \
            == stats.total_restarts
        assert len(tracer.spans(name="dead-letter")) \
            == len(stats.dead_letters)

        # One root span per admitted request, all finished, with the
        # sink-assigned outcome.
        requests = tracer.spans(name="request")
        assert len(requests) == len(inputs)
        assert all(span.end is not None for span in requests)
        outcomes = sorted(span.attrs["outcome"] for span in requests)
        assert outcomes.count("dead-letter") == len(stats.dead_letters)
        assert outcomes.count("completed") == len(stats.results)

    def test_events_land_on_the_right_request_trace(
            self, trained_breast, breast_dataset):
        fault_plan = FaultPlan.parse(
            "transient:stage=0:request=1:count=2;"
            "crash:stage=2:request=2;"
            "permanent:stage=0:request=3"
        )
        pipeline, obs = _build_observed_pipeline(
            trained_breast, fault_plan=fault_plan,
        )
        stats = pipeline.run_stream(list(breast_dataset.test_x[:5]))
        tracer = obs.tracer

        for span in tracer.spans(name="retry"):
            assert span.attrs["request_id"] == 1
        for span in tracer.spans(name="restart"):
            assert span.attrs["stage"] == 2
        (dead,) = tracer.spans(name="dead-letter")
        (letter,) = stats.dead_letters
        assert dead.attrs["request_id"] == letter.request_id == 3
        assert dead.attrs["reason"] == letter.reason
        assert dead.attrs["attempts"] == letter.attempts

        # Each trace holds exactly one root and every span of that
        # trace shares its trace_id (propagated across stage threads).
        for trace_id in tracer.trace_ids():
            roots = tracer.tree(trace_id)
            assert len(roots) == 1
            assert roots[0]["span"].name == "request"

    def test_healthy_run_has_no_failure_spans(
            self, trained_breast, breast_dataset):
        pipeline, obs = _build_observed_pipeline(trained_breast)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:3]))
        tracer = obs.tracer
        assert stats.total_retries == 0
        assert tracer.spans(name="retry") == []
        assert tracer.spans(name="restart") == []
        assert tracer.spans(name="dead-letter") == []
        assert len(tracer.spans(name="request")) == 3
        # Stage spans: one per (request, stage).
        num_stages = len(pipeline._executors)
        stage_spans = [s for s in tracer.spans()
                       if s.name.startswith("stage-")]
        assert len(stage_spans) == 3 * num_stages

    def test_disabled_observability_records_nothing(
            self, trained_breast, breast_dataset):
        config = RuntimeConfig(key_size=128, seed=91)
        model_provider = ModelProvider(trained_breast, decimals=3,
                                       config=config)
        data_provider = DataProvider(value_decimals=3, config=config)
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        plan = allocate_even(model_provider.stages, cluster).plan
        pipeline = Pipeline(model_provider, data_provider, plan,
                            retry_policy=FAST_RETRIES)
        assert not pipeline.obs.enabled
        stats = pipeline.run_stream(list(breast_dataset.test_x[:2]))
        assert len(stats.results) == 2
        assert pipeline.obs.tracer.spans() == []
        assert pipeline.obs.registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }


class TestMeanLatencyAllDeadLettered:
    def test_mean_latency_is_nan_not_an_error(self, trained_breast,
                                              breast_dataset):
        """Regression: an all-dead-letter run used to raise
        StreamError from ``mean_latency`` (e.g. inside
        ``utilization_report``); it now reports NaN gracefully."""
        inputs = list(breast_dataset.test_x[:2])
        fault_plan = FaultPlan.parse(
            "permanent:stage=0:request=0;permanent:stage=0:request=1"
        )
        pipeline, _ = _build_observed_pipeline(trained_breast,
                                               fault_plan=fault_plan)
        stats = pipeline.run_stream(inputs)
        assert stats.results == []
        assert len(stats.dead_letters) == len(inputs)
        assert math.isnan(stats.mean_latency)
        report = stats.utilization_report()
        assert "dead-lettered" in report

    def test_empty_stats_mean_latency_is_nan(self):
        assert math.isnan(StreamStats().mean_latency)

    def test_mean_latency_still_real_when_results_exist(
            self, trained_breast, breast_dataset):
        pipeline, _ = _build_observed_pipeline(trained_breast)
        stats = pipeline.run_stream(list(breast_dataset.test_x[:2]))
        assert stats.mean_latency > 0
        assert not math.isnan(stats.mean_latency)
