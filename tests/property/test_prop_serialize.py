"""Fuzz properties for the crypto wire format.

The parser must be total: any mutation of a valid frame either parses
back to a valid tensor or raises a controlled error (`EncodingError` /
`KeyMismatchError`) — never an uncontrolled exception, never a tensor
that fails to decrypt.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import generate_keypair
from repro.crypto.serialize import tensor_from_bytes, tensor_to_bytes
from repro.crypto.tensor import EncryptedTensor
from repro.errors import EncodingError, KeyMismatchError

PUBLIC, PRIVATE = generate_keypair(128, seed=77)


def make_blob(values, exponent=0, seed=0):
    rng = random.Random(seed)
    tensor = EncryptedTensor.encrypt(
        np.asarray(values), PUBLIC, rng, exponent
    )
    return tensor_to_bytes(tensor)


class TestWireFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-1000, max_value=1000),
                        min_size=1, max_size=8),
        exponent=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2 ** 20),
    )
    def test_round_trip_any_payload(self, values, exponent, seed):
        blob = make_blob(values, exponent, seed)
        tensor = tensor_from_bytes(blob, PUBLIC)
        assert tensor.exponent == exponent
        assert list(tensor.decrypt(PRIVATE)) == values

    @settings(max_examples=60, deadline=None)
    @given(
        flip_position=st.integers(min_value=0, max_value=10 ** 6),
        flip_bit=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=2 ** 20),
    )
    def test_single_bitflip_is_controlled(self, flip_position,
                                          flip_bit, seed):
        """A one-bit corruption never escapes as an uncontrolled
        exception, and if it parses, decryption still works (the flip
        only changed ciphertext content, not framing)."""
        blob = bytearray(make_blob([1, -2, 3], seed=seed))
        position = flip_position % len(blob)
        blob[position] ^= 1 << flip_bit
        try:
            tensor = tensor_from_bytes(bytes(blob), PUBLIC)
        except (EncodingError, KeyMismatchError):
            return
        # parsed: must still be decryptable (possibly to other values)
        decrypted = tensor.decrypt(PRIVATE)
        assert decrypted.shape == tensor.shape

    @settings(max_examples=40, deadline=None)
    @given(
        truncate_to=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2 ** 20),
    )
    def test_truncation_is_controlled(self, truncate_to, seed):
        blob = make_blob([5, 6], seed=seed)
        cut = blob[:min(truncate_to, len(blob) - 1)]
        with pytest.raises((EncodingError, KeyMismatchError)):
            tensor_from_bytes(cut, PUBLIC)

    @settings(max_examples=30, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=64))
    def test_random_bytes_rejected(self, junk):
        try:
            tensor_from_bytes(junk, PUBLIC)
        except (EncodingError, KeyMismatchError):
            return
        # astronomically unlikely: junk that parses must round-trip
        pytest.fail("random bytes parsed as a tensor")
