"""Property-based tests: the batched engine IS the scalar path.

Every kernel of :class:`repro.crypto.engine.PaillierEngine` must agree
*bit for bit* with the scalar reference in :mod:`repro.crypto.paillier`
given the same randomness — hypothesis drives random value lists,
matrices, and seeds through both and compares raw ciphertexts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.crypto.engine import PaillierEngine
from repro.crypto.paillier import generate_keypair
from repro.crypto.tensor import EncryptedTensor

import numpy as np

PUBLIC, PRIVATE = generate_keypair(128, seed=2024)

residues = st.integers(min_value=0, max_value=PUBLIC.n - 1)
seeds = st.integers(min_value=0, max_value=2 ** 31)
weights = st.integers(min_value=-(10 ** 6), max_value=10 ** 6)
small_signed = st.integers(min_value=-(10 ** 9), max_value=10 ** 9)


class TestEngineMatchesScalar:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(residues, min_size=0, max_size=12), seed=seeds)
    def test_encrypt_many_rng_mode(self, values, seed):
        scalar_rng = random.Random(seed)
        scalar = [PUBLIC.encrypt(m, scalar_rng).ciphertext
                  for m in values]
        engine = PaillierEngine(PUBLIC)
        batched = [c.ciphertext for c in
                   engine.encrypt_many(values, rng=random.Random(seed))]
        assert batched == scalar

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(residues, min_size=1, max_size=12), seed=seeds)
    def test_encrypt_many_pooled_mode(self, values, seed):
        """Pooled encryption under seed S equals the scalar loop fed a
        Random(S): the pool draws the same r stream in the same order."""
        scalar_rng = random.Random(seed)
        scalar = [PUBLIC.encrypt(m, scalar_rng).ciphertext
                  for m in values]
        engine = PaillierEngine(PUBLIC, seed=seed, pool_size=4)
        assert [c.ciphertext for c in engine.encrypt_many(values)] \
            == scalar

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(residues, min_size=1, max_size=12), seed=seeds)
    def test_crt_pool_equals_plain_pool(self, values, seed):
        plain = PaillierEngine(PUBLIC, seed=seed)
        crt = PaillierEngine(PUBLIC, private_key=PRIVATE, seed=seed)
        assert [c.ciphertext for c in plain.encrypt_many(values)] \
            == [c.ciphertext for c in crt.encrypt_many(values)]

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(residues, min_size=1, max_size=16), seed=seeds)
    def test_decrypt_many_round_trip(self, values, seed):
        engine = PaillierEngine(PUBLIC, private_key=PRIVATE, seed=seed)
        assert engine.decrypt_many(engine.encrypt_many(values)) == values

    @settings(max_examples=20, deadline=None)
    @given(
        matrix=st.lists(
            st.lists(weights, min_size=4, max_size=4),
            min_size=1, max_size=5,
        ),
        x=st.lists(small_signed, min_size=4, max_size=4),
        bias=st.lists(small_signed, min_size=1, max_size=5),
        seed=seeds,
    )
    def test_matvec_matches_scalar_affine(self, matrix, x, bias, seed):
        """Random signed matrices (zeros and negatives included): the
        engine affine equals the scalar affine bit for bit AND decrypts
        to the numpy result."""
        rows = len(matrix)
        bias = (bias * rows)[:rows]
        w = np.array(matrix, dtype=np.int64)
        b = np.array(bias, dtype=np.int64)
        tensor = EncryptedTensor.encrypt(
            np.array(x, dtype=np.int64), PUBLIC, random.Random(seed)
        )
        scalar = tensor.affine(w, b, random.Random(seed + 1))
        engine = PaillierEngine(PUBLIC, seed=seed)
        batched = tensor.affine(w, b, random.Random(seed + 1),
                                engine=engine)
        assert [c.ciphertext for c in scalar.cells()] \
            == [c.ciphertext for c in batched.cells()]
        expected = w.astype(object) @ np.array(x, dtype=object) \
            + b.astype(object)
        assert list(batched.decrypt(PRIVATE)) == list(expected)

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(residues, min_size=1, max_size=8), seed=seeds)
    def test_rerandomize_many_preserves_plaintext(self, values, seed):
        engine = PaillierEngine(PUBLIC, seed=seed)
        ciphers = engine.encrypt_many(values)
        fresh = engine.rerandomize_many([c.ciphertext for c in ciphers])
        assert [PRIVATE.raw_decrypt(c) for c in fresh] == values


class TestPoolDeterminismProperties:
    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(residues, min_size=1, max_size=10),
           seed=seeds,
           pool_size=st.integers(min_value=1, max_value=8))
    def test_pool_size_never_changes_ciphertexts(self, values, seed,
                                                 pool_size):
        """Refill batching (pool size, exhaustion cadence) must not
        leak into the ciphertext stream — only the seed decides it."""
        small = PaillierEngine(PUBLIC, seed=seed, pool_size=pool_size)
        large = PaillierEngine(PUBLIC, seed=seed, pool_size=64)
        large.prefill()
        assert [c.ciphertext for c in small.encrypt_many(values)] \
            == [c.ciphertext for c in large.encrypt_many(values)]
