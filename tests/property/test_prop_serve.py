"""Property-based serving invariants.

Two laws hold for any input the strategies can draw:

1. The job FSM only ever takes edges in ``LEGAL_TRANSITIONS``: a
   random attack sequence of transitions succeeds exactly when the
   edge is legal, a job reaches at most one terminal state, and the
   walk replayed from the successful edges lands on the same state.
2. Admission control's accounting identity ``accepted + shed ==
   submitted`` holds for any submission pattern, queue capacity, and
   quota — with per-tenant acceptance never exceeding the quota and
   total queue depth never exceeding capacity — and a shutdown drains
   to all-terminal with nothing lost.
"""

from hypothesis import given, settings, strategies as st

from repro.config import RuntimeConfig
from repro.errors import JobStateError
from repro.serve import (
    Job,
    JobManager,
    LEGAL_TRANSITIONS,
    QUEUED,
    SHED,
    TERMINAL_STATES,
)

_STATES = sorted(LEGAL_TRANSITIONS)


@settings(max_examples=200, deadline=None)
@given(attack=st.lists(st.sampled_from(_STATES), max_size=12))
def test_fsm_only_takes_legal_edges(attack):
    job = Job("prop", payload=None)
    state = QUEUED
    terminal_hits = 0
    for target in attack:
        legal = target in LEGAL_TRANSITIONS[state]
        try:
            job.transition(target)
        except JobStateError:
            assert not legal, (state, target)
        else:
            assert legal, (state, target)
            state = target
            if target in TERMINAL_STATES:
                terminal_hits += 1
    assert job.state == state
    assert terminal_hits <= 1
    assert job.terminal == (state in TERMINAL_STATES)
    # Absorption: once terminal, every further edge refuses.
    if job.terminal:
        for target in _STATES:
            try:
                job.transition(target)
                raise AssertionError(
                    f"terminal {state} accepted edge to {target}"
                )
            except JobStateError:
                pass


@settings(max_examples=100, deadline=None)
@given(
    submissions=st.lists(st.integers(min_value=0, max_value=3),
                         min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=6),
    quota=st.integers(min_value=1, max_value=4),
)
def test_admission_accounting_identity(submissions, capacity, quota):
    """With no worker fleet running, admission is a pure function of
    queue depth and quota — audit the identity over any pattern."""
    config = RuntimeConfig().with_serve(
        queue_capacity=capacity, workers=1, tenant_quota=quota,
    )
    manager = JobManager(lambda job: {}, config)
    # Deliberately NOT started: nothing drains the queue, so the
    # accounting is exact and deterministic.
    jobs = [
        manager.submit(f"tenant-{index}", None)
        for index in submissions
    ]
    accepted = [job for job in jobs if job.state == QUEUED]
    shed = [job for job in jobs if job.state == SHED]
    assert len(accepted) + len(shed) == len(submissions)
    assert len(accepted) <= capacity
    per_tenant = {}
    for job in accepted:
        per_tenant[job.tenant] = per_tenant.get(job.tenant, 0) + 1
    assert all(count <= quota for count in per_tenant.values())
    for name, count in per_tenant.items():
        assert manager.inflight(name) == count
    assert len(manager.tracker) == len(submissions)
    # Shutdown drains the queue: every job terminal, none lost.
    manager.shutdown()
    assert manager.tracker.all_terminal()
    counts = manager.tracker.counts()
    assert sum(counts.values()) == len(submissions)
    assert counts.get(SHED, 0) == len(shed)
    assert set(counts) <= TERMINAL_STATES
