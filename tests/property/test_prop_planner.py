"""Property-based tests for allocation and the pipeline simulator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import InfeasibleAllocationError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.planner.allocation import allocate_even, \
    allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.primitive import model_stages
from repro.simulate.events import EventDrivenPipeline
from repro.simulate.simulator import _recurrence


def fc_stages(depth):
    model = Sequential((4,))
    width = 4
    for _ in range(depth):
        model.add(FullyConnected(width, 4))
        model.add(ReLU())
        width = 4
    model.add(FullyConnected(width, 2))
    model.add(SoftMax())
    return model_stages(model)


class TestAllocationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=3),
        times_seed=st.integers(min_value=0, max_value=2 ** 30),
        model_servers=st.integers(min_value=1, max_value=3),
        data_servers=st.integers(min_value=1, max_value=2),
        cores=st.integers(min_value=2, max_value=8),
    )
    def test_water_filling_always_feasible_plan(
        self, depth, times_seed, model_servers, data_servers, cores
    ):
        """Whenever allocation succeeds, the plan satisfies Eq. 5-8
        (Plan.__post_init__ enforces them) and no per-thread time
        exceeds the single-thread time."""
        stages = fc_stages(depth)
        rng = np.random.default_rng(times_seed)
        times = list(rng.uniform(0.1, 10.0, len(stages)))
        cluster = ClusterSpec.homogeneous(model_servers, data_servers,
                                          cores)
        try:
            result = allocate_load_balanced(
                stages, times, cluster, method="water_filling"
            )
        except InfeasibleAllocationError:
            assume(False)
            return
        plan = result.plan
        for time_value, assignment in zip(times, plan.assignments):
            assert assignment.threads >= 1
            assert time_value / assignment.threads <= time_value

    @settings(max_examples=20, deadline=None)
    @given(
        times_seed=st.integers(min_value=0, max_value=2 ** 30),
        cores=st.integers(min_value=2, max_value=8),
    )
    def test_balanced_sum_not_worse_than_even(self, times_seed, cores):
        """Load balancing never increases the total per-thread time
        (what single-request latency sums over) on skewed loads."""
        stages = fc_stages(2)
        rng = np.random.default_rng(times_seed)
        times = list(rng.uniform(0.1, 10.0, len(stages)))
        cluster = ClusterSpec.homogeneous(1, 1, cores)
        even = allocate_even(stages, cluster)
        balanced = allocate_load_balanced(stages, times, cluster,
                                          method="water_filling")
        even_sum = sum(t / a.threads for t, a in
                       zip(times, even.plan.assignments))
        balanced_sum = sum(t / a.threads for t, a in
                           zip(times, balanced.plan.assignments))
        assert balanced_sum <= even_sum * 1.3


class TestSimulatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        services=st.lists(
            st.floats(min_value=0.001, max_value=5.0), min_size=1,
            max_size=6,
        ),
        transfers=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1,
            max_size=6,
        ),
        requests=st.integers(min_value=1, max_value=12),
        interval=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_engines_always_agree(self, services, transfers, requests,
                                  interval):
        """The event-driven engine and closed-form recurrence compute
        identical schedules for arbitrary pipelines."""
        size = min(len(services), len(transfers))
        services, transfers = services[:size], transfers[:size]
        arrivals = [interval * r for r in range(requests)]
        event_result = EventDrivenPipeline(services, transfers).run(
            arrivals
        )
        recurrence_result = _recurrence(services, transfers, arrivals)
        assert event_result == pytest.approx(recurrence_result)

    @settings(max_examples=30, deadline=None)
    @given(
        services=st.lists(
            st.floats(min_value=0.001, max_value=5.0), min_size=1,
            max_size=5,
        ),
        requests=st.integers(min_value=1, max_value=10),
    )
    def test_latencies_monotone_in_backlog(self, services, requests):
        """With simultaneous arrivals, each request's completion is at
        least the previous one's (FIFO, no overtaking)."""
        transfers = [0.0] * len(services)
        completions = _recurrence(services, transfers,
                                  [0.0] * requests)
        assert completions == sorted(completions)

    @settings(max_examples=30, deadline=None)
    @given(
        services=st.lists(
            st.floats(min_value=0.01, max_value=2.0), min_size=1,
            max_size=5,
        ),
    )
    def test_single_request_latency_is_path_sum(self, services):
        transfers = [0.1] * len(services)
        completions = _recurrence(services, transfers, [0.0])
        assert completions[0] == pytest.approx(
            sum(services) + sum(transfers)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        bottleneck=st.floats(min_value=0.5, max_value=2.0),
        requests=st.integers(min_value=2, max_value=15),
    )
    def test_steady_state_spacing_is_bottleneck(self, bottleneck,
                                                requests):
        """Inter-completion gaps converge to the bottleneck service
        time — the pipelining throughput law."""
        services = [0.1, bottleneck, 0.1]
        completions = _recurrence(services, [0.0] * 3,
                                  [0.0] * requests)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        if gaps:
            assert gaps[-1] == pytest.approx(bottleneck, rel=1e-9)
