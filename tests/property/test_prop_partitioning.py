"""Property-based tests for tensor partitioning invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.layers import Conv2d, FullyConnected
from repro.partitioning.partition import (
    partition_affine,
    partition_elementwise,
)
from repro.partitioning.receptive import required_inputs
from repro.scaling.fixed_point import scaled_affine_for_layer


class TestCoverageProperties:
    @settings(max_examples=40, deadline=None)
    @given(out_features=st.integers(min_value=1, max_value=40),
           in_features=st.integers(min_value=1, max_value=20),
           threads=st.integers(min_value=1, max_value=12),
           input_partitioning=st.booleans())
    def test_every_output_exactly_once(self, out_features, in_features,
                                       threads, input_partitioning):
        layer = FullyConnected(in_features, out_features,
                               rng=np.random.default_rng(0))
        affine = scaled_affine_for_layer(layer, (in_features,), 3)
        tasks = partition_affine(affine, threads, input_partitioning)
        outputs = sorted(
            i for task in tasks for i in task.output_indices
        )
        assert outputs == list(range(out_features))

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(min_value=1, max_value=200),
           threads=st.integers(min_value=1, max_value=16))
    def test_elementwise_partition_covers(self, size, threads):
        tasks = partition_elementwise(size, threads)
        covered = sorted(
            i for task in tasks for i in task.output_indices
        )
        assert covered == list(range(size))
        sizes = [task.output_elements for task in tasks]
        assert max(sizes) - min(sizes) <= 1


class TestReceptiveFieldProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        in_c=st.integers(min_value=1, max_value=3),
        out_c=st.integers(min_value=1, max_value=3),
        hw=st.integers(min_value=3, max_value=7),
        kernel=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2 ** 20),
    )
    def test_conv_receptive_matches_dense_support(
        self, in_c, out_c, hw, kernel, stride, padding, seed
    ):
        """For arbitrary conv geometry, the analytic receptive field of
        every output equals (a superset of) the non-zero columns of the
        unrolled dense matrix, and never exceeds kernel^2 * in_c."""
        if kernel > hw + 2 * padding:
            return
        layer = Conv2d(in_c, out_c, kernel=kernel, stride=stride,
                       padding=padding,
                       rng=np.random.default_rng(seed))
        shape = (in_c, hw, hw)
        affine = scaled_affine_for_layer(layer, shape, 6)
        for flat in range(0, affine.out_dim,
                          max(affine.out_dim // 5, 1)):
            dense = set(
                int(i) for i in np.flatnonzero(affine.weight[flat])
            )
            analytic = required_inputs(layer, shape, [flat])
            assert dense <= analytic
            assert len(analytic) <= in_c * kernel * kernel

    @settings(max_examples=20, deadline=None)
    @given(
        hw=st.integers(min_value=4, max_value=8),
        threads=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2 ** 20),
    )
    def test_partitioned_conv_never_ships_more_than_whole(
        self, hw, threads, seed
    ):
        """Per-thread receptive fields are never larger than the full
        input, and tensor partitioning never ships more in total than
        the no-partitioning y x input baseline."""
        from repro.partitioning.receptive import \
            partitioned_input_elements

        layer = Conv2d(1, 2, kernel=3, stride=1, padding=1,
                       rng=np.random.default_rng(seed))
        shape = (1, hw, hw)
        out_size = int(np.prod(layer.output_shape(shape)))
        counts = partitioned_input_elements([layer], [shape], out_size,
                                            threads)
        input_size = hw * hw
        assert all(count <= input_size for count in counts)
        assert sum(counts) <= min(threads, out_size) * input_size
