"""Property-based tests for permutations and the obfuscation protocol."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.obfuscation.obfuscator import Obfuscator
from repro.obfuscation.permutation import Permutation


class TestPermutationProperties:
    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(min_value=1, max_value=200),
           seed=st.integers(min_value=0, max_value=2 ** 40))
    def test_invert_is_inverse(self, length, seed):
        permutation = Permutation.random(length, seed)
        items = list(range(length))
        assert permutation.invert(permutation.apply(items)) == items
        assert permutation.apply(permutation.invert(items)) == items

    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(min_value=1, max_value=100),
           seed=st.integers(min_value=0, max_value=2 ** 40))
    def test_multiset_preserved(self, length, seed):
        permutation = Permutation.random(length, seed)
        values = np.random.default_rng(seed % 2 ** 31).standard_normal(
            length
        )
        assert sorted(permutation.apply_array(values)) == \
            sorted(values)

    @settings(max_examples=30, deadline=None)
    @given(length=st.integers(min_value=2, max_value=50),
           seed_a=st.integers(min_value=0, max_value=2 ** 30),
           seed_b=st.integers(min_value=0, max_value=2 ** 30))
    def test_composition_associativity(self, length, seed_a, seed_b):
        p = Permutation.random(length, seed_a)
        q = Permutation.random(length, seed_b)
        items = list(range(length))
        assert p.compose(q).apply(items) == p.apply(q.apply(items))

    @settings(max_examples=30, deadline=None)
    @given(length=st.integers(min_value=1, max_value=60),
           seed=st.integers(min_value=0, max_value=2 ** 40))
    def test_double_inverse_is_original(self, length, seed):
        permutation = Permutation.random(length, seed)
        assert permutation.inverse().inverse() == permutation


class TestObfuscatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(master=st.integers(min_value=0, max_value=2 ** 40),
           lengths=st.lists(st.integers(min_value=1, max_value=40),
                            min_size=1, max_size=6))
    def test_rounds_always_invert(self, master, lengths):
        """Any sequence of rounds with any tensor lengths inverts
        correctly, in any completion order."""
        obfuscator = Obfuscator(master)
        pending = []
        for length in lengths:
            items = list(range(length))
            round_id, permuted = obfuscator.obfuscate(items)
            pending.append((round_id, items, permuted))
        for round_id, items, permuted in reversed(pending):
            assert obfuscator.deobfuscate(round_id, permuted) == items

    @settings(max_examples=20, deadline=None)
    @given(master=st.integers(min_value=0, max_value=2 ** 40))
    def test_elementwise_function_commutes(self, master):
        """ReLU(permute(x)) == permute(ReLU(x)) — the property that
        makes obfuscated non-linear stages correct (Section III-C)."""
        obfuscator = Obfuscator(master)
        rng = np.random.default_rng(master % 2 ** 31)
        values = rng.standard_normal(32)
        round_id, permuted = obfuscator.obfuscate(list(values))
        activated_permuted = [max(v, 0.0) for v in permuted]
        recovered = obfuscator.deobfuscate(round_id, activated_permuted)
        assert np.allclose(recovered, np.maximum(values, 0.0))
