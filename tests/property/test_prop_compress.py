"""Property-based tests for the compression-aware engine path.

The load-bearing claim of the compressed matvecs: for ANY integer
weight matrix — dense, pruned, clustered, signed, degenerate — the
sparse-plan evaluation is **bit-identical** to the dense engine path
on the same ciphertexts, scalar and packed alike.  Hypothesis drives
random matrices, sparsity patterns, and cluster palettes through
:meth:`fc_matvec` / :meth:`conv_im2col` / :meth:`fc_matvec_packed`
and compares raw ciphertexts (not just decoded values).
"""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.encoding import LanePacker
from repro.crypto.engine import PaillierEngine
from repro.crypto.paillier import generate_keypair
from repro.crypto.sparse import SparseMatvecPlan
from repro.scaling import cluster_values

PUBLIC, PRIVATE = generate_keypair(128, seed=2024)

dims = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2 ** 31)
#: Weight cells: signed, zero-heavy (pruning look-alike patterns).
weight_cells = st.one_of(
    st.just(0),
    st.integers(min_value=-(10 ** 4), max_value=10 ** 4),
)
#: Small palettes imitate clustering: few distinct signed values.
palettes = st.lists(
    st.integers(min_value=-(10 ** 5), max_value=10 ** 5).filter(bool),
    min_size=1, max_size=3, unique=True,
)


def make_engine():
    return PaillierEngine(PUBLIC, private_key=PRIVATE, seed=3)


def matrix_from(data, out_dim, in_dim, cells=weight_cells):
    rows = data.draw(st.lists(
        st.lists(cells, min_size=in_dim, max_size=in_dim),
        min_size=out_dim, max_size=out_dim,
    ))
    return rows


def encrypt(engine, values, seed):
    return engine.raw_encrypt_many(values, rng=random.Random(seed))


class TestCompressedMatchesDense:
    @settings(max_examples=25, deadline=None)
    @given(out_dim=dims, in_dim=dims, seed=seeds, data=st.data())
    def test_fc_matvec_bit_identical(self, out_dim, in_dim, seed,
                                     data):
        weights = matrix_from(data, out_dim, in_dim)
        engine = make_engine()
        rng = random.Random(seed)
        cells = encrypt(engine,
                        [rng.randrange(PUBLIC.n)
                         for _ in range(in_dim)], seed)
        bias = encrypt(engine,
                       [rng.randrange(PUBLIC.n)
                        for _ in range(out_dim)], seed + 1)
        assert engine.fc_matvec(cells, weights, bias) \
            == engine.matvec(cells, weights, bias)

    @settings(max_examples=25, deadline=None)
    @given(out_dim=dims, in_dim=dims, seed=seeds, data=st.data())
    def test_conv_im2col_bit_identical(self, out_dim, in_dim, seed,
                                       data):
        """Clustered palette weights (the conv regime: few distinct
        values repeated across output positions)."""
        palette = data.draw(palettes)
        weights = matrix_from(
            data, out_dim, in_dim,
            cells=st.one_of(st.just(0), st.sampled_from(palette)),
        )
        engine = make_engine()
        rng = random.Random(seed)
        cells = encrypt(engine,
                        [rng.randrange(PUBLIC.n)
                         for _ in range(in_dim)], seed)
        bias = encrypt(engine,
                       [rng.randrange(PUBLIC.n)
                        for _ in range(out_dim)], seed + 1)
        assert engine.conv_im2col(cells, weights, bias) \
            == engine.matvec(cells, weights, bias)

    @settings(max_examples=15, deadline=None)
    @given(out_dim=dims, in_dim=dims, seed=seeds, data=st.data())
    def test_prebuilt_plan_equals_from_dense(self, out_dim, in_dim,
                                             seed, data):
        weights = matrix_from(data, out_dim, in_dim)
        engine = make_engine()
        cells = encrypt(engine, list(range(1, in_dim + 1)), seed)
        bias = encrypt(engine, [0] * out_dim, seed + 1)
        plan = SparseMatvecPlan.from_dense(weights)
        assert engine.fc_matvec(cells, plan=plan, bias=bias) \
            == engine.fc_matvec(cells, weights, bias)

    @settings(max_examples=15, deadline=None)
    @given(out_dim=dims, in_dim=dims, seed=seeds, data=st.data())
    def test_power_cache_reuse_stays_bit_identical(self, out_dim,
                                                   in_dim, seed, data):
        """A warm cache must return the same ciphertexts as a cold
        one — cached tables are pure precomputation."""
        weights = matrix_from(data, out_dim, in_dim)
        engine = make_engine()
        cells = encrypt(engine,
                        [seed % PUBLIC.n] * in_dim, seed)
        bias = encrypt(engine, [1] * out_dim, seed + 1)
        cold = engine.fc_matvec(cells, weights, bias)
        warm = engine.fc_matvec(cells, weights, bias)
        engine.reset_power_cache()
        reset = engine.fc_matvec(cells, weights, bias)
        assert cold == warm == reset


class TestPackedCompressed:
    @settings(max_examples=20, deadline=None)
    @given(out_dim=dims, in_dim=dims, seed=seeds, data=st.data())
    def test_fc_matvec_packed_plan_bit_identical(self, out_dim, in_dim,
                                                 seed, data):
        """The packed plan path (compressed product + plan row sums)
        equals the dense packed path, ciphertext for ciphertext."""
        weights = matrix_from(
            data, out_dim, in_dim,
            cells=st.one_of(st.just(0),
                            st.integers(min_value=-9, max_value=9)),
        )
        packer = LanePacker(PUBLIC, lanes=2, mag_bits=16,
                            guard_bits=24)
        engine = make_engine()
        rng = random.Random(seed)
        bound = 1 << 8
        batches = [[rng.randrange(-bound, bound) for _ in range(2)]
                   for _ in range(in_dim)]
        bias_batches = [[rng.randrange(-bound, bound)
                         for _ in range(2)] for _ in range(out_dim)]
        cells = engine.raw_encrypt_many(
            [packer.pack(b) for b in batches], random.Random(seed))
        bias = engine.raw_encrypt_many(
            [packer.pack(b) for b in bias_batches],
            random.Random(seed + 1))
        dense = engine.fc_matvec_packed(cells, weights, bias, packer)
        plan = SparseMatvecPlan.from_dense(weights)
        compressed = engine.fc_matvec_packed(
            cells, None, bias, packer, plan=plan)
        assert compressed == dense
        # and the lanes decode to the plaintext affine
        decoded = [packer.unpack(r, count=2)
                   for r in engine.raw_decrypt_many(compressed)]
        expected = (np.array(weights) @ np.array(batches)
                    + np.array(bias_batches))
        assert decoded == expected.tolist()


class TestClusteringFeedsThePlan:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, data=st.data())
    def test_clustered_matrix_caps_plan_clusters(self, seed, data):
        values = data.draw(st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=4, max_size=30,
        ))
        arr = np.array(values, dtype=np.float64)
        quantized, centers = cluster_values(arr, 4, seed=seed % 1000)
        matrix = np.rint(quantized).astype(np.int64).reshape(1, -1)
        plan = SparseMatvecPlan.from_dense(matrix)
        assert plan.distinct_values <= len(centers)
