"""Property-based tests for lane packing (hypothesis).

Three ISSUE-mandated properties:

1. pack/unpack round-trips arbitrary signed lane values (negatives
   included) for arbitrary admissible lane geometries.
2. Lane carries never occur at the advertised headroom: summing up to
   ``2**guard_bits`` packed operands whose magnitudes respect
   ``mag_bits`` stays decodable — the guard-bit sizing rule is tight.
3. Packed FC/conv decode is value-identical to the unpacked
   per-sample reference under a fixed seed.
"""

import random

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.crypto.encoding import LanePacker
from repro.crypto.engine import PaillierEngine
from repro.crypto.paillier import generate_keypair
from repro.crypto.tensor import EncryptedTensor, PackedEncryptedTensor

PUBLIC, PRIVATE = generate_keypair(128, seed=2025)

lane_geometries = st.tuples(
    st.integers(min_value=1, max_value=6),   # lanes
    st.integers(min_value=1, max_value=18),  # mag_bits
    st.integers(min_value=0, max_value=4),   # guard_bits
)


def _admissible(lanes: int, mag_bits: int, guard_bits: int) -> bool:
    """The geometry fits the 128-bit test modulus."""
    return lanes * (mag_bits + guard_bits + 1) \
        <= PUBLIC.n.bit_length() - 1


class TestLanePackerProperties:
    @settings(max_examples=60, deadline=None)
    @given(geometry=lane_geometries, data=st.data())
    def test_round_trip_with_negatives(self, geometry, data):
        lanes, mag_bits, guard_bits = geometry
        assume(_admissible(lanes, mag_bits, guard_bits))
        packer = LanePacker(PUBLIC, lanes=lanes, mag_bits=mag_bits,
                            guard_bits=guard_bits)
        bound = packer.max_magnitude
        values = data.draw(st.lists(
            st.integers(min_value=-bound, max_value=bound),
            min_size=1, max_size=lanes,
        ))
        got = packer.unpack(packer.pack(values), count=len(values))
        assert got == values

    @settings(max_examples=40, deadline=None)
    @given(
        mag_bits=st.integers(min_value=1, max_value=12),
        guard_bits=st.integers(min_value=0, max_value=4),
        data=st.data(),
    )
    def test_no_lane_carry_at_advertised_headroom(self, mag_bits,
                                                  guard_bits, data):
        """Summing 2**guard_bits in-range operands (offsets rebalanced
        the way homomorphic addition does) never carries between lanes
        — each lane decodes to the exact elementwise sum."""
        lanes = 3
        packer = LanePacker(PUBLIC, lanes=lanes, mag_bits=mag_bits,
                            guard_bits=guard_bits)
        bound = (1 << mag_bits) - 1
        terms = data.draw(st.lists(
            st.lists(st.integers(min_value=-bound, max_value=bound),
                     min_size=lanes, max_size=lanes),
            min_size=1, max_size=1 << guard_bits,
        ))
        # Emulate the homomorphic chain on plain residues: add packed
        # residues, then rebias the accumulated extra offsets away —
        # exactly what PackedEncryptedTensor.add does mod n.
        total = 0
        for operand in terms:
            total += packer.pack(operand)
        total -= (len(terms) - 1) * packer.offset * packer.ones_mask
        sums = [sum(col) for col in zip(*terms)]
        assert packer.unpack(total) == sums

    @settings(max_examples=40, deadline=None)
    @given(geometry=lane_geometries,
           delta=st.integers(min_value=-(10 ** 9), max_value=10 ** 9))
    def test_rebias_residue_in_zn(self, geometry, delta):
        lanes, mag_bits, guard_bits = geometry
        assume(_admissible(lanes, mag_bits, guard_bits))
        packer = LanePacker(PUBLIC, lanes=lanes, mag_bits=mag_bits,
                            guard_bits=guard_bits)
        residue = packer.rebias_residue(delta)
        assert 0 <= residue < PUBLIC.n
        assert residue == (delta * packer.ones_mask) % PUBLIC.n


class TestPackedDecodeIdentical:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=3),
        in_dim=st.integers(min_value=1, max_value=5),
        out_dim=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 31),
    )
    def test_fc_packed_matches_unpacked(self, batch, in_dim, out_dim,
                                        seed):
        """Packed FC decode == unpacked per-sample decode, same seed."""
        rng = random.Random(seed)
        xs = np.array(
            [[rng.randrange(-100, 100) for _ in range(in_dim)]
             for _ in range(batch)], dtype=np.int64,
        )
        weight = np.array(
            [[rng.randrange(-50, 50) for _ in range(in_dim)]
             for _ in range(out_dim)], dtype=np.int64,
        )
        bias = np.array([rng.randrange(-500, 500)
                         for _ in range(out_dim)], dtype=np.int64)
        bound = in_dim * 100 * 50 + 500
        packer = LanePacker(PUBLIC, lanes=batch,
                            mag_bits=bound.bit_length())
        engine = PaillierEngine(PUBLIC, private_key=PRIVATE,
                                seed=seed)
        packed = PackedEncryptedTensor.encrypt_batch(
            xs, packer, engine=engine
        ).affine(weight, bias, engine=engine).decrypt(PRIVATE,
                                                      engine=engine)
        unpacked = np.stack([
            EncryptedTensor.encrypt(x, PUBLIC, engine=engine)
            .affine(weight, bias, engine=engine)
            .decrypt(PRIVATE, engine=engine)
            for x in xs
        ])
        assert packed.tolist() == unpacked.tolist()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_conv_packed_matches_unpacked(self, seed):
        """A stride-1 valid conv expressed as gather+affine decodes
        identically packed and unpacked (same seed)."""
        rng = random.Random(seed)
        batch, width, kernel = 2, 6, 3
        xs = np.array(
            [[rng.randrange(-50, 50) for _ in range(width)]
             for _ in range(batch)], dtype=np.int64,
        )
        taps = np.array([rng.randrange(-20, 20) for _ in range(kernel)],
                        dtype=np.int64)
        out_w = width - kernel + 1
        # im2col matrix: row j applies the kernel at offset j.
        weight = np.zeros((out_w, width), dtype=np.int64)
        for j in range(out_w):
            weight[j, j:j + kernel] = taps
        bias = np.zeros(out_w, dtype=np.int64)
        bound = kernel * 50 * 20 + 1
        packer = LanePacker(PUBLIC, lanes=batch,
                            mag_bits=bound.bit_length())
        engine = PaillierEngine(PUBLIC, private_key=PRIVATE,
                                seed=seed)
        packed = PackedEncryptedTensor.encrypt_batch(
            xs, packer, engine=engine
        ).affine(weight, bias, engine=engine).decrypt(PRIVATE,
                                                      engine=engine)
        unpacked = np.stack([
            EncryptedTensor.encrypt(x, PUBLIC, engine=engine)
            .affine(weight, bias, engine=engine)
            .decrypt(PRIVATE, engine=engine)
            for x in xs
        ])
        assert packed.tolist() == unpacked.tolist()
