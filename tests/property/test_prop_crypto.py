"""Property-based tests for the crypto substrate (hypothesis).

The Paillier keypair is generated once (module scope, 128-bit) and each
property is exercised over hypothesis-generated plaintexts/scalars.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.encoding import FixedPointEncoder, SignedEncoder
from repro.crypto.paillier import generate_keypair

PUBLIC, PRIVATE = generate_keypair(128, seed=2024)
MAX_SIGNED = (PUBLIC.n - 1) // 2

signed_values = st.integers(min_value=-(10 ** 15),
                            max_value=10 ** 15)
small_scalars = st.integers(min_value=-(10 ** 6), max_value=10 ** 6)


def fresh_rng(data: int) -> random.Random:
    return random.Random(data)


class TestPaillierProperties:
    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(min_value=0, max_value=10 ** 18),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_round_trip(self, m, seed):
        rng = fresh_rng(seed)
        assert PRIVATE.decrypt(PUBLIC.encrypt(m, rng)) == m

    @settings(max_examples=40, deadline=None)
    @given(m1=st.integers(min_value=0, max_value=10 ** 15),
           m2=st.integers(min_value=0, max_value=10 ** 15),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_additive_homomorphism(self, m1, m2, seed):
        rng = fresh_rng(seed)
        total = PUBLIC.encrypt(m1, rng) + PUBLIC.encrypt(m2, rng)
        assert PRIVATE.decrypt(total) == m1 + m2

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(min_value=0, max_value=10 ** 12),
           w=st.integers(min_value=0, max_value=10 ** 6),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_scalar_homomorphism(self, m, w, seed):
        rng = fresh_rng(seed)
        assert PRIVATE.decrypt(PUBLIC.encrypt(m, rng) * w) == w * m

    @settings(max_examples=30, deadline=None)
    @given(m1=st.integers(min_value=0, max_value=10 ** 10),
           m2=st.integers(min_value=0, max_value=10 ** 10),
           w=st.integers(min_value=0, max_value=10 ** 4),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_distributivity(self, m1, m2, w, seed):
        """(E(m1) * E(m2))^w decrypts to w*(m1+m2)."""
        rng = fresh_rng(seed)
        combined = (PUBLIC.encrypt(m1, rng) + PUBLIC.encrypt(m2, rng)) \
            * w
        assert PRIVATE.decrypt(combined) == w * (m1 + m2)


class TestSignedEncodingProperties:
    @settings(max_examples=50, deadline=None)
    @given(value=signed_values)
    def test_encode_decode_identity(self, value):
        encoder = SignedEncoder(PUBLIC)
        assert encoder.decode(encoder.encode(value)) == value

    @settings(max_examples=40, deadline=None)
    @given(a=small_scalars, b=small_scalars,
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_signed_homomorphic_addition(self, a, b, seed):
        rng = fresh_rng(seed)
        encoder = SignedEncoder(PUBLIC)
        total = PUBLIC.encrypt(encoder.encode(a), rng) \
            + PUBLIC.encrypt(encoder.encode(b), rng)
        assert encoder.decode(PRIVATE.decrypt(total)) == a + b

    @settings(max_examples=40, deadline=None)
    @given(m=small_scalars, w=st.integers(min_value=-1000,
                                          max_value=1000),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_signed_scalar_multiplication(self, m, w, seed):
        rng = fresh_rng(seed)
        encoder = SignedEncoder(PUBLIC)
        cipher = PUBLIC.encrypt(encoder.encode(m), rng) * w
        assert encoder.decode(PRIVATE.decrypt(cipher)) == w * m


class TestFixedPointProperties:
    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-1000, max_value=1000,
                           allow_nan=False, allow_infinity=False),
           exponent=st.integers(min_value=0, max_value=6))
    def test_quantization_error_bounded(self, value, exponent):
        encoder = FixedPointEncoder(PUBLIC, exponent)
        decoded = encoder.decode(encoder.encode(value))
        assert abs(decoded - value) <= 0.5 * 10 ** -exponent + 1e-12
