"""Property-based tests for the 2PC baseline substrates."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.garbled import (
    CircuitBuilder,
    build_relu_circuit,
    evaluate_garbled,
    garble,
)
from repro.baselines.secret_sharing import SecretSharingEngine


def to_bits(value: int, bits: int) -> list[int]:
    value &= (1 << bits) - 1
    return [(value >> i) & 1 for i in range(bits)]


def from_bits(bits_list) -> int:
    return sum(bit << i for i, bit in enumerate(bits_list))


class TestSecretSharingProperties:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(min_value=-(2 ** 40),
                                       max_value=2 ** 40),
                           min_size=1, max_size=32),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_share_reconstruct_identity(self, values, seed):
        engine = SecretSharingEngine(seed=seed)
        array = np.array(values, dtype=np.int64)
        s0, s1 = engine.share(array)
        assert np.array_equal(engine.reconstruct(s0, s1), array)

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(st.integers(min_value=-(2 ** 20),
                                  max_value=2 ** 20),
                      min_size=1, max_size=16),
           b=st.lists(st.integers(min_value=-(2 ** 20),
                                  max_value=2 ** 20),
                      min_size=1, max_size=16),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_beaver_product_correct(self, a, b, seed):
        size = min(len(a), len(b))
        engine = SecretSharingEngine(seed=seed)
        av = np.array(a[:size], dtype=np.int64)
        bv = np.array(b[:size], dtype=np.int64)
        a0, a1 = engine.share(av)
        b0, b1 = engine.share(bv)
        z0, z1 = engine.multiply(a0, a1, b0, b1)
        assert np.array_equal(engine.reconstruct(z0, z1), av * bv)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31),
           rows=st.integers(min_value=1, max_value=6),
           cols=st.integers(min_value=1, max_value=6))
    def test_matmul_shared_correct(self, seed, rows, cols):
        engine = SecretSharingEngine(seed=seed)
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-1000, 1000, (rows, cols))
        vector = rng.integers(-1000, 1000, cols)
        w0, w1 = engine.share(matrix)
        x0, x1 = engine.share(vector)
        z0, z1 = engine.matmul_shared(w0, w1, x0, x1)
        assert np.array_equal(engine.reconstruct(z0, z1),
                              matrix @ vector)


class TestGarbledCircuitProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31),
           gates=st.integers(min_value=1, max_value=25),
           inputs=st.integers(min_value=2, max_value=8))
    def test_random_circuit_garbles_correctly(self, seed, gates,
                                              inputs):
        """Any random XOR/AND circuit evaluates identically garbled
        and in plaintext."""
        rng = np.random.default_rng(seed)
        builder = CircuitBuilder(inputs)
        wires = list(range(inputs))
        for _ in range(gates):
            a = int(rng.integers(0, len(wires)))
            b = int(rng.integers(0, len(wires)))
            if rng.integers(0, 2):
                wires.append(builder.xor(wires[a], wires[b]))
            else:
                wires.append(builder.and_(wires[a], wires[b]))
        circuit = builder.finish(wires[-3:])
        garbled = garble(circuit, seed=str(seed).encode())
        bits = [int(v) for v in rng.integers(0, 2, inputs)]
        plain = circuit.evaluate_plain(bits)
        labels = garbled.input_labels(bits)
        assert garbled.decode(evaluate_garbled(garbled, labels)) == \
            plain

    @settings(max_examples=25, deadline=None)
    @given(x=st.integers(min_value=-(2 ** 13), max_value=2 ** 13),
           share=st.integers(min_value=0, max_value=2 ** 16 - 1),
           mask=st.integers(min_value=0, max_value=2 ** 16 - 1))
    def test_relu_circuit_reshares_correctly(self, x, share, mask):
        """For any share split and output mask, the opened output plus
        the mask reconstructs ReLU(x) mod 2^16."""
        bits = 16
        circuit = build_relu_circuit(bits)
        other = (x - share) % (1 << bits)
        out = circuit.evaluate_plain(
            to_bits(share, bits) + to_bits(other, bits)
            + to_bits(mask, bits)
        )
        reconstructed = (from_bits(out) + mask) % (1 << bits)
        assert reconstructed == max(x, 0) % (1 << bits)
