"""Property-based tests for the observability layer.

Two invariants, exercised on random workloads:

* **terminal accounting** — the ``stream_terminal_seconds`` histogram
  is observed exactly once per request, at its terminal stage (the
  dead-letter site, or the stage that set the result), so the sum of
  its per-stage counts equals completed + dead-lettered;
* **lossless snapshots** — any registry's :meth:`snapshot` survives a
  JSON encode/decode + :meth:`from_snapshot` rebuild bit-identically.
"""

from __future__ import annotations

import json
import time

from hypothesis import given, settings, strategies as st

from repro.errors import PoisonedRequestError, TransientStageError
from repro.observability import Observability
from repro.observability.metrics import MetricsRegistry
from repro.stream.channel import Channel, ChannelClosed
from repro.stream.retry import RetryPolicy
from repro.stream.worker import StageWorker


class _Item:
    """Minimal stream item (the worker uses getattr protocols)."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self.enqueue_time = time.perf_counter()
        self.result = None
        self.fault = None
        self.trace_id = None
        self.trace_parent = None


class _ScriptedExecutor:
    """Per-request scripted behaviour at one stage.

    ``script[request_id]`` is ``(transient_failures, poison)``: fail
    transiently that many times first, then either poison (permanent,
    dead-letters the request) or succeed.
    """

    def __init__(self, stage_index: int, num_stages: int, script):
        self.stage_index = stage_index
        self.num_stages = num_stages
        self.script = script
        self._attempts: dict[int, int] = {}

    def process(self, item):
        failures, poison = self.script.get(item.request_id, (0, False))
        seen = self._attempts.get(item.request_id, 0)
        self._attempts[item.request_id] = seen + 1
        if seen < failures:
            raise TransientStageError(
                f"flake {seen + 1}/{failures} at stage "
                f"{self.stage_index}"
            )
        if poison:
            raise PoisonedRequestError(
                f"poisoned request {item.request_id}"
            )
        if self.stage_index == self.num_stages - 1:
            item.result = [float(item.request_id)]
        return item


def _run_workload(num_stages, num_items, scripts, obs):
    """Drive items through a chain of StageWorkers; returns
    (completed, dead_lettered) counts."""
    channels = [Channel(capacity=num_items + 1)
                for _ in range(num_stages + 1)]
    policy = RetryPolicy(max_retries=4, base_delay=0.0, jitter=0.0)
    workers = [
        StageWorker(
            name=f"prop-stage-{index}",
            executor=_ScriptedExecutor(index, num_stages,
                                       scripts[index]),
            inbound=channels[index],
            outbound=channels[index + 1],
            retry_policy=policy,
            dead_letter=True,
            stage_index=index,
            seed=index,
            obs=obs,
        )
        for index in range(num_stages)
    ]
    for worker in workers:
        worker.start()
    for request_id in range(num_items):
        channels[0].put(_Item(request_id))
    channels[0].close()
    completed = dead = 0
    while True:
        try:
            item = channels[-1].get(timeout=10)
        except ChannelClosed:
            break
        if item.fault is not None:
            dead += 1
        else:
            completed += 1
    for worker in workers:
        worker.join(timeout=10)
    return completed, dead


@st.composite
def workloads(draw):
    num_stages = draw(st.integers(min_value=1, max_value=4))
    num_items = draw(st.integers(min_value=1, max_value=8))
    scripts = []
    for _ in range(num_stages):
        script = {}
        for request_id in range(num_items):
            failures = draw(st.integers(min_value=0, max_value=2))
            poison = draw(st.booleans())
            if failures or poison:
                script[request_id] = (failures, poison)
        scripts.append(script)
    return num_stages, num_items, scripts


class TestTerminalAccounting:
    @settings(max_examples=15, deadline=None)
    @given(workload=workloads())
    def test_terminal_histogram_counts_every_request_once(
            self, workload):
        num_stages, num_items, scripts = workload
        obs = Observability(enabled=True)
        completed, dead = _run_workload(num_stages, num_items,
                                        scripts, obs)
        assert completed + dead == num_items

        snapshot = obs.registry.snapshot()
        terminal = [h for h in snapshot["histograms"]
                    if h["name"] == "stream_terminal_seconds"]
        assert sum(h["count"] for h in terminal) == completed + dead

        # Cross-check the counters against the run's outcome too.
        dead_counters = [c for c in snapshot["counters"]
                         if c["name"] == "stream_dead_letters"]
        assert sum(c["value"] for c in dead_counters) == dead

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads())
    def test_service_histogram_counts_items_each_stage_processed(
            self, workload):
        """Each stage's service histogram records one observation per
        live item it processed (retries stay within that one
        observation; tombstones pass through unobserved)."""
        num_stages, num_items, scripts = workload
        obs = Observability(enabled=True)
        _run_workload(num_stages, num_items, scripts, obs)
        snapshot = obs.registry.snapshot()
        service = {h["labels"]["stage"]: h["count"]
                   for h in snapshot["histograms"]
                   if h["name"] == "stream_stage_service_seconds"}
        # Stage 0 sees every item; later stages see whatever earlier
        # stages did not dead-letter.
        alive = num_items
        for index in range(num_stages):
            assert service.get(str(index), 0) == alive
            alive -= _dead_at_stage(scripts, index, num_items)
        assert alive >= 0


def _dead_at_stage(scripts, stage_index, num_items) -> int:
    """How many requests die exactly at ``stage_index``: poisoned
    there and not already dead earlier."""
    dead = 0
    for request_id in range(num_items):
        died_earlier = any(
            scripts[earlier].get(request_id, (0, False))[1]
            for earlier in range(stage_index)
        )
        if died_earlier:
            continue
        if scripts[stage_index].get(request_id, (0, False))[1]:
            dead += 1
    return dead


class TestSnapshotRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        counters=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]),
                      st.sampled_from(["", "0", "1"]),
                      st.floats(min_value=0, max_value=1e9,
                                allow_nan=False)),
            max_size=8,
        ),
        gauges=st.lists(
            st.tuples(st.sampled_from(["g", "h"]),
                      st.floats(min_value=-1e9, max_value=1e9,
                                allow_nan=False)),
            max_size=5,
        ),
        observations=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            max_size=30,
        ),
    )
    def test_snapshot_json_round_trip_is_lossless(
            self, counters, gauges, observations):
        registry = MetricsRegistry()
        for name, stage, amount in counters:
            if stage:
                registry.counter(name, stage=stage).inc(amount)
            else:
                registry.counter(name).inc(amount)
        for name, value in gauges:
            registry.gauge(name).set(value)
        histogram = registry.histogram("lat",
                                       buckets=(0.5, 5.0, 50.0))
        for value in observations:
            histogram.observe(value)

        snapshot = registry.snapshot()
        decoded = json.loads(json.dumps(snapshot))
        rebuilt = MetricsRegistry.from_snapshot(decoded)
        assert rebuilt.snapshot() == snapshot
        # And the rebuilt registry keeps exporting identically.
        assert rebuilt.to_prometheus() == registry.to_prometheus()
