"""Property-based failover correctness.

For any combination of model-worker crash points (including "never"),
as long as the respawn budget covers the crashes, the distributed
stream must produce results bit-identical to the single-process
pipeline with zero dead letters — worker death is invisible to the
caller.  Holds because deobfuscation is stateless (a pure function of
seed, round id, and length) and all arithmetic is integer-exact.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import RuntimeConfig
from repro.net import Coordinator, WorkerServer
from repro.nn import model_zoo
from repro.planner.allocation import allocate_even
from repro.planner.plan import ClusterSpec
from repro.protocol import DataProvider, ModelProvider
from repro.stream import Pipeline, RetryPolicy

# Module-level lazy state instead of function-scoped fixtures:
# hypothesis reuses the test function across examples, and the model /
# reference results are example-independent anyway.
_STATE = {}


def _state():
    if not _STATE:
        model = model_zoo.conv_fc((1, 8, 8), 3, conv_channels=(2,),
                                  fc_hidden=8, seed=3,
                                  name="prop-conv")
        config = RuntimeConfig(key_size=128, seed=78).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        )
        rng = np.random.default_rng(5)
        inputs = [rng.uniform(0, 1, (1, 8, 8)) for _ in range(5)]

        def providers():
            return (ModelProvider(model, decimals=2, config=config),
                    DataProvider(value_decimals=2, config=config))

        plan = allocate_even(
            providers()[0].stages, ClusterSpec.homogeneous(2, 1, 2)
        ).plan
        reference = Pipeline(*providers(), plan).run_stream(inputs)
        assert not reference.dead_letters
        _STATE.update(
            providers=providers, plan=plan, inputs=inputs,
            expected={r.request_id: r.probabilities
                      for r in reference.results},
        )
    return _STATE


class _Dying(WorkerServer):
    def __init__(self, die_after, **kwargs):
        super().__init__(**kwargs)
        self.die_after = die_after
        self.tasks_done = 0

    def _run_task(self, session, envelope):
        self.tasks_done += 1
        if self.tasks_done > self.die_after:
            self.stop(abort=True)
        return super()._run_task(session, envelope)


crash_points = st.one_of(st.none(), st.integers(min_value=1,
                                                max_value=6))


class TestFailoverProperty:
    @settings(max_examples=5, deadline=None)
    @given(die0=crash_points, die1=crash_points)
    def test_covered_crashes_are_invisible(self, die0, die1):
        state = _state()
        servers = [
            WorkerServer() if die is None else _Dying(die)
            for die in (die0, die1)
        ] + [WorkerServer()]
        spawned = []

        def respawn(server_id, role):
            replacement = WorkerServer()
            spawned.append(replacement)
            return replacement.start()

        try:
            addresses = [server.start() for server in servers]
            with Coordinator(
                    *state["providers"](), state["plan"], addresses,
                    respawn=respawn, worker_restart_budget=2,
                    retry_policy=RetryPolicy(max_retries=6,
                                             base_delay=0.05),
            ) as coordinator:
                stats = coordinator.run_stream(state["inputs"])
            assert not stats.dead_letters
            assert len(stats.results) == len(state["inputs"])
            for result in stats.results:
                assert np.array_equal(
                    result.probabilities,
                    state["expected"][result.request_id],
                )
        finally:
            for server in servers + spawned:
                server.stop(abort=True)
