"""Property-based end-to-end protocol correctness.

For randomly-shaped tiny models (random widths, random
permutation-compatible activations, random weights and inputs), the
collaborative encrypted inference must match the rounded-parameter
plaintext model exactly (up to float tolerance) — the paper's
correctness guarantee, quantified over the model space rather than a
fixed fixture.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RuntimeConfig
from repro.crypto.paillier import generate_keypair
from repro.nn.layers import (
    FullyConnected,
    LeakyReLU,
    ReLU,
    Sigmoid,
    SoftMax,
    Tanh,
)
from repro.nn.model import Sequential
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.parameter_scaling import round_parameters

_ACTIVATIONS = (ReLU, Sigmoid, Tanh, lambda: LeakyReLU(0.1))


@st.composite
def tiny_models(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=2, max_value=6))
              for _ in range(depth + 1)]
    activation_ids = [
        draw(st.integers(min_value=0, max_value=len(_ACTIVATIONS) - 1))
        for _ in range(depth)
    ]
    seed = draw(st.integers(min_value=0, max_value=2 ** 20))
    return widths, activation_ids, seed


class TestProtocolCorrectnessProperty:
    @settings(max_examples=8, deadline=None)
    @given(spec=tiny_models())
    def test_random_models_round_trip(self, spec):
        widths, activation_ids, seed = spec
        rng = np.random.default_rng(seed)
        model = Sequential((widths[0],))
        for depth_index in range(len(widths) - 1):
            model.add(FullyConnected(widths[depth_index],
                                     widths[depth_index + 1], rng=rng))
            model.add(_ACTIVATIONS[activation_ids[depth_index]]())
        model.add(FullyConnected(widths[-1], 3, rng=rng))
        model.add(SoftMax())

        decimals = 4
        config = RuntimeConfig(key_size=192, seed=seed)
        session = InferenceSession(
            ModelProvider(model, decimals=decimals, config=config),
            DataProvider(value_decimals=decimals, config=config),
        )
        x = rng.standard_normal(widths[0])
        outcome = session.run(x)
        expected = round_parameters(model, decimals).forward(
            np.round(x, decimals)[None]
        )[0]
        assert outcome.probabilities == pytest.approx(expected,
                                                      abs=1e-3)
        assert outcome.transcript.all_ciphertext()


# Key generation is the slow part of each example; share one pair for a
# quick smoke of determinism across repeated session constructions.
def test_sessions_are_deterministic_per_seed():
    rng = np.random.default_rng(0)
    model = Sequential((3,))
    model.add(FullyConnected(3, 4, rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(4, 2, rng=rng))
    model.add(SoftMax())
    x = rng.standard_normal(3)

    def run_once():
        config = RuntimeConfig(key_size=128, seed=1234)
        session = InferenceSession(
            ModelProvider(model, decimals=3, config=config),
            DataProvider(value_decimals=3, config=config),
        )
        return session.run(x)

    first, second = run_once(), run_once()
    assert np.allclose(first.probabilities, second.probabilities)
    assert first.prediction == second.prediction
