"""Test package: keeps every test module importable by dotted path
(guarded by tests/test_collection_guard.py)."""
