"""Unit tests for deterministic weight clustering.

Determinism is the load-bearing property: any two processes (planner,
stage replicas, property tests) must quantize a layer to bit-identical
weights given the same (values, clusters, seed), or the engine's
bit-identity guarantees collapse.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelError
from repro.nn.layers import Conv2d, Flatten, FullyConnected, ReLU
from repro.nn.model import Sequential
from repro.scaling import (
    DEFAULT_CLUSTERS,
    cluster_model,
    cluster_values,
)


class TestClusterValues:
    def test_deterministic_across_calls(self):
        values = np.random.default_rng(0).standard_normal(500)
        a_q, a_c = cluster_values(values, 8, seed=5)
        b_q, b_c = cluster_values(values.copy(), 8, seed=5)
        assert np.array_equal(a_q, b_q)
        assert np.array_equal(a_c, b_c)

    def test_different_seeds_may_differ_but_stay_valid(self):
        values = np.random.default_rng(1).standard_normal(300)
        for seed in (0, 1, 2):
            quantized, centers = cluster_values(values, 4, seed=seed)
            assert set(np.unique(quantized)) <= set(centers)
            assert len(centers) <= 4

    def test_centers_sorted_and_unique(self):
        values = np.random.default_rng(2).standard_normal(200)
        _, centers = cluster_values(values, 6, seed=0)
        assert np.array_equal(centers, np.unique(centers))

    def test_identity_when_few_distinct_values(self):
        values = np.array([1.0, 2.0, 1.0, 2.0, 3.0])
        quantized, centers = cluster_values(values, 8, seed=0)
        assert np.array_equal(quantized, values)
        assert np.array_equal(centers, [1.0, 2.0, 3.0])

    def test_every_value_maps_to_nearest_center(self):
        values = np.random.default_rng(3).standard_normal(400)
        quantized, centers = cluster_values(values, 5, seed=1)
        nearest = centers[
            np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        ]
        assert np.array_equal(quantized, nearest)

    def test_quantization_reduces_distinct_values(self):
        values = np.random.default_rng(4).standard_normal(1000)
        quantized, centers = cluster_values(values, 16, seed=0)
        assert len(np.unique(quantized)) <= 16
        assert values.shape == quantized.shape

    def test_empty_input(self):
        quantized, centers = cluster_values(np.empty(0), 4)
        assert quantized.size == 0
        assert centers.size == 0

    def test_constant_input(self):
        values = np.full(50, 3.25)
        quantized, centers = cluster_values(values, 4, seed=0)
        assert np.array_equal(quantized, values)
        assert np.array_equal(centers, [3.25])

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_values(np.ones(3), 0)
        with pytest.raises(ConfigurationError):
            cluster_values(np.ones(3), 2, iterations=0)


def conv_fc_model():
    rng = np.random.default_rng(7)
    model = Sequential((1, 6, 6), name="cluster-me")
    model.add(Conv2d(1, 2, kernel=3, rng=rng))
    model.add(ReLU())
    model.add(Flatten())
    model.add(FullyConnected(2 * 4 * 4, 3, rng=rng))
    for layer in model.layers:
        for param in layer.params():
            param[...] = rng.standard_normal(param.shape)
    return model


class TestClusterModel:
    def test_deterministic_under_master_seed(self):
        a, _ = cluster_model(conv_fc_model(), 4, seed=9)
        b, _ = cluster_model(conv_fc_model(), 4, seed=9)
        for la, lb in zip(a.layers, b.layers):
            for pa, pb in zip(la.params(), lb.params()):
                assert np.array_equal(pa, pb)

    def test_each_layer_capped_at_k_distinct(self):
        clustered, report = cluster_model(conv_fc_model(), 4, seed=0)
        assert report.requested_clusters == 4
        for layer, stats in zip(
                [l for l in clustered.layers
                 if isinstance(l, (Conv2d, FullyConnected))],
                report.layers):
            nonzero = layer.weight[layer.weight != 0.0]
            assert len(np.unique(nonzero)) <= 4
            assert stats.clusters <= 4

    def test_zeros_survive_clustering(self):
        model = conv_fc_model()
        fc = model.layers[-1]
        fc.weight[0, :10] = 0.0
        clustered, _ = cluster_model(model, 4, seed=0)
        assert np.array_equal(clustered.layers[-1].weight[0, :10] == 0.0,
                              np.full(10, True))
        # and no new zeros are introduced
        assert np.count_nonzero(clustered.layers[-1].weight == 0.0) \
            == np.count_nonzero(fc.weight == 0.0)

    def test_source_model_untouched(self):
        model = conv_fc_model()
        before = [p.copy() for layer in model.layers
                  for p in layer.params()]
        cluster_model(model, 4, seed=0)
        for a, b in zip(before, [p for layer in model.layers
                                 for p in layer.params()]):
            assert np.array_equal(a, b)

    def test_bias_not_clustered(self):
        model = conv_fc_model()
        clustered, _ = cluster_model(model, 2, seed=0)
        assert np.array_equal(model.layers[-1].bias,
                              clustered.layers[-1].bias)

    def test_accuracy_reported_when_data_given(self):
        model = conv_fc_model()
        rng = np.random.default_rng(11)
        x = rng.standard_normal((12, 1, 6, 6))
        y = rng.integers(0, 3, size=12)
        _, report = cluster_model(model, DEFAULT_CLUSTERS, seed=0,
                                  inputs=x, labels=y)
        assert report.baseline_accuracy is not None
        assert report.clustered_accuracy is not None
        assert report.accuracy_delta \
            == report.clustered_accuracy - report.baseline_accuracy

    def test_inputs_without_labels_rejected(self):
        with pytest.raises(ModelError):
            cluster_model(conv_fc_model(), 4,
                          inputs=np.zeros((1, 1, 6, 6)), labels=None)
