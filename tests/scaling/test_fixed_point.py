"""Unit tests for the scaled-integer affine forms of linear layers."""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ElementwiseScale,
    Flatten,
    FullyConnected,
    ReLU,
)
from repro.scaling.fixed_point import (
    scale_to_int,
    scaled_affine_for_layer,
)


class TestScaleToInt:
    def test_basic(self):
        result = scale_to_int(np.array([1.25, -0.5]), 2)
        assert np.array_equal(result, [125, -50])
        assert result.dtype == np.int64

    def test_rounding(self):
        assert scale_to_int(np.array([0.126]), 2)[0] == 13

    def test_overflow_detected(self):
        with pytest.raises(ScalingError):
            scale_to_int(np.array([1e18]), 6)

    def test_negative_decimals_rejected(self):
        with pytest.raises(ScalingError):
            scale_to_int(np.array([1.0]), -1)


class TestFullyConnectedAffine:
    def test_matches_float_layer(self):
        rng = np.random.default_rng(0)
        layer = FullyConnected(4, 3, rng=rng)
        affine = scaled_affine_for_layer(layer, (4,), 4)
        x = rng.standard_normal(4)
        x_int = scale_to_int(x, 4)
        out_int = affine.apply_plain(x_int, input_exponent=4)
        out_float = np.array(
            [int(v) for v in out_int.reshape(-1)]
        ) / 10 ** 8
        expected = layer.forward(x[None])[0]
        assert np.allclose(out_float, expected, atol=1e-3)

    def test_bias_scaled_to_output_exponent(self):
        layer = FullyConnected(1, 1)
        layer.weight[:] = [[1.0]]
        layer.bias[:] = [0.5]
        affine = scaled_affine_for_layer(layer, (1,), 2)
        # input exponent 3 -> bias must be at exponent 5
        assert affine.bias_at(3)[0] == 50000


class TestConvAffine:
    def test_matches_conv_forward(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(2, 3, kernel=2, stride=1, padding=1, rng=rng)
        affine = scaled_affine_for_layer(layer, (2, 4, 4), 5)
        x = rng.standard_normal((2, 4, 4))
        x_int = scale_to_int(x, 5)
        out_int = affine.apply_plain(x_int.reshape(-1),
                                     input_exponent=5)
        out_float = np.array(
            [int(v) for v in out_int.reshape(-1)], dtype=np.float64
        ).reshape(affine.output_shape) / 10 ** 10
        expected = layer.forward(x[None])[0]
        assert np.allclose(out_float, expected, atol=1e-3)

    def test_conv_rows_are_sparse(self):
        """The receptive-field locality that input partitioning uses."""
        layer = Conv2d(1, 1, kernel=2, stride=1, padding=0)
        affine = scaled_affine_for_layer(layer, (1, 4, 4), 6)
        nonzero_per_row = (affine.weight != 0).sum(axis=1)
        assert nonzero_per_row.max() <= 4


class TestOtherAffines:
    def test_batchnorm_diagonal(self):
        layer = BatchNorm(2)
        rng = np.random.default_rng(2)
        layer.running_mean = rng.standard_normal(2)
        layer.running_var = rng.uniform(0.5, 2.0, 2)
        affine = scaled_affine_for_layer(layer, (2, 3, 3), 4)
        x = rng.standard_normal((2, 3, 3))
        x_int = scale_to_int(x, 4)
        out_int = affine.apply_plain(x_int.reshape(-1), 4)
        out = np.array(
            [int(v) for v in out_int.reshape(-1)], dtype=np.float64
        ).reshape(2, 3, 3) / 10 ** 8
        expected = layer.forward(x[None])[0]
        assert np.allclose(out, expected, atol=1e-3)

    def test_avgpool_matrix(self):
        layer = AvgPool2d(2)
        affine = scaled_affine_for_layer(layer, (1, 4, 4), 4)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        x_int = scale_to_int(x, 0)
        out_int = affine.apply_plain(x_int.reshape(-1), 0)
        out = np.array(
            [int(v) for v in out_int.reshape(-1)], dtype=np.float64
        ).reshape(1, 2, 2) / 10 ** 4
        assert np.allclose(out, layer.forward(x[None])[0])

    def test_elementwise_scale(self):
        layer = ElementwiseScale(2.5)
        affine = scaled_affine_for_layer(layer, (3,), 1)
        assert np.array_equal(affine.weight,
                              np.eye(3, dtype=np.int64) * 25)

    def test_flatten_identity(self):
        affine = scaled_affine_for_layer(Flatten(), (2, 2), 0)
        assert np.array_equal(affine.weight, np.eye(4, dtype=np.int64))

    def test_nonlinear_rejected(self):
        with pytest.raises(ScalingError):
            scaled_affine_for_layer(ReLU(), (4,), 2)

    def test_input_size_mismatch_rejected(self):
        layer = FullyConnected(4, 2)
        affine = scaled_affine_for_layer(layer, (4,), 2)
        with pytest.raises(ScalingError):
            affine.apply_plain(np.zeros(3, dtype=np.int64), 2)
