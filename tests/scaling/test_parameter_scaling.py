"""Unit tests for the paper's scaling-factor selection (Section IV-A)."""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential
from repro.scaling.parameter_scaling import (
    round_parameters,
    scaling_factor_sweep,
    select_scaling_factor,
)


def model_with_weights(weights, bias):
    model = Sequential((2,))
    layer = FullyConnected(2, 2)
    layer.weight[:] = weights
    layer.bias[:] = bias
    model.add(layer)
    model.add(SoftMax())
    return model


class TestRoundParameters:
    def test_rounding_applied(self):
        model = model_with_weights([[0.123456, -0.6789],
                                    [0.5, -0.5]], [0.111, -0.222])
        rounded = round_parameters(model, 2)
        assert np.allclose(rounded.layers[0].weight,
                           [[0.12, -0.68], [0.5, -0.5]])
        assert np.allclose(rounded.layers[0].bias, [0.11, -0.22])

    def test_original_untouched(self):
        model = model_with_weights([[0.123, 0.456], [0.0, 0.0]],
                                   [0.0, 0.0])
        round_parameters(model, 0)
        assert model.layers[0].weight[0, 0] == pytest.approx(0.123)

    def test_zero_decimals_truncates_small_weights(self):
        model = model_with_weights([[0.3, -0.4], [0.2, 0.1]], [0, 0])
        rounded = round_parameters(model, 0)
        assert np.allclose(rounded.layers[0].weight, 0.0)

    def test_negative_decimals_rejected(self):
        model = model_with_weights([[1, 0], [0, 1]], [0, 0])
        with pytest.raises(ScalingError):
            round_parameters(model, -1)


def separable_setup(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[1.5, 1.5], [-1.5, -1.5]])
    labels = rng.integers(0, 2, 300)
    x = centers[labels] + rng.standard_normal((300, 2)) * 0.4
    model = Sequential((2,))
    hidden = FullyConnected(2, 8, rng=rng)
    model.add(hidden)
    model.add(ReLU())
    out = FullyConnected(8, 2, rng=rng)
    model.add(out)
    model.add(SoftMax())
    from repro.nn.training import SGDTrainer

    SGDTrainer(model, learning_rate=0.1, seed=0).fit(x, labels,
                                                     epochs=10)
    return model, x, labels


class TestSelection:
    def test_selected_factor_preserves_accuracy(self):
        model, x, y = separable_setup()
        decision = select_scaling_factor(model, x, y, 2)
        assert abs(
            decision.selected_accuracy - decision.original_accuracy
        ) * 100 < 0.01 or decision.hit_cap

    def test_factor_is_power_of_ten(self):
        model, x, y = separable_setup(seed=1)
        decision = select_scaling_factor(model, x, y, 2)
        assert decision.factor == 10 ** decision.decimals

    def test_stops_early(self):
        """Selection explores only up to the accepted f, like Step 2."""
        model, x, y = separable_setup(seed=2)
        decision = select_scaling_factor(model, x, y, 2)
        explored = sorted(decision.accuracy_by_decimals)
        assert explored == list(range(decision.decimals + 1))

    def test_cap_respected(self):
        model, x, y = separable_setup(seed=3)
        decision = select_scaling_factor(model, x, y, 2,
                                         threshold=0.0, max_decimals=2)
        assert decision.decimals <= 2

    def test_zero_threshold_hits_cap_or_exact(self):
        model, x, y = separable_setup(seed=4)
        decision = select_scaling_factor(model, x, y, 2, threshold=0.0)
        if decision.hit_cap:
            assert decision.decimals == 6

    def test_negative_max_decimals_rejected(self):
        model, x, y = separable_setup(seed=5)
        with pytest.raises(ScalingError):
            select_scaling_factor(model, x, y, 2, max_decimals=-1)


class TestSweep:
    def test_monotone_trend_shape(self):
        """Tables IV/V shape: tiny factors are bad, the curve recovers."""
        model, x, y = separable_setup(seed=6)
        sweep = scaling_factor_sweep(model, x, y, 2, max_decimals=6)
        assert sweep[6] >= sweep[0]
        assert sweep[6] > 0.9

    def test_sweep_covers_all_factors(self):
        model, x, y = separable_setup(seed=7)
        sweep = scaling_factor_sweep(model, x, y, 2, max_decimals=4)
        assert sorted(sweep) == [0, 1, 2, 3, 4]
