"""Unit tests for thread-level tensor partitioning (Section IV-D)."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.nn.layers import Conv2d, FullyConnected
from repro.partitioning.partition import (
    partition_affine,
    partition_elementwise,
    stage_communication,
)
from repro.scaling.fixed_point import scaled_affine_for_layer


def fc_affine(in_features=6, out_features=4, decimals=3, seed=0):
    layer = FullyConnected(in_features, out_features,
                           rng=np.random.default_rng(seed))
    return scaled_affine_for_layer(layer, (in_features,), decimals)


def conv_affine(seed=0):
    layer = Conv2d(1, 1, kernel=2, stride=1, padding=0,
                   rng=np.random.default_rng(seed))
    return scaled_affine_for_layer(layer, (1, 3, 3), 3), layer


class TestOutputPartitioning:
    def test_covers_all_outputs_exactly_once(self):
        affine = fc_affine()
        tasks = partition_affine(affine, threads=3,
                                 input_partitioning=False)
        outputs = [i for task in tasks for i in task.output_indices]
        assert sorted(outputs) == list(range(affine.out_dim))

    def test_near_equal_blocks(self):
        affine = fc_affine(out_features=10)
        tasks = partition_affine(affine, threads=3,
                                 input_partitioning=False)
        sizes = [task.output_elements for task in tasks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_outputs(self):
        affine = fc_affine(out_features=2)
        tasks = partition_affine(affine, threads=8,
                                 input_partitioning=False)
        assert len(tasks) == 2

    def test_fc_needs_whole_input_even_with_input_partitioning(self):
        """Dense rows: input partitioning degenerates for FC (paper)."""
        affine = fc_affine()
        tasks = partition_affine(affine, threads=2,
                                 input_partitioning=True)
        for task in tasks:
            assert task.input_elements == affine.in_dim


class TestInputPartitioning:
    def test_conv_receptive_fields_shrink_input(self):
        """Figure 5: each thread needs only 6 of 9 input elements."""
        affine, _ = conv_affine()
        tasks = partition_affine(affine, threads=2,
                                 input_partitioning=True)
        assert len(tasks) == 2
        for task in tasks:
            assert task.input_elements == 6

    def test_figure5_communication_totals(self):
        """With partitioning: 12 elements shipped; without: 18."""
        affine, _ = conv_affine()
        with_tp = partition_affine(affine, 2, input_partitioning=True)
        without_tp = partition_affine(affine, 2,
                                      input_partitioning=False)
        assert stage_communication(with_tp) == 12
        assert stage_communication(without_tp) == 18

    def test_partitioned_results_match_full_affine(self):
        """Combining per-task plain evaluations == whole-affine result."""
        affine, _ = conv_affine(seed=2)
        x_int = np.arange(9, dtype=np.int64) * 7 - 20
        full = affine.apply_plain(x_int, input_exponent=0).reshape(-1)
        tasks = partition_affine(affine, threads=2,
                                 input_partitioning=True)
        combined = np.empty(affine.out_dim, dtype=object)
        for task in tasks:
            sub_x = x_int[list(task.input_indices)].astype(object)
            bias = task.bias_at(0).astype(object)
            out = task.weight.astype(object) @ sub_x + bias
            for position, value in zip(task.output_indices, out):
                combined[position] = value
        assert np.array_equal(combined, full)

    def test_fc_partitioned_results_match(self):
        affine = fc_affine(seed=3)
        x_int = np.arange(affine.in_dim, dtype=np.int64) - 3
        full = affine.apply_plain(x_int, input_exponent=0).reshape(-1)
        tasks = partition_affine(affine, threads=3,
                                 input_partitioning=True)
        combined = np.empty(affine.out_dim, dtype=object)
        for task in tasks:
            sub_x = x_int[list(task.input_indices)].astype(object)
            out = task.weight.astype(object) @ sub_x \
                + task.bias_at(0).astype(object)
            for position, value in zip(task.output_indices, out):
                combined[position] = value
        assert np.array_equal(combined, full)


class TestElementwisePartitioning:
    def test_inputs_equal_outputs(self):
        tasks = partition_elementwise(10, 3)
        for task in tasks:
            assert task.input_indices == task.output_indices

    def test_covers_everything(self):
        tasks = partition_elementwise(10, 4)
        covered = [i for task in tasks for i in task.output_indices]
        assert sorted(covered) == list(range(10))

    def test_no_bias(self):
        task = partition_elementwise(4, 1)[0]
        with pytest.raises(PartitioningError):
            task.bias_at(0)

    def test_validation(self):
        with pytest.raises(PartitioningError):
            partition_elementwise(0, 2)
        with pytest.raises(PartitioningError):
            partition_elementwise(4, 0)
