"""Unit tests for analytic receptive-field computation."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    FullyConnected,
    ReLU,
)
from repro.partitioning.receptive import (
    chain_required_inputs,
    partitioned_input_elements,
    required_inputs,
)
from repro.scaling.fixed_point import scaled_affine_for_layer


class TestRequiredInputs:
    def test_conv_matches_dense_matrix(self):
        """Analytic receptive fields == non-zero columns of the dense
        unrolled conv matrix, for every output element."""
        layer = Conv2d(2, 3, kernel=3, stride=2, padding=1,
                       rng=np.random.default_rng(0))
        input_shape = (2, 5, 5)
        affine = scaled_affine_for_layer(layer, input_shape, 6)
        out_size = affine.out_dim
        for flat in range(out_size):
            dense_support = set(
                int(i) for i in np.flatnonzero(affine.weight[flat])
            )
            analytic = required_inputs(layer, input_shape, [flat])
            # dense support can be smaller if a weight rounds to zero;
            # analytic must be a superset and within kernel bounds
            assert dense_support <= analytic
            assert len(analytic) <= 2 * 3 * 3

    def test_fc_needs_everything(self):
        layer = FullyConnected(6, 3)
        assert required_inputs(layer, (6,), [1]) == set(range(6))

    def test_fc_empty_outputs(self):
        layer = FullyConnected(6, 3)
        assert required_inputs(layer, (6,), []) == set()

    def test_elementwise_identity(self):
        for layer in (BatchNorm(2), Flatten()):
            shape = (2, 3, 3) if isinstance(layer, BatchNorm) else (18,)
            assert required_inputs(layer, shape, [4, 7]) == {4, 7}

    def test_avgpool_window(self):
        layer = AvgPool2d(2)
        # output (0,0,0) of a (1,4,4) input needs the 2x2 corner
        needed = required_inputs(layer, (1, 4, 4), [0])
        assert needed == {0, 1, 4, 5}

    def test_nonlinear_rejected(self):
        with pytest.raises(PartitioningError):
            required_inputs(ReLU(), (4,), [0])

    def test_out_of_range_output(self):
        layer = Conv2d(1, 1, kernel=2)
        with pytest.raises(PartitioningError):
            required_inputs(layer, (1, 3, 3), [100])


class TestChaining:
    def test_conv_then_bn_chain(self):
        conv = Conv2d(1, 2, kernel=2, stride=1)
        bn = BatchNorm(2)
        conv_out = conv.output_shape((1, 3, 3))
        needed = chain_required_inputs(
            [conv, bn], [(1, 3, 3), conv_out], [0]
        )
        # BN is identity on indices; conv output 0 needs its 2x2 patch
        assert needed == {0, 1, 3, 4}

    def test_chain_through_fc_is_everything(self):
        conv = Conv2d(1, 1, kernel=2)
        fc = FullyConnected(4, 2)
        needed = chain_required_inputs(
            [conv, fc], [(1, 3, 3), (4,)], [0]
        )
        assert needed == set(range(9))

    def test_length_mismatch(self):
        with pytest.raises(PartitioningError):
            chain_required_inputs([Flatten()], [], [0])


class TestPartitionedInputElements:
    def test_conv_per_thread_counts(self):
        conv = Conv2d(1, 1, kernel=2, stride=1)
        counts = partitioned_input_elements(
            [conv], [(1, 3, 3)], output_size=4, threads=2
        )
        assert counts == [6, 6]  # Figure 5

    def test_sum_bounded_by_threads_times_input(self):
        conv = Conv2d(2, 4, kernel=3, stride=1, padding=1)
        counts = partitioned_input_elements(
            [conv], [(2, 8, 8)], output_size=4 * 8 * 8, threads=4
        )
        assert sum(counts) <= 4 * 2 * 8 * 8
        assert all(c > 0 for c in counts)

    def test_single_thread_needs_at_most_everything(self):
        conv = Conv2d(1, 2, kernel=3, padding=1)
        counts = partitioned_input_elements(
            [conv], [(1, 6, 6)], output_size=2 * 6 * 6, threads=1
        )
        assert counts == [36]

    def test_thread_validation(self):
        with pytest.raises(PartitioningError):
            partitioned_input_elements([Flatten()], [(4,)], 4, 0)
