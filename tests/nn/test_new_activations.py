"""Unit tests for the Tanh and LeakyReLU extension activations."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import LayerKind, LeakyReLU, Tanh
from repro.nn.model import Sequential
from repro.nn.layers import FullyConnected, SoftMax


class TestTanh:
    def test_values(self):
        out = Tanh().forward(np.array([[0.0, 100.0, -100.0]]))
        assert out[0] == pytest.approx([0.0, 1.0, -1.0])

    def test_kind(self):
        assert Tanh().kind is LayerKind.NONLINEAR

    def test_gradient(self):
        layer = Tanh()
        x = np.array([[0.5]])
        out = layer.forward(x, training=True)
        grad = layer.backward(np.array([[1.0]]))
        assert grad[0, 0] == pytest.approx(1.0 - float(out[0, 0]) ** 2)

    def test_permutation_compatible(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(16)
        perm = rng.permutation(16)
        layer = Tanh()
        assert np.allclose(
            layer.forward(x[None, perm])[0],
            layer.forward(x[None, :])[0][perm],
        )


class TestLeakyReLU:
    def test_values(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([[-2.0, 3.0]]))
        assert out[0] == pytest.approx([-0.2, 3.0])

    def test_alpha_validation(self):
        with pytest.raises(ModelError):
            LeakyReLU(alpha=1.0)
        with pytest.raises(ModelError):
            LeakyReLU(alpha=-0.1)

    def test_gradient(self):
        layer = LeakyReLU(alpha=0.2)
        x = np.array([[-1.0, 1.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[1.0, 1.0]]))
        assert grad[0] == pytest.approx([0.2, 1.0])

    def test_serialization_keeps_alpha(self):
        model = Sequential((2,))
        model.add(LeakyReLU(alpha=0.3))
        clone = Sequential.from_state_dict(model.state_dict())
        assert clone.layers[0].alpha == pytest.approx(0.3)


class TestProtocolSupport:
    def test_activation_specs(self):
        from repro.protocol.roles import activation_spec

        assert activation_spec(Tanh()) == "tanh"
        assert activation_spec(LeakyReLU(0.05)) == "leaky_relu:0.05"

    def test_apply_activation(self):
        from repro.protocol.roles import apply_activation

        flat = np.array([-2.0, 1.0])
        assert apply_activation("tanh", flat, False) == pytest.approx(
            np.tanh(flat)
        )
        assert apply_activation("leaky_relu:0.5", flat, False) == \
            pytest.approx([-1.0, 1.0])

    def test_end_to_end_session_with_new_activations(self):
        from repro.config import RuntimeConfig
        from repro.protocol import DataProvider, InferenceSession, \
            ModelProvider
        from repro.scaling.parameter_scaling import round_parameters

        rng = np.random.default_rng(3)
        model = Sequential((4,))
        model.add(FullyConnected(4, 6, rng=rng))
        model.add(Tanh())
        model.add(FullyConnected(6, 5, rng=rng))
        model.add(LeakyReLU(0.1))
        model.add(FullyConnected(5, 3, rng=rng))
        model.add(SoftMax())
        config = RuntimeConfig(key_size=192, seed=71)
        session = InferenceSession(
            ModelProvider(model, decimals=4, config=config),
            DataProvider(value_decimals=4, config=config),
        )
        x = rng.standard_normal(4)
        outcome = session.run(x)
        expected = round_parameters(model, 4).forward(
            np.round(x, 4)[None]
        )[0]
        assert np.allclose(outcome.probabilities, expected, atol=1e-3)
