"""Unit tests for the trainer and the paper's accuracy metric."""

import numpy as np
import pytest

from repro.errors import ModelError, TrainingError
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.metrics import accuracy, confusion_counts, top1_accuracy
from repro.nn.model import Sequential
from repro.nn.training import SGDTrainer, softmax_cross_entropy


def toy_problem(seed=0, samples=200):
    """Linearly separable blobs: a sane trainer must solve this."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 2.0], [-2.0, -2.0]])
    labels = rng.integers(0, 2, samples)
    x = centers[labels] + rng.standard_normal((samples, 2)) * 0.5
    return x, labels


def toy_model(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential((2,))
    model.add(FullyConnected(2, 8, rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(8, 2, rng=rng))
    model.add(SoftMax())
    return model


class TestSoftmaxCrossEntropy:
    def test_loss_at_uniform(self):
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(3))
        assert grad.shape == (4, 3)

    def test_gradient_sums_to_zero_rows(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((5, 4))
        labels = rng.integers(0, 4, 5)
        _, grad = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_numerical_gradient(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((3, 3))
        labels = np.array([0, 2, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        flat = logits.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus, _ = softmax_cross_entropy(logits, labels)
            flat[i] = orig - eps
            minus, _ = softmax_cross_entropy(logits, labels)
            flat[i] = orig
            assert grad.reshape(-1)[i] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-5
            )


class TestSGDTrainer:
    def test_learns_separable_problem(self):
        x, y = toy_problem()
        model = toy_model()
        result = SGDTrainer(model, learning_rate=0.1, seed=0).fit(
            x, y, epochs=15
        )
        assert result.train_accuracy > 0.97
        assert result.losses[-1] < result.losses[0]

    def test_loss_decreases(self):
        x, y = toy_problem(seed=3)
        model = toy_model(seed=3)
        result = SGDTrainer(model, learning_rate=0.05, seed=0).fit(
            x, y, epochs=10
        )
        assert result.losses[-1] < 0.5 * result.losses[0]

    def test_weight_decay_shrinks_weights(self):
        x, y = toy_problem(seed=4)
        plain = toy_model(seed=4)
        decayed = toy_model(seed=4)
        SGDTrainer(plain, learning_rate=0.05, seed=0).fit(x, y, epochs=5)
        SGDTrainer(decayed, learning_rate=0.05, weight_decay=0.1,
                   seed=0).fit(x, y, epochs=5)
        plain_norm = sum(float(np.abs(p).sum()) for p in plain.params())
        decayed_norm = sum(float(np.abs(p).sum())
                           for p in decayed.params())
        assert decayed_norm < plain_norm

    def test_mismatched_labels_rejected(self):
        model = toy_model()
        trainer = SGDTrainer(model)
        with pytest.raises(TrainingError):
            trainer.train_epoch(np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_bad_hyperparameters(self):
        model = toy_model()
        with pytest.raises(TrainingError):
            SGDTrainer(model, learning_rate=0.0)
        with pytest.raises(TrainingError):
            SGDTrainer(model, momentum=1.0)
        with pytest.raises(TrainingError):
            SGDTrainer(model, batch_size=0)

    def test_deterministic(self):
        x, y = toy_problem(seed=5)
        a, b = toy_model(seed=5), toy_model(seed=5)
        SGDTrainer(a, seed=9).fit(x, y, epochs=3)
        SGDTrainer(b, seed=9).fit(x, y, epochs=3)
        for pa, pb in zip(a.params(), b.params()):
            assert np.array_equal(pa, pb)


class TestMetrics:
    def test_binary_confusion(self):
        predictions = np.array([1, 0, 1, 1])
        labels = np.array([1, 0, 0, 1])
        counts = confusion_counts(predictions, labels, 2)
        # one-vs-rest over 2 classes doubles each cell
        assert counts.tp == 3
        assert counts.fp == 1
        assert counts.fn == 1
        assert counts.tn == 3

    def test_accuracy_definition(self):
        """Paper IV-A: (TP+TN)/(TP+TN+FP+FN)."""
        predictions = np.array([1, 0, 1, 1])
        labels = np.array([1, 0, 0, 1])
        counts = confusion_counts(predictions, labels, 2)
        assert accuracy(predictions, labels, 2) == pytest.approx(
            (counts.tp + counts.tn)
            / (counts.tp + counts.tn + counts.fp + counts.fn)
        )

    def test_binary_equals_top1(self):
        rng = np.random.default_rng(6)
        predictions = rng.integers(0, 2, 100)
        labels = rng.integers(0, 2, 100)
        assert accuracy(predictions, labels, 2) == pytest.approx(
            top1_accuracy(predictions, labels)
        )

    def test_perfect_predictions(self):
        labels = np.array([0, 1, 2, 3])
        assert accuracy(labels, labels, 4) == 1.0

    def test_multiclass_monotone_in_correctness(self):
        labels = np.zeros(10, dtype=int)
        better = np.zeros(10, dtype=int)
        worse = np.zeros(10, dtype=int)
        worse[:5] = 1
        assert accuracy(better, labels, 3) > accuracy(worse, labels, 3)

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            accuracy(np.zeros(3), np.zeros(4), 2)

    def test_num_classes_validation(self):
        with pytest.raises(ModelError):
            accuracy(np.zeros(3), np.zeros(3), 1)
