"""Unit tests for FullyConnected, with numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import FullyConnected, LayerKind, OpCounts


def numerical_grad(fn, array, epsilon=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = fn()
        flat[index] = original - epsilon
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestForward:
    def test_shapes(self):
        layer = FullyConnected(4, 3)
        out = layer.forward(np.zeros((2, 4)))
        assert out.shape == (2, 3)

    def test_known_values(self):
        layer = FullyConnected(2, 2)
        layer.weight[:] = [[1.0, 2.0], [3.0, 4.0]]
        layer.bias[:] = [0.5, -0.5]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0] == pytest.approx([3.5, 6.5])

    def test_kind_linear(self):
        assert FullyConnected(2, 2).kind is LayerKind.LINEAR

    def test_wrong_feature_count(self):
        layer = FullyConnected(4, 3)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((1, 5)))

    def test_wrong_rank(self):
        layer = FullyConnected(4, 3)
        with pytest.raises(ModelError):
            layer.forward(np.zeros(4))

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ModelError):
            FullyConnected(0, 3)


class TestBackward:
    def test_backward_before_forward(self):
        layer = FullyConnected(2, 2)
        with pytest.raises(ModelError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = FullyConnected(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            out = layer.forward(x, training=True)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        grad_out = out - target
        grad_in = layer.backward(grad_out)

        num_w = numerical_grad(loss, layer.weight)
        num_b = numerical_grad(loss, layer.bias)
        assert np.allclose(layer.grads()[0], num_w, atol=1e-5)
        assert np.allclose(layer.grads()[1], num_b, atol=1e-5)

        num_x = numerical_grad(loss, x)
        assert np.allclose(grad_in, num_x, atol=1e-5)


class TestIntrospection:
    def test_op_counts(self):
        layer = FullyConnected(4, 3)
        counts = layer.op_counts((4,))
        assert counts == OpCounts(
            ciphertext_muls=12, ciphertext_adds=12,
            input_size=4, output_size=3,
        )

    def test_output_shape_validation(self):
        layer = FullyConnected(4, 3)
        assert layer.output_shape((4,)) == (3,)
        with pytest.raises(ModelError):
            layer.output_shape((5,))

    def test_param_count(self):
        assert FullyConnected(4, 3).param_count() == 4 * 3 + 3
