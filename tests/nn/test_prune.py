"""Unit tests for magnitude pruning under an accuracy budget."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import prune_model
from repro.nn.layers import FullyConnected, ReLU, SoftMax
from repro.nn.model import Sequential


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential((6,), name="prune-me")
    model.add(FullyConnected(6, 8))
    model.add(ReLU())
    model.add(FullyConnected(8, 3))
    model.add(SoftMax())
    for layer in model.layers:
        for param in layer.params():
            param[...] = rng.standard_normal(param.shape)
    return model


class TestPruneModel:
    def test_target_sparsity_reached_per_layer(self):
        model = small_model()
        pruned, report = prune_model(model, sparsity=0.5)
        assert report.applied_sparsity == 0.5
        assert len(report.layers) == 2
        for stats in report.layers:
            achieved = stats.pruned / stats.total
            # quantile ties may overshoot, never undershoot
            assert achieved >= 0.5 - 1e-9
        for layer in pruned.layers:
            if isinstance(layer, FullyConnected):
                zeros = np.count_nonzero(layer.weight == 0.0)
                assert zeros >= 0.5 * layer.weight.size

    def test_small_magnitudes_pruned_first(self):
        model = small_model()
        pruned, report = prune_model(model, sparsity=0.5)
        for original, clone, stats in zip(model.layers[::2],
                                          pruned.layers[::2],
                                          report.layers):
            survivors = np.abs(original.weight)[clone.weight != 0.0]
            if survivors.size:
                assert survivors.min() >= stats.threshold - 1e-12

    def test_source_model_untouched(self):
        model = small_model()
        before = [p.copy() for layer in model.layers
                  for p in layer.params()]
        prune_model(model, sparsity=0.7)
        after = [p for layer in model.layers for p in layer.params()]
        for a, b in zip(before, after):
            assert np.array_equal(a, b)

    def test_deterministic(self):
        a, _ = prune_model(small_model(), sparsity=0.6)
        b, _ = prune_model(small_model(), sparsity=0.6)
        for la, lb in zip(a.layers, b.layers):
            for pa, pb in zip(la.params(), lb.params()):
                assert np.array_equal(pa, pb)

    def test_predictions_preserved_at_zero_sparsity(self):
        model = small_model()
        pruned, report = prune_model(model, sparsity=0.0)
        x = np.random.default_rng(3).standard_normal((4, 6))
        assert np.allclose(model.predict(x), pruned.predict(x))
        assert report.pruned == 0

    def test_report_totals_and_density(self):
        _, report = prune_model(small_model(), sparsity=0.5)
        assert report.total == 6 * 8 + 8 * 3
        assert report.density == pytest.approx(
            1.0 - report.pruned / report.total)

    def test_zero_budget_never_loses_accuracy(self, trained_breast,
                                              breast_dataset):
        """A budget of zero must yield a model at least as accurate as
        the baseline — backing off (possibly to no pruning at all)."""
        pruned, report = prune_model(
            trained_breast, sparsity=0.9,
            inputs=breast_dataset.test_x, labels=breast_dataset.test_y,
            accuracy_budget=0.0,
        )
        assert report.applied_sparsity <= 0.9
        assert report.baseline_accuracy is not None
        assert report.accuracy_delta is not None
        assert report.accuracy_delta >= -1e-12

    def test_budget_keeps_accuracy_within_tolerance(self, trained_breast,
                                                    breast_dataset):
        _, report = prune_model(
            trained_breast, sparsity=0.7,
            inputs=breast_dataset.test_x, labels=breast_dataset.test_y,
            accuracy_budget=0.02,
        )
        assert report.accuracy_delta >= -0.02 - 1e-12
        assert 0.0 <= report.applied_sparsity <= 0.7

    def test_bad_arguments_rejected(self):
        model = small_model()
        with pytest.raises(ModelError):
            prune_model(model, sparsity=1.0)
        with pytest.raises(ModelError):
            prune_model(model, sparsity=-0.1)
        with pytest.raises(ModelError):
            prune_model(model, sparsity=0.5, backoff=1.0)
        with pytest.raises(ModelError):
            prune_model(model, sparsity=0.5,
                        inputs=np.zeros((1, 6)), labels=None)
