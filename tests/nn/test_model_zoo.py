"""Unit tests for the Table III model zoo."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import model_zoo
from repro.nn.layers import Conv2d, LayerKind, MaxPool2d, SoftMax
from repro.planner.primitive import extract_primitives


class TestBuilders:
    @pytest.mark.parametrize("key,shape,classes", [
        ("breast", (30,), 2),
        ("heart", (13,), 2),
        ("cardio", (11,), 2),
        ("mnist-1", (1, 28, 28), 10),
        ("mnist-2", (1, 28, 28), 10),
        ("mnist-3", (1, 28, 28), 10),
    ])
    def test_shapes(self, key, shape, classes):
        model = model_zoo.build_model(key)
        assert model.input_shape == shape
        assert model.output_shape() == (classes,)

    @pytest.mark.parametrize("key", ["cifar-10-1", "cifar-10-2",
                                     "cifar-10-3"])
    def test_vgg_shapes(self, key):
        model = model_zoo.build_model(key)
        assert model.input_shape == (3, 32, 32)
        assert model.output_shape() == (10,)

    def test_vgg_depths_differ(self):
        counts = {
            key: sum(isinstance(layer, Conv2d)
                     for layer in model_zoo.build_model(key).layers)
            for key in ("cifar-10-1", "cifar-10-2", "cifar-10-3")
        }
        # VGG13 < VGG16 < VGG19 in conv count (incl. pool-replacements)
        assert counts["cifar-10-1"] < counts["cifar-10-2"] \
            < counts["cifar-10-3"]

    def test_unknown_key(self):
        with pytest.raises(ModelError):
            model_zoo.build_model("resnet50")

    def test_unknown_vgg_variant(self):
        with pytest.raises(ModelError):
            model_zoo.vgg("vgg11")


class TestPrivacyReadiness:
    """Every zoo model must be directly deployable in the protocol."""

    @pytest.mark.parametrize("key", model_zoo.MODEL_KEYS)
    def test_no_maxpool(self, key):
        model = model_zoo.build_model(key)
        assert not any(isinstance(layer, MaxPool2d)
                       for layer in model.layers)

    @pytest.mark.parametrize("key", model_zoo.MODEL_KEYS)
    def test_ends_with_softmax(self, key):
        model = model_zoo.build_model(key)
        assert isinstance(model.layers[-1], SoftMax)

    @pytest.mark.parametrize("key", ["breast", "mnist-1", "mnist-2",
                                     "mnist-3"])
    def test_primitive_extraction_succeeds(self, key):
        """No position-sensitive layer outside the final position."""
        model = model_zoo.build_model(key)
        primitives = extract_primitives(model)
        assert primitives[0].kind is LayerKind.LINEAR
        assert primitives[-1].kind is LayerKind.NONLINEAR

    def test_forward_runs(self):
        model = model_zoo.build_model("mnist-2")
        out = model.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_deterministic_by_seed(self):
        a = model_zoo.build_model("mnist-2", seed=5)
        b = model_zoo.build_model("mnist-2", seed=5)
        for pa, pb in zip(a.params(), b.params()):
            assert np.array_equal(pa, pb)
