"""Unit tests for Conv2d: shapes, reference values, gradients, im2col."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import Conv2d, LayerKind
from repro.nn.layers.conv import col2im, conv_output_hw, im2col


def reference_conv(x, weight, bias, stride, padding):
    """Direct nested-loop convolution (slow, obviously correct)."""
    n, c, h, w = x.shape
    out_c, _, k, _ = weight.shape
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (w + 2 * padding - k) // stride + 1
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                        (padding, padding)))
    out = np.zeros((n, out_c, out_h, out_w))
    for b in range(n):
        for oc in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * stride:i * stride + k,
                                   j * stride:j * stride + k]
                    out[b, oc, i, j] = np.sum(patch * weight[oc]) \
                        + bias[oc]
    return out


class TestShapeMath:
    def test_conv_output_hw(self):
        assert conv_output_hw(28, 28, 3, 1, 1) == (28, 28)
        assert conv_output_hw(28, 28, 2, 2, 0) == (14, 14)

    def test_too_large_kernel(self):
        with pytest.raises(ModelError):
            conv_output_hw(2, 2, 5, 1, 0)

    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel=3, stride=1, padding=1)
        assert layer.output_shape((3, 32, 32)) == (8, 32, 32)

    def test_output_shape_wrong_channels(self):
        layer = Conv2d(3, 8, kernel=3)
        with pytest.raises(ModelError):
            layer.output_shape((4, 32, 32))


class TestIm2Col:
    def test_round_trip_ones(self):
        """col2im(im2col(x)) counts each pixel's patch multiplicity."""
        x = np.ones((1, 1, 4, 4))
        cols = im2col(x, 2, 2, 0)
        assert cols.shape == (1, 4, 4)
        back = col2im(cols, (1, 1, 4, 4), 2, 2, 0)
        # non-overlapping stride=kernel: multiplicity 1 everywhere
        assert np.array_equal(back, x)

    def test_patch_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, 0)
        assert np.array_equal(cols[0, 0], [0, 1, 4, 5])
        assert np.array_equal(cols[0, 3], [10, 11, 14, 15])


class TestForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(1)
        layer = Conv2d(2, 3, kernel=3, stride=stride, padding=padding,
                       rng=rng)
        x = rng.standard_normal((2, 2, 6, 6))
        expected = reference_conv(x, layer.weight, layer.bias, stride,
                                  padding)
        assert np.allclose(layer.forward(x), expected, atol=1e-10)

    def test_kind(self):
        assert Conv2d(1, 1, 2).kind is LayerKind.LINEAR

    def test_channel_mismatch(self):
        layer = Conv2d(2, 3, 3)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((1, 3, 6, 6)))


class TestBackward:
    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = Conv2d(2, 2, kernel=2, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 4, 4))
        target = rng.standard_normal(layer.forward(x).shape)

        def loss():
            out = layer.forward(x, training=True)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        grad_in = layer.backward(out - target)

        eps = 1e-6
        # weight gradient
        num_w = np.zeros_like(layer.weight)
        flat_w = layer.weight.reshape(-1)
        num_flat = num_w.reshape(-1)
        for i in range(flat_w.size):
            orig = flat_w[i]
            flat_w[i] = orig + eps
            plus = loss()
            flat_w[i] = orig - eps
            minus = loss()
            flat_w[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        assert np.allclose(layer.grads()[0], num_w, atol=1e-4)

        # input gradient (sampled positions)
        flat_x = x.reshape(-1)
        for i in range(0, flat_x.size, 7):
            orig = flat_x[i]
            flat_x[i] = orig + eps
            plus = loss()
            flat_x[i] = orig - eps
            minus = loss()
            flat_x[i] = orig
            numeric = (plus - minus) / (2 * eps)
            assert grad_in.reshape(-1)[i] == pytest.approx(numeric,
                                                           abs=1e-4)

    def test_backward_before_forward(self):
        layer = Conv2d(1, 1, 2)
        with pytest.raises(ModelError):
            layer.backward(np.zeros((1, 1, 2, 2)))


class TestOpCounts:
    def test_counts(self):
        layer = Conv2d(2, 4, kernel=3, stride=1, padding=1)
        counts = layer.op_counts((2, 8, 8))
        outputs = 4 * 8 * 8
        per_output = 2 * 3 * 3
        assert counts.ciphertext_muls == outputs * per_output
        assert counts.output_size == outputs
        assert counts.input_size == 2 * 8 * 8
