"""Unit tests for the Sequential container and serialization."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    Conv2d,
    Flatten,
    FullyConnected,
    LayerKind,
    ReLU,
    SoftMax,
)
from repro.nn.model import Sequential


def small_model():
    model = Sequential((4,), name="small")
    model.add(FullyConnected(4, 3))
    model.add(ReLU())
    model.add(FullyConnected(3, 2))
    model.add(SoftMax())
    return model


class TestConstruction:
    def test_shape_checked_on_add(self):
        model = Sequential((4,))
        model.add(FullyConnected(4, 3))
        with pytest.raises(ModelError):
            model.add(FullyConnected(4, 2))  # expects 3 features now

    def test_output_shape(self):
        assert small_model().output_shape() == (2,)

    def test_layer_shapes(self):
        shapes = small_model().layer_shapes()
        assert shapes[0] == ((4,), (3,))
        assert shapes[-1] == ((2,), (2,))

    def test_kinds(self):
        kinds = small_model().kinds()
        assert kinds == [LayerKind.LINEAR, LayerKind.NONLINEAR,
                         LayerKind.LINEAR, LayerKind.NONLINEAR]


class TestForward:
    def test_probabilities(self):
        model = small_model()
        out = model.forward(np.zeros((5, 4)))
        assert out.shape == (5, 2)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_predict(self):
        model = small_model()
        preds = model.predict(np.zeros((3, 4)))
        assert preds.shape == (3,)

    def test_forward_logits_skips_trailing_softmax(self):
        model = small_model()
        x = np.random.default_rng(0).standard_normal((2, 4))
        logits = model.forward_logits(x)
        probs = model.forward(x)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        assert np.allclose(probs, exp / exp.sum(axis=1, keepdims=True))


class TestSerialization:
    def test_state_dict_round_trip(self):
        model = small_model()
        clone = Sequential.from_state_dict(model.state_dict())
        x = np.random.default_rng(1).standard_normal((3, 4))
        assert np.allclose(model.forward(x), clone.forward(x))

    def test_save_load(self, tmp_path):
        model = small_model()
        path = tmp_path / "model.json"
        model.save(path)
        clone = Sequential.load(path)
        x = np.random.default_rng(2).standard_normal((2, 4))
        assert np.allclose(model.forward(x), clone.forward(x))
        assert clone.name == "small"

    def test_conv_model_round_trip(self):
        model = Sequential((1, 4, 4))
        model.add(Conv2d(1, 2, kernel=2, stride=2))
        model.add(ReLU())
        model.add(Flatten())
        model.add(FullyConnected(8, 2))
        model.add(SoftMax())
        clone = Sequential.from_state_dict(model.state_dict())
        x = np.random.default_rng(3).standard_normal((2, 1, 4, 4))
        assert np.allclose(model.forward(x), clone.forward(x))

    def test_batchnorm_buffers_preserved(self):
        from repro.nn.layers import BatchNorm

        model = Sequential((3,))
        bn = BatchNorm(3)
        bn.running_mean = np.array([1.0, 2.0, 3.0])
        bn.running_var = np.array([0.5, 1.5, 2.5])
        model.add(bn)
        clone = Sequential.from_state_dict(model.state_dict())
        restored = clone.layers[0]
        assert np.array_equal(restored.running_mean, bn.running_mean)
        assert np.array_equal(restored.running_var, bn.running_var)

    def test_unknown_layer_type_rejected(self):
        state = small_model().state_dict()
        state["layers"][0]["type"] = "Mystery"
        with pytest.raises(ModelError):
            Sequential.from_state_dict(state)


class TestIntrospection:
    def test_param_count(self):
        model = small_model()
        assert model.param_count() == (4 * 3 + 3) + (3 * 2 + 2)

    def test_summary_mentions_layers(self):
        text = small_model().summary()
        assert "FullyConnected" in text
        assert "SoftMax" in text
        assert "total params" in text
