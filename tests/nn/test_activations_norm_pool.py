"""Unit tests for activations, batch norm, pooling, flatten."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm,
    ElementwiseScale,
    Flatten,
    LayerKind,
    MaxPool2d,
    ReLU,
    ScaledSigmoid,
    Sigmoid,
    SoftMax,
)
from repro.nn.layers.pooling import maxpool_replacement


class TestReLU:
    def test_values(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 0.0, 2.0]])

    def test_kind(self):
        assert ReLU().kind is LayerKind.NONLINEAR

    def test_backward_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[5.0, 7.0]]))
        assert np.array_equal(grad, [[0.0, 7.0]])

    def test_permutation_compatible(self):
        """Section III-C: element-wise activations commute with
        permutations."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(32)
        perm = rng.permutation(32)
        relu = ReLU()
        assert np.allclose(
            relu.forward(x[None, perm])[0],
            relu.forward(x[None, :])[0][perm],
        )


class TestSigmoid:
    def test_midpoint(self):
        assert Sigmoid().forward(np.array([[0.0]]))[0, 0] == \
            pytest.approx(0.5)

    def test_extreme_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0, abs=1e-12)

    def test_gradient(self):
        layer = Sigmoid()
        x = np.array([[0.3]])
        out = layer.forward(x, training=True)
        grad = layer.backward(np.array([[1.0]]))
        assert grad[0, 0] == pytest.approx(
            float(out[0, 0] * (1 - out[0, 0]))
        )


class TestSoftMax:
    def test_rows_sum_to_one(self):
        out = SoftMax().forward(np.array([[1.0, 2.0, 3.0],
                                          [0.0, 0.0, 0.0]]))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        layer = SoftMax()
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(layer.forward(x), layer.forward(x + 100))

    def test_position_sensitive_flag(self):
        assert SoftMax.position_sensitive is True

    def test_requires_2d(self):
        with pytest.raises(ModelError):
            SoftMax().forward(np.zeros(3))


class TestScaledSigmoid:
    def test_is_mixed(self):
        assert ScaledSigmoid(2.0).kind is LayerKind.MIXED

    def test_decomposes_to_primitives(self):
        parts = ScaledSigmoid(2.0).decompose()
        assert [p.kind for p in parts] == \
            [LayerKind.LINEAR, LayerKind.NONLINEAR]

    def test_forward_composition(self):
        layer = ScaledSigmoid(3.0)
        x = np.array([[0.5]])
        expected = 1.0 / (1.0 + np.exp(-1.5))
        assert layer.forward(x)[0, 0] == pytest.approx(expected)

    def test_scale_is_trainable(self):
        layer = ScaledSigmoid(1.0)
        x = np.array([[1.0]])
        layer.forward(x, training=True)
        layer.backward(np.array([[1.0]]))
        assert layer.grads()[0].shape == (1,)


class TestElementwiseScale:
    def test_forward(self):
        out = ElementwiseScale(2.5).forward(np.array([[2.0, -4.0]]))
        assert np.array_equal(out, [[5.0, -10.0]])

    def test_kind(self):
        assert ElementwiseScale(1.0).kind is LayerKind.LINEAR


class TestBatchNorm:
    def test_training_normalizes(self):
        layer = BatchNorm(3)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 3)) * 5 + 2
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self):
        layer = BatchNorm(2, momentum=0.0)  # running = last batch
        rng = np.random.default_rng(2)
        x = rng.standard_normal((128, 2)) * 3 + 1
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert np.allclose(out.mean(axis=0), 0.0, atol=0.05)

    def test_4d_input(self):
        layer = BatchNorm(2)
        x = np.random.default_rng(3).standard_normal((4, 2, 3, 3))
        out = layer.forward(x, training=True)
        assert out.shape == x.shape

    def test_inference_affine_equivalence(self):
        """BN at inference == the folded scale/shift the crypto path
        evaluates (why the paper calls BN a linear layer)."""
        layer = BatchNorm(3)
        rng = np.random.default_rng(4)
        layer.running_mean = rng.standard_normal(3)
        layer.running_var = rng.uniform(0.5, 2.0, 3)
        layer.gamma[:] = rng.standard_normal(3)
        layer.beta[:] = rng.standard_normal(3)
        x = rng.standard_normal((8, 3))
        scale, shift = layer.inference_affine()
        assert np.allclose(layer.forward(x), x * scale + shift)

    def test_gradient_check(self):
        layer = BatchNorm(2)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((6, 2))
        target = rng.standard_normal((6, 2))

        def loss():
            out = layer.forward(x, training=True)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        grad_in = layer.backward(out - target)
        eps = 1e-6
        flat_x = x.reshape(-1)
        for i in range(flat_x.size):
            orig = flat_x[i]
            flat_x[i] = orig + eps
            plus = loss()
            flat_x[i] = orig - eps
            minus = loss()
            flat_x[i] = orig
            assert grad_in.reshape(-1)[i] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-4
            )

    def test_channel_mismatch(self):
        with pytest.raises(ModelError):
            BatchNorm(3).forward(np.zeros((2, 4)))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_is_position_sensitive(self):
        assert MaxPool2d.position_sensitive is True

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((1, 1, 4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[0, 0, i, j] = 1.0
        assert np.array_equal(grad, expected)

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_is_linear(self):
        assert AvgPool2d(2).kind is LayerKind.LINEAR

    def test_maxpool_replacement_geometry(self):
        """Section III-C: stride-2 conv + ReLU has MaxPool's output
        shape."""
        layers = maxpool_replacement(channels=3)
        conv, relu = layers
        assert conv.output_shape((3, 8, 8)) == \
            MaxPool2d(2).output_shape((3, 8, 8))
        assert relu.kind is LayerKind.NONLINEAR

    def test_maxpool_replacement_initialized_near_avgpool(self):
        layers = maxpool_replacement(channels=1)
        conv = layers[0]
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = conv.forward(x)
        avg = AvgPool2d(2).forward(x)
        assert np.allclose(out, avg)


class TestFlatten:
    def test_row_major_order(self):
        """Flatten must match the obfuscator's lexicographic reshape."""
        x = np.arange(12.0).reshape(1, 2, 2, 3)
        out = Flatten().forward(x)
        assert np.array_equal(out[0], np.arange(12.0))

    def test_backward_restores_shape(self):
        layer = Flatten()
        x = np.zeros((2, 3, 4))
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((2, 12)))
        assert grad.shape == (2, 3, 4)

    def test_requires_batch(self):
        with pytest.raises(ModelError):
            Flatten().forward(np.zeros(5))
