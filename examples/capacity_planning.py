#!/usr/bin/env python
"""Scenario: capacity planning for a PP-Stream deployment.

An operator wants to know how many CPU cores to buy for a target
latency on a given model.  This example sweeps cluster sizes with the
planner + simulator, compares even vs load-balanced allocation and
tensor partitioning on/off (the Exp#3/#4 ablations), and prints the
smallest configuration meeting the target — exactly the workflow the
paper's resource-allocation machinery enables offline.

Run:  python examples/capacity_planning.py
"""

from repro.costs import CostModel
from repro.datasets import DATASET_SPECS
from repro.experiments.common import prepare_model
from repro.planner.allocation import allocate_even, \
    allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.profiling import profile_primitive_times
from repro.simulate.simulator import PipelineSimulator
from repro.simulate.stagecosts import make_comm_model

MODEL_KEY = "mnist-2"
TARGET_LATENCY_S = 8.0
CORE_OPTIONS = (12, 18, 24, 36, 48, 64)


def main() -> None:
    prepared = prepare_model(MODEL_KEY)
    stages = prepared.stages()
    decimals = prepared.decimals
    cost_model = CostModel.reference()
    times = profile_primitive_times(stages, cost_model, decimals)
    spec = DATASET_SPECS[MODEL_KEY]
    print(
        f"planning for {MODEL_KEY} (scaling 10^{decimals}, "
        f"{spec.model_servers} model / {spec.data_servers} data "
        "servers)\n"
    )
    print(f"{'cores':>6} {'even':>10} {'balanced':>10} "
          f"{'bal+no-TP':>10}  meets target?")
    chosen = None
    for cores in CORE_OPTIONS:
        cluster = ClusterSpec.with_total_cores(
            cores, spec.model_servers, spec.data_servers
        )
        even = PipelineSimulator(
            allocate_even(stages, cluster).plan, cost_model, decimals
        ).request_latency()
        balanced_alloc = allocate_load_balanced(
            stages, times, cluster, method="water_filling",
            use_tensor_partitioning=True,
            comm_model=make_comm_model(cost_model, True),
        )
        balanced = PipelineSimulator(
            balanced_alloc.plan, cost_model, decimals
        ).request_latency()
        no_tp = PipelineSimulator(
            allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=False,
                comm_model=make_comm_model(cost_model, False),
            ).plan,
            cost_model, decimals,
        ).request_latency()
        meets = balanced <= TARGET_LATENCY_S
        if meets and chosen is None:
            chosen = (cores, balanced_alloc)
        print(f"{cores:>6} {even:>9.2f}s {balanced:>9.2f}s "
              f"{no_tp:>9.2f}s  {'YES' if meets else 'no'}")

    if chosen is None:
        print(f"\nno configuration meets {TARGET_LATENCY_S}s; "
              "add servers or relax the target")
        return
    cores, allocation = chosen
    print(f"\nsmallest configuration meeting {TARGET_LATENCY_S}s: "
          f"{cores} cores.  Plan:")
    print(allocation.plan.describe())
    simulator = PipelineSimulator(allocation.plan, cost_model, decimals)
    stream = simulator.simulate_stream(200)
    print(f"steady-state throughput at that size: "
          f"{stream.throughput:.2f} req/s "
          f"(bottleneck stage service "
          f"{simulator.bottleneck_service():.2f}s)")


if __name__ == "__main__":
    main()
