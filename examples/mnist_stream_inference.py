#!/usr/bin/env python
"""Scenario: streaming encrypted digit recognition (paper Section IV).

Treats inference requests as a real-time data stream: a small
convolutional model is planned into alternating linear/non-linear
pipeline stages, CPU threads are allocated by the load-balancing
planner, and a stream of encrypted images flows through the threaded
runtime — several requests in flight at once.

The same plan is also fed to the discrete-event simulator, showing how
the latency experiments (Exp#2-4) extrapolate the runtime to testbed
scale.

Run:  python examples/mnist_stream_inference.py
"""

import numpy as np

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.datasets import make_image_classification
from repro.nn import model_zoo
from repro.nn.training import SGDTrainer
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.profiling import profile_primitive_times
from repro.protocol import DataProvider, ModelProvider
from repro.simulate.simulator import (
    PipelineSimulator,
    centralized_cipher_latency,
)
from repro.stream import Pipeline


def main() -> None:
    # A small digits-like dataset (8x8 so real Paillier stays snappy).
    dataset = make_image_classification(
        samples=400, channels=1, height=8, width=8, num_classes=4,
        difficulty=0.3, seed=5, name="mini-digits",
    )
    model = model_zoo.conv_fc(
        (1, 8, 8), 4, conv_channels=(4,), fc_hidden=16, seed=1,
        name="mini-conv",
    )
    result = SGDTrainer(model, learning_rate=0.05, seed=0).fit(
        dataset.train_x, dataset.train_y, epochs=8
    )
    print(f"trained mini-conv: accuracy={result.train_accuracy:.1%}")

    # Plan: primitives -> profile -> load-balanced allocation.
    decimals = 2
    config = RuntimeConfig(key_size=192, seed=11)
    model_provider = ModelProvider(model, decimals=decimals,
                                   config=config)
    data_provider = DataProvider(value_decimals=decimals, config=config)
    stages = model_provider.stages
    cost_model = CostModel.reference()
    times = profile_primitive_times(stages, cost_model, decimals)
    cluster = ClusterSpec.homogeneous(2, 1, 2)
    allocation = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
    print("\ndeployment plan:")
    print(allocation.plan.describe())

    # Stream 8 encrypted requests through the threaded runtime.
    inputs = list(dataset.test_x[:8])
    pipeline = Pipeline(model_provider, data_provider, allocation.plan)
    stats = pipeline.run_stream(inputs)
    plain = model.predict(np.stack(inputs))
    agreements = sum(
        result.prediction == plain[result.request_id]
        for result in stats.results
    )
    print(f"\nstreamed {len(inputs)} encrypted requests:")
    print(f"  agreement with plaintext: {agreements}/{len(inputs)}")
    print(f"  mean latency: {stats.mean_latency:.2f}s")
    print(f"  throughput:   {stats.throughput:.2f} req/s")
    print(f"  wall time {stats.wall_time:.2f}s < sum of latencies "
          f"{sum(r.latency for r in stats.results):.2f}s "
          "(requests overlap in the pipeline)")
    print("\nper-stage occupancy:")
    print(stats.utilization_report())

    # The simulator view of the same plan, at testbed scale.
    simulator = PipelineSimulator(allocation.plan, cost_model, decimals)
    cipher = centralized_cipher_latency(stages, cost_model, decimals)
    print("\nsimulator (2048-bit reference testbed profile):")
    print(f"  CipherBase (centralized, 1 thread): {cipher:8.2f}s")
    print(f"  PP-Stream pipeline request latency: "
          f"{simulator.request_latency():8.2f}s")
    stream = simulator.simulate_stream(100)
    print(f"  steady-state throughput:            "
          f"{stream.throughput:8.2f} req/s")


if __name__ == "__main__":
    main()
