#!/usr/bin/env python
"""Scenario: deploying an existing model that wasn't built for privacy.

A user brings a CNN with MaxPool layers (position-sensitive —
incompatible with obfuscated tensors, §III-C).  This example shows the
production on-ramp:

1. diagnose the model, rewrite MaxPool -> stride-2 conv + ReLU,
2. fine-tune the rewritten model briefly,
3. verify the fixed-point headroom for the chosen key size,
4. deploy behind a rate limiter (the §II-C model-stealing
   countermeasure) and run encrypted inference.

Run:  python examples/bring_your_own_model.py
"""

import numpy as np

from repro.config import RuntimeConfig
from repro.datasets import make_image_classification
from repro.errors import PlannerError
from repro.nn.layers import (
    Conv2d,
    Flatten,
    FullyConnected,
    MaxPool2d,
    ReLU,
    SoftMax,
)
from repro.nn.model import Sequential
from repro.nn.rewrite import count_position_sensitive, \
    rewrite_for_privacy
from repro.nn.training import SGDTrainer
from repro.planner.primitive import extract_primitives
from repro.protocol import (
    DataProvider,
    InferenceSession,
    ModelProvider,
    RateLimiter,
    RateLimitExceeded,
)
from repro.scaling.headroom import require_headroom
from repro.scaling.parameter_scaling import select_scaling_factor


def legacy_model() -> Sequential:
    """A user's CNN, built with MaxPool like most off-the-shelf nets."""
    rng = np.random.default_rng(7)
    model = Sequential((1, 8, 8), name="legacy-cnn")
    model.add(Conv2d(1, 4, kernel=3, padding=1, rng=rng))
    model.add(ReLU())
    model.add(MaxPool2d(2))
    model.add(Flatten())
    model.add(FullyConnected(64, 4, rng=rng))
    model.add(SoftMax())
    return model


def main() -> None:
    dataset = make_image_classification(
        samples=400, channels=1, height=8, width=8, num_classes=4,
        difficulty=0.3, seed=8, name="byom",
    )
    model = legacy_model()

    # 1. The planner rejects the model as-is.
    try:
        extract_primitives(model)
    except PlannerError as exc:
        print(f"planner rejects the legacy model:\n  {exc}\n")
    print(f"position-sensitive layers blocking deployment: "
          f"{count_position_sensitive(model)}")

    rewritten = rewrite_for_privacy(model)
    print(f"after rewrite: {count_position_sensitive(rewritten)} "
          "blocking layers\n")

    # 2. Fine-tune the rewritten model (the substituted convs start as
    #    average pooling, so a few epochs recover accuracy).
    result = SGDTrainer(rewritten, learning_rate=0.05, seed=0).fit(
        dataset.train_x, dataset.train_y, epochs=8
    )
    print(f"fine-tuned: train accuracy {result.train_accuracy:.1%}")
    decision = select_scaling_factor(
        rewritten, dataset.train_x, dataset.train_y,
        dataset.num_classes,
    )
    print(f"selected scaling factor 10^{decision.decimals}")

    # 3. Headroom check: would this key size ever overflow?
    key_size = 256
    report = require_headroom(rewritten, decision.decimals, key_size,
                              input_bound=1.0)
    print(f"headroom at {key_size}-bit keys: "
          f"{report.margin_bits:.0f} bits of slack "
          f"(tightest at stage {report.tightest_stage})\n")

    # 4. Deploy behind a rate limiter and serve queries.
    config = RuntimeConfig(key_size=key_size)
    limiter = RateLimiter(max_per_window=3, window_seconds=3600)
    session = InferenceSession(
        ModelProvider(rewritten, decimals=decision.decimals,
                      config=config),
        DataProvider(value_decimals=decision.decimals, config=config),
        rate_limiter=limiter,
    )
    served = 0
    for index in range(5):
        try:
            outcome = session.run(dataset.test_x[index])
        except RateLimitExceeded as exc:
            print(f"query {index}: REFUSED ({exc})")
            continue
        served += 1
        plain = int(rewritten.predict(dataset.test_x[index][None])[0])
        print(f"query {index}: prediction={outcome.prediction} "
              f"(plaintext={plain}, {outcome.wall_time:.2f}s)")
    print(f"\nserved {served}/5 queries; "
          f"{limiter.remaining_in_window()} remaining in this window")


if __name__ == "__main__":
    main()
