#!/usr/bin/env python
"""Quickstart: privacy-preserving inference in ~40 lines.

Trains a small 3FC model on the synthetic breast-cancer dataset, picks
a scaling factor with the paper's procedure, and runs collaborative
encrypted inference between a model provider and a data provider —
verifying against plaintext inference and showing what actually crossed
the wire.

Run:  python examples/quickstart.py
"""

from repro.config import RuntimeConfig
from repro.datasets import load_dataset
from repro.nn import model_zoo
from repro.nn.training import SGDTrainer
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.parameter_scaling import select_scaling_factor


def main() -> None:
    # 1. The model provider trains a model (normally with PyTorch; here
    #    with the in-repo numpy engine on a synthetic dataset).
    dataset = load_dataset("breast")
    model = model_zoo.build_model("breast")
    result = SGDTrainer(model, learning_rate=0.1, seed=0).fit(
        dataset.train_x, dataset.train_y, epochs=12
    )
    print(f"trained: accuracy={result.train_accuracy:.1%}")
    print(model.summary())

    # 2. Pick the scaling factor (paper Section IV-A): smallest f whose
    #    rounded model matches the original training accuracy.
    decision = select_scaling_factor(
        model, dataset.train_x, dataset.train_y, dataset.num_classes
    )
    print(f"selected scaling factor F = 10^{decision.decimals}")

    # 3. Set up the two parties.  The data provider generates the
    #    Paillier keypair; the model provider gets only the public key.
    config = RuntimeConfig(key_size=256)
    session = InferenceSession(
        ModelProvider(model, decimals=decision.decimals, config=config),
        DataProvider(value_decimals=decision.decimals, config=config),
    )

    # 4. Collaborative encrypted inference on held-out samples.
    correct = 0
    for sample, label in zip(dataset.test_x[:5], dataset.test_y[:5]):
        outcome = session.run(sample)
        plain = int(model.predict(sample[None])[0])
        marker = "ok" if outcome.prediction == plain else "DIFFERS"
        correct += outcome.prediction == label
        print(
            f"  encrypted={outcome.prediction} plain={plain} "
            f"true={label} [{marker}]  "
            f"({len(outcome.transcript.messages)} messages, "
            f"{outcome.transcript.total_elements} ciphertexts, "
            f"{outcome.wall_time:.2f}s)"
        )

    # 5. What did the wire see?  Only ciphertexts.
    outcome = session.run(dataset.test_x[0])
    print(
        "wire carried only ciphertexts:",
        outcome.transcript.all_ciphertext(),
    )


if __name__ == "__main__":
    main()
