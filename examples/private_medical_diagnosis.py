#!/usr/bin/env python
"""Scenario: privacy-preserving medical diagnosis (paper Section I).

A hospital (data provider) holds patient records it must not disclose;
a diagnostics company (model provider) holds a proprietary heart-disease
model it must not disclose.  This example runs the full collaborative
workflow for a batch of patients and then *audits* the protocol:

* what the diagnostics company observed (ciphertexts only),
* what the hospital observed mid-protocol (only permuted intermediate
  values — measured with the distance-correlation leakage metric of
  Exp#5),
* and that diagnoses still match plaintext inference exactly.

Run:  python examples/private_medical_diagnosis.py
"""

import numpy as np

from repro.config import RuntimeConfig
from repro.datasets import load_dataset
from repro.nn import model_zoo
from repro.nn.metrics import top1_accuracy
from repro.nn.training import SGDTrainer
from repro.obfuscation.leakage import distance_correlation
from repro.protocol import DataProvider, InferenceSession, ModelProvider
from repro.scaling.parameter_scaling import (
    round_parameters,
    select_scaling_factor,
)


def main() -> None:
    # --- the diagnostics company trains its proprietary model -------
    dataset = load_dataset("heart")
    model = model_zoo.build_model("heart")
    SGDTrainer(model, learning_rate=0.1, seed=0).fit(
        dataset.train_x, dataset.train_y, epochs=15
    )
    decision = select_scaling_factor(
        model, dataset.train_x, dataset.train_y, dataset.num_classes
    )
    print(
        f"model ready: scaling factor 10^{decision.decimals}, "
        f"training accuracy {decision.original_accuracy:.1%}"
    )

    # --- the two parties ---------------------------------------------
    config = RuntimeConfig(key_size=256, seed=99)
    company = ModelProvider(model, decimals=decision.decimals,
                            config=config)
    hospital = DataProvider(value_decimals=decision.decimals,
                            config=config)
    session = InferenceSession(company, hospital)

    # --- diagnose a batch of patients ---------------------------------
    patients = dataset.test_x[:15]
    truth = dataset.test_y[:15]
    diagnoses = []
    for record in patients:
        outcome = session.run(record)
        diagnoses.append(outcome.prediction)
    diagnoses = np.array(diagnoses)
    plain = model.predict(patients)
    print(f"diagnosed {len(patients)} patients")
    print(f"  encrypted-vs-plain agreement: "
          f"{np.mean(diagnoses == plain):.0%}")
    print(f"  accuracy vs ground truth:     "
          f"{top1_accuracy(diagnoses, truth):.0%}")

    # --- audit: company side ------------------------------------------
    print("\naudit: diagnostics company observed "
          f"{len(company.observed)} payloads, kinds: "
          f"{set(company.observed)}")

    # --- audit: hospital side ------------------------------------------
    # Mid-protocol, the hospital decrypts *permuted* intermediate
    # tensors.  Quantify what they reveal about the true (non-permuted)
    # intermediates with distance correlation, like Exp#5.
    rounded = round_parameters(model, decision.decimals)
    record = np.round(patients[0], decision.decimals)
    current = record[None]
    true_intermediates = []
    for layer in rounded.layers:
        current = layer.forward(current)
        if layer.kind.value == "linear":
            true_intermediates.append(current[0].reshape(-1))

    session.run(patients[0])
    observed = hospital.observed_plaintexts[-3:]  # this run's rounds
    print("audit: hospital's mid-protocol views vs true intermediates "
          "(distance correlation, 1.0 = fully revealed):")
    for index, (seen, true_values) in enumerate(
        zip(observed[:-1], true_intermediates)
    ):
        dcor = distance_correlation(seen.reshape(-1), true_values)
        print(f"  round {index}: length={seen.size:4d}  dCor={dcor:.3f}")
    print("  (final round is intentionally non-permuted so SoftMax "
          "can run — that output is the hospital's own result)")


if __name__ == "__main__":
    main()
