"""Ablation: sensitivity to network bandwidth and latency.

The paper's testbed uses 10 GbE.  This ablation re-simulates the
full-featured plan under slower/faster networks to show where the
pipeline becomes communication-bound — context for the tensor
partitioning results (Exp#4).
"""

import dataclasses

from repro.experiments.common import (
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from repro.planner.allocation import allocate_load_balanced
from repro.planner.profiling import profile_primitive_times
from repro.simulate.simulator import PipelineSimulator
from repro.simulate.stagecosts import make_comm_model

#: Bandwidths swept: 1 GbE, 10 GbE (testbed), 40 GbE.
BANDWIDTHS = (0.125e9, 1.25e9, 5.0e9)


def test_latency_vs_bandwidth(benchmark):
    prepared = prepare_model("mnist-2")
    stages = prepared.stages()
    decimals = prepared.decimals
    cluster = cluster_with_total_cores("mnist-2", 48)

    def run():
        results = {}
        for bandwidth in BANDWIDTHS:
            cost_model = dataclasses.replace(
                reference_cost_model(), network_bandwidth=bandwidth
            )
            times = profile_primitive_times(stages, cost_model,
                                            decimals)
            allocation = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=True,
                comm_model=make_comm_model(cost_model, True),
            )
            results[bandwidth] = PipelineSimulator(
                allocation.plan, cost_model, decimals
            ).request_latency()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("latency (s) vs network bandwidth on mnist-2 (48 cores):")
    for bandwidth, latency in sorted(results.items()):
        print(f"  {bandwidth / 1.25e8:6.1f} Gbps: {latency:8.3f}s")

    ordered = [results[b] for b in sorted(results)]
    # slower networks can only hurt
    assert ordered[0] >= ordered[1] >= ordered[2]
    # at 48 cores the pipeline is mostly compute-bound at 10 GbE, so
    # 4x more bandwidth moves latency by less than dropping to 1 GbE
    gain_up = ordered[1] - ordered[2]
    loss_down = ordered[0] - ordered[1]
    assert loss_down >= gain_up