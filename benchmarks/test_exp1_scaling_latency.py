"""Exp#1, Figure 6: inference latency vs scaling factor.

Simulated latency (all features on) for the MNIST and CIFAR models as
the scaling factor sweeps 10^0..10^6.  The paper reports ~29% (MNIST)
and ~23% (CIFAR) latency growth from 10^0 to 10^6.
"""

from repro.experiments import exp1_scaling

#: Figure 6 covers the MNIST and CIFAR models.
KEYS = ("mnist-1", "mnist-2", "mnist-3",
        "cifar-10-1", "cifar-10-2", "cifar-10-3")


def test_fig6_latency_vs_factor(benchmark):
    rows = benchmark.pedantic(
        lambda: exp1_scaling.run_latency_vs_factor(KEYS),
        rounds=1, iterations=1,
    )
    print()
    print(exp1_scaling.render_latency_vs_factor(rows))

    for row in rows:
        latencies = row.latency_by_decimals
        growth = latencies[6] / latencies[0] - 1.0
        # latency must grow with the factor, by a modest factor
        # (paper: 23-29%)
        assert growth > 0.0
        assert growth < 2.0
