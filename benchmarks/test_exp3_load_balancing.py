"""Exp#3, Figure 7: load-balanced resource allocation.

Even-split vs load-balanced allocation across a core sweep.  The paper
reports ~42.5% average reduction (max 64.94%, on the largest model).
"""

import numpy as np

from repro.experiments import exp3_allocation


def test_fig7_load_balancing(benchmark):
    rows = benchmark.pedantic(
        lambda: exp3_allocation.run_allocation_comparison(),
        rounds=1, iterations=1,
    )
    print()
    print(exp3_allocation.render_allocation_comparison(rows))

    reductions = [row.reduction for row in rows]
    # load balancing never hurts materially, and helps on average
    assert min(reductions) > -5.0
    assert float(np.mean(reductions)) > 10.0

    # paper: the gain is higher for larger models — the MNIST rows
    # average above the healthcare rows
    mnist = [r.reduction for r in rows if r.model_key.startswith("mnist")]
    health = [r.reduction for r in rows
              if not r.model_key.startswith("mnist")]
    assert float(np.mean(mnist)) > float(np.mean(health))
