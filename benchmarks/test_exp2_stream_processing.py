"""Exp#2, Figure 8: distributed stream processing vs centralized.

PlainBase / CipherBase / PP-Stream-25 / PP-Stream-50 latencies for the
healthcare and MNIST models, with the paper's qualitative findings
checked: PP-Stream cuts CipherBase latency by a large factor, more
cores help, and PlainBase shows the raw crypto overhead.
"""

import numpy as np

from repro.experiments import exp2_stream


def test_fig8_stream_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: exp2_stream.run_stream_comparison(),
        rounds=1, iterations=1,
    )
    print()
    print(exp2_stream.render_stream_comparison(rows))

    for row in rows:
        # privacy preservation is orders of magnitude over plaintext
        assert row.cipher_base > 100 * row.plain_base
        # stream processing wins big, and 50 cores beat 25
        assert row.pp_stream_25 < row.cipher_base
        assert row.pp_stream_50 < row.pp_stream_25
        assert row.reduction_25 > 50.0

    # paper: PP-Stream-50 reduces PP-Stream-25 by ~39% on average
    mean_50_vs_25 = float(np.mean([
        100.0 * (row.pp_stream_25 - row.pp_stream_50)
        / row.pp_stream_25
        for row in rows
    ]))
    assert 15.0 < mean_50_vs_25 < 75.0
