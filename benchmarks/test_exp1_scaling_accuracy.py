"""Exp#1, Tables IV and V: accuracy vs scaling factor.

Prints both tables (training and testing set) and checks the paper's
qualitative findings: accuracy rises with the factor and the selected
factor recovers the original test accuracy.
"""

from repro.experiments import exp1_scaling


def test_tables_iv_and_v(benchmark, model_keys):
    rows = benchmark.pedantic(
        lambda: exp1_scaling.run_accuracy_tables(model_keys),
        rounds=1, iterations=1,
    )
    print()
    print(exp1_scaling.render_accuracy_table(rows, "train"))
    print()
    print(exp1_scaling.render_accuracy_table(rows, "test"))

    for row in rows:
        train = row.train_by_decimals
        # the largest factor is at least as accurate as the smallest
        assert train[max(train)] >= train[min(train)] - 1e-9
        # the selected factor preserves test accuracy (paper: exactly;
        # we allow a small tolerance on synthetic data)
        selected_test = row.test_by_decimals[row.selected_decimals]
        assert abs(selected_test - row.original_test) < 2.0
