"""Exp#4, Figure 9: tensor partitioning.

Partitioning on vs off across a core sweep.  The paper's findings:
gains grow with core count, and convolutional models (MNIST-2/3) gain
more than the FC-only models (healthcare, MNIST-1), which only benefit
from output partitioning.
"""

import numpy as np

from repro.experiments import exp4_partitioning


def test_fig9_tensor_partitioning(benchmark):
    rows = benchmark.pedantic(
        lambda: exp4_partitioning.run_partitioning_comparison(),
        rounds=1, iterations=1,
    )
    print()
    print(exp4_partitioning.render_partitioning_comparison(rows))

    for row in rows:
        # partitioning never makes latency worse
        assert row.with_partitioning <= row.without_partitioning * 1.001

    by_model: dict[str, dict[int, float]] = {}
    for row in rows:
        by_model.setdefault(row.model_key, {})[row.total_cores] = \
            row.reduction

    # gains grow with cores on the conv models
    for key in ("mnist-2", "mnist-3"):
        sweep = by_model[key]
        assert sweep[max(sweep)] > sweep[min(sweep)]

    # conv models gain more than FC-only models
    conv_gain = float(np.mean(
        [max(by_model[k].values()) for k in ("mnist-2", "mnist-3")]
    ))
    fc_gain = float(np.mean(
        [max(by_model[k].values())
         for k in ("breast", "heart", "cardio", "mnist-1")]
    ))
    assert conv_gain > fc_gain
