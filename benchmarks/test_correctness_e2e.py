"""End-to-end correctness bench: real crypto, agreement vs plaintext.

Runs the actual collaborative protocol (no simulator) over held-out
samples and measures how often the encrypted prediction matches the
*unrounded* plaintext model as the scaling factor grows — the
crypto-level ground truth behind Exp#1's accuracy tables: at the
selected factor, encrypted inference is indistinguishable from plain.
"""

import numpy as np

from repro.config import RuntimeConfig
from repro.experiments.common import prepare_model
from repro.protocol import DataProvider, InferenceSession, ModelProvider

KEY_SIZE = 128
SAMPLES = 10
DECIMALS_SWEEP = (0, 1, 3)


def test_encrypted_agreement_vs_scaling_factor(benchmark):
    # cardio is the hard dataset: rounding to 0 decimals wrecks it
    # (Table IV), so the sweep actually shows the transition.
    prepared = prepare_model("cardio")
    dataset = prepared.dataset
    plain = prepared.model.predict(dataset.test_x[:SAMPLES])

    def run():
        agreement = {}
        for decimals in DECIMALS_SWEEP:
            config = RuntimeConfig(key_size=KEY_SIZE, seed=19)
            session = InferenceSession(
                ModelProvider(prepared.model, decimals=decimals,
                              config=config),
                DataProvider(value_decimals=decimals, config=config),
            )
            matches = sum(
                session.run(dataset.test_x[i]).prediction == plain[i]
                for i in range(SAMPLES)
            )
            agreement[decimals] = matches / SAMPLES
        return agreement

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("encrypted-vs-plaintext prediction agreement "
          f"({KEY_SIZE}-bit keys, {SAMPLES} samples):")
    for decimals, rate in agreement.items():
        print(f"  F = 10^{decimals}: {rate:.0%}")

    # at/above the selected factor the protocol agrees perfectly
    top = max(DECIMALS_SWEEP)
    assert agreement[top] == 1.0
    # and agreement is monotone non-decreasing in the factor
    rates = [agreement[d] for d in sorted(DECIMALS_SWEEP)]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))