"""Real-runtime benchmark: the threaded pipeline with actual Paillier.

Unlike the simulator-backed figure benches, this streams encrypted
requests through the real runtime (Paillier arithmetic, permutations,
per-stage thread pools) at a small key size — the crypto-correct path
the test suite verifies, timed end-to-end.
"""

import numpy as np

from repro.config import RuntimeConfig
from repro.costs import CostModel
from repro.experiments.common import prepare_model
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.profiling import profile_primitive_times
from repro.protocol import DataProvider, ModelProvider
from repro.stream import Pipeline

KEY_SIZE = 128
REQUESTS = 6


def test_real_pipeline_stream(benchmark):
    prepared = prepare_model("breast")
    config = RuntimeConfig(key_size=KEY_SIZE, seed=17)
    model_provider = ModelProvider(prepared.model,
                                   decimals=prepared.decimals,
                                   config=config)
    data_provider = DataProvider(value_decimals=prepared.decimals,
                                 config=config)
    stages = model_provider.stages
    times = profile_primitive_times(stages, CostModel.reference(),
                                    prepared.decimals)
    cluster = ClusterSpec.homogeneous(2, 1, 2)
    allocation = allocate_load_balanced(stages, times, cluster,
                                        method="water_filling")
    inputs = list(prepared.dataset.test_x[:REQUESTS])

    def run():
        pipeline = Pipeline(model_provider, data_provider,
                            allocation.plan)
        return pipeline.run_stream(inputs)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"real runtime ({KEY_SIZE}-bit keys, {REQUESTS} requests): "
          f"mean latency {stats.mean_latency:.3f}s, throughput "
          f"{stats.throughput:.2f} req/s")

    plain = prepared.model.predict(np.stack(inputs))
    by_id = sorted(stats.results, key=lambda r: r.request_id)
    agreement = sum(
        r.prediction == plain[r.request_id] for r in by_id
    )
    assert agreement == REQUESTS
    # pipelining: wall time beats the sum of per-request latencies
    assert stats.wall_time < sum(r.latency for r in stats.results)
