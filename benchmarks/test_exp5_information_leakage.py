"""Exp#5, Table VI: information-leakage measurement.

Distance correlation between before/after-obfuscation tensors for
lengths 2^5..2^13, using real activations exported from the trained
MNIST models.  Paper values fall from 0.2898 (2^5) to 0.0200 (2^13).
"""

from repro.experiments import exp5_leakage


def test_table_vi_leakage(benchmark):
    rows = benchmark.pedantic(
        lambda: exp5_leakage.run_leakage(trials=8,
                                         source="activations"),
        rounds=1, iterations=1,
    )
    print()
    print(exp5_leakage.render_leakage(rows))

    values = {row.length: row.distance_correlation for row in rows}
    # monotone decrease with tensor length (allowing tiny wiggles)
    lengths = sorted(values)
    for small, large in zip(lengths, lengths[2:]):
        assert values[large] < values[small]
    # paper magnitudes: ~0.29 at 2^5, ~0.02 at 2^13
    assert 0.1 < values[2 ** 5] < 0.6
    assert values[2 ** 13] < 0.06
