"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to include the CIFAR VGG models in Exp#1 accuracy
benches (adds several minutes of numpy training); the default covers
the six healthcare + MNIST models the paper's figures focus on.
"""

import os

import pytest

#: Models covered by default (the paper's Fig. 7/8/9 set).
FAST_MODELS = ("breast", "heart", "cardio", "mnist-1", "mnist-2",
               "mnist-3")

ALL_MODELS = FAST_MODELS + ("cifar-10-1", "cifar-10-2", "cifar-10-3")


def selected_models():
    if os.environ.get("REPRO_FULL") == "1":
        return ALL_MODELS
    return FAST_MODELS


@pytest.fixture(scope="session")
def model_keys():
    return selected_models()
