"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to include the CIFAR VGG models in Exp#1 accuracy
benches (adds several minutes of numpy training); the default covers
the six healthcare + MNIST models the paper's figures focus on.

Perf-trajectory flags:

* ``--bench-json PATH`` — have the Paillier engine bench write its
  BENCH JSON document (ops/sec per op, scalar vs engine, per key
  size) to PATH, e.g. ``pytest benchmarks/test_fig1_paillier_microbench.py
  --bench-json BENCH_paillier.json``.
* ``-m smoke`` — run only the fast tiny-key engine sanity checks, not
  the full microbench (the same check also runs in tier-1 via
  ``tests/crypto/test_engine.py``).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        help="write the Paillier engine BENCH JSON document to this "
             "path (see docs/PERFORMANCE.md)",
    )


@pytest.fixture(scope="session")
def bench_json_path(request):
    """Target path of the BENCH JSON document, or None when not asked."""
    return request.config.getoption("--bench-json")

#: Models covered by default (the paper's Fig. 7/8/9 set).
FAST_MODELS = ("breast", "heart", "cardio", "mnist-1", "mnist-2",
               "mnist-3")

ALL_MODELS = FAST_MODELS + ("cifar-10-1", "cifar-10-2", "cifar-10-3")


def selected_models():
    if os.environ.get("REPRO_FULL") == "1":
        return ALL_MODELS
    return FAST_MODELS


@pytest.fixture(scope="session")
def model_keys():
    return selected_models()
