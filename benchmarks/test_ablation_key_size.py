"""Ablation: end-to-end latency vs Paillier key size.

Calibrates the cost model from this interpreter's *real* Paillier
kernels at several key sizes and simulates the same plan under each —
showing how the paper's fixed 2048-bit choice (NIST guidance) trades
latency for security margin.
"""

import pytest

from repro.costs import CostModel
from repro.experiments.common import prepare_model
from repro.planner.allocation import allocate_load_balanced
from repro.planner.plan import ClusterSpec
from repro.planner.profiling import profile_primitive_times
from repro.simulate.simulator import PipelineSimulator

KEY_SIZES = (128, 256, 512)


def test_latency_vs_key_size(benchmark):
    prepared = prepare_model("mnist-1")
    stages = prepared.stages()
    cluster = ClusterSpec.homogeneous(2, 1, 8)

    def run():
        results = {}
        for key_size in KEY_SIZES:
            cost_model = CostModel.calibrate(key_size, samples=24)
            times = profile_primitive_times(stages, cost_model,
                                            prepared.decimals)
            allocation = allocate_load_balanced(
                stages, times, cluster, method="water_filling"
            )
            results[key_size] = PipelineSimulator(
                allocation.plan, cost_model, prepared.decimals
            ).request_latency()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("latency (s) vs key size on mnist-1 (calibrated kernels):")
    for key_size, latency in results.items():
        print(f"  {key_size:>5} bits: {latency:8.3f}s")

    assert results[256] > results[128]
    assert results[512] > results[256]
    # the crypto cost curve is superlinear in the key size (the exact
    # ratio is wall-clock dependent; 2x is a conservative floor for a
    # 4x key growth whose modexp cost scales roughly cubically)
    assert results[512] / results[128] > 2.0
