"""Figure 1: Paillier micro-benchmark (real cryptography).

Per-operation pytest-benchmark timings at the paper's key sizes, plus
the per-tensor Fig. 1 table (28x28 tensor, scalar 10^6), plus the
scalar-vs-engine comparison that emits the BENCH_paillier.json perf
trajectory (run with ``--bench-json BENCH_paillier.json``).
"""

import random

import numpy as np
import pytest

from repro.bench import render_bench, run_paillier_bench, write_bench_json
from repro.crypto.engine import PaillierEngine
from repro.crypto.paillier import generate_keypair
from repro.crypto.tensor import EncryptedTensor
from repro.experiments import fig1_paillier


@pytest.fixture(scope="module", params=[512, 1024, 2048])
def keypair_at(request):
    public, private = generate_keypair(request.param, seed=1)
    return request.param, public, private


def test_fig1_encrypt(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.name = f"encrypt-{key_size}"
    benchmark.pedantic(
        lambda: public.encrypt(123456, rng), rounds=5, iterations=1
    )


def test_fig1_decrypt(benchmark, keypair_at):
    key_size, public, private = keypair_at
    rng = random.Random(0)
    cipher = public.encrypt(123456, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(
        lambda: private.decrypt(cipher), rounds=5, iterations=1
    )


def test_fig1_homomorphic_add(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    a = public.encrypt(11, rng)
    b = public.encrypt(22, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(lambda: a + b, rounds=20, iterations=5)


def test_fig1_scalar_mul(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    cipher = public.encrypt(33, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(lambda: cipher * (10 ** 6), rounds=10,
                       iterations=2)


def test_fig1_table(benchmark):
    """The full Fig. 1 table: per-28x28-tensor step latencies."""
    rows = benchmark.pedantic(
        lambda: fig1_paillier.run_fig1(
            key_sizes=(512, 1024, 2048), sample_elements=12, repeats=1
        ),
        rounds=1, iterations=1,
    )
    print()
    print(fig1_paillier.render_fig1(rows))
    # paper shape: enc/dec in seconds per tensor at 2048 bits,
    # arithmetic orders of magnitude cheaper
    big = rows[-1]
    assert big.encrypt_seconds > big.add_seconds * 50
    assert big.encrypt_seconds > rows[0].encrypt_seconds


@pytest.mark.smoke
def test_engine_smoke_tiny_key():
    """Tiny-key sanity check of the bench subject: the engine agrees
    bit-for-bit with the scalar path, so benchmarking it is meaningful.
    Fast enough for any tier (128-bit key, a handful of elements)."""
    public, private = generate_keypair(128, seed=3)
    values = [0, 1, 255, public.n - 1]
    scalar_rng, engine_rng = random.Random(5), random.Random(5)
    scalar = [public.encrypt(m, scalar_rng).ciphertext for m in values]
    with PaillierEngine(public, private_key=private, seed=9) as engine:
        batched = [c.ciphertext
                   for c in engine.encrypt_many(values, rng=engine_rng)]
        assert batched == scalar
        pooled = engine.encrypt_many(values)
        assert engine.decrypt_many(pooled) == values


@pytest.mark.smoke
def test_engine_smoke_matvec_tiny_key():
    public, private = generate_keypair(128, seed=3)
    rng = random.Random(1)
    x = np.array([3, -5, 0, 7], dtype=np.int64)
    weight = np.array(
        [[rng.randrange(-999, 999) for _ in range(4)] for _ in range(3)],
        dtype=np.int64,
    )
    bias = np.array([1, -2, 3], dtype=np.int64)
    tensor = EncryptedTensor.encrypt(x, public, random.Random(2))
    scalar = tensor.affine(weight, bias, random.Random(4))
    with PaillierEngine(public, seed=9) as engine:
        batched = tensor.affine(weight, bias, random.Random(4),
                                engine=engine)
    assert [c.ciphertext for c in scalar.cells()] == \
        [c.ciphertext for c in batched.cells()]


def test_engine_vs_scalar_bench(bench_json_path):
    """The scalar-vs-engine trajectory bench (BENCH_paillier.json).

    Runs a reduced configuration by default so the suite stays
    practical; ``--bench-json PATH`` additionally writes the document.
    The pooled-encryption speedup bound is deliberately loose — the
    real numbers (hundreds of times faster online) live in the JSON,
    assertions only guard against the engine silently regressing to
    the scalar path.
    """
    results = run_paillier_bench(
        key_sizes=(512,), workers=2, elements=24, fc_shape=(32, 32),
        include_conv=False,
    )
    print()
    print(render_bench(results))
    if bench_json_path:
        full = run_paillier_bench()  # the default 512/1024 document
        write_bench_json(full, bench_json_path)
        print(f"wrote {bench_json_path}")
    row = results["key_sizes"]["512"]
    assert row["encrypt_many"]["speedup"] > 5.0
    assert row["fc_matvec"]["speedup"] > 1.2
