"""Figure 1: Paillier micro-benchmark (real cryptography).

Per-operation pytest-benchmark timings at the paper's key sizes, plus
the per-tensor Fig. 1 table (28x28 tensor, scalar 10^6).
"""

import random

import pytest

from repro.crypto.paillier import generate_keypair
from repro.experiments import fig1_paillier


@pytest.fixture(scope="module", params=[512, 1024, 2048])
def keypair_at(request):
    public, private = generate_keypair(request.param, seed=1)
    return request.param, public, private


def test_fig1_encrypt(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.name = f"encrypt-{key_size}"
    benchmark.pedantic(
        lambda: public.encrypt(123456, rng), rounds=5, iterations=1
    )


def test_fig1_decrypt(benchmark, keypair_at):
    key_size, public, private = keypair_at
    rng = random.Random(0)
    cipher = public.encrypt(123456, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(
        lambda: private.decrypt(cipher), rounds=5, iterations=1
    )


def test_fig1_homomorphic_add(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    a = public.encrypt(11, rng)
    b = public.encrypt(22, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(lambda: a + b, rounds=20, iterations=5)


def test_fig1_scalar_mul(benchmark, keypair_at):
    key_size, public, _ = keypair_at
    rng = random.Random(0)
    cipher = public.encrypt(33, rng)
    benchmark.group = f"fig1-{key_size}bit"
    benchmark.pedantic(lambda: cipher * (10 ** 6), rounds=10,
                       iterations=2)


def test_fig1_table(benchmark):
    """The full Fig. 1 table: per-28x28-tensor step latencies."""
    rows = benchmark.pedantic(
        lambda: fig1_paillier.run_fig1(
            key_sizes=(512, 1024, 2048), sample_elements=12, repeats=1
        ),
        rounds=1, iterations=1,
    )
    print()
    print(fig1_paillier.render_fig1(rows))
    # paper shape: enc/dec in seconds per tensor at 2048 bits,
    # arithmetic orders of magnitude cheaper
    big = rows[-1]
    assert big.encrypt_seconds > big.add_seconds * 50
    assert big.encrypt_seconds > rows[0].encrypt_seconds
