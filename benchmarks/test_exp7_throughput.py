"""Extension bench: steady-state throughput (design goal HP).

Not a paper figure — the paper lists high throughput as a design goal
and implies it via pipelining; this bench makes it measurable.
"""

from repro.experiments import exp7_throughput


def test_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: exp7_throughput.run_throughput(requests=200),
        rounds=1, iterations=1,
    )
    print()
    print(exp7_throughput.render_throughput(rows))

    for row in rows:
        # pipelining multiplies throughput well beyond the latency
        # improvement: at 50 cores the pipeline completes one request
        # per bottleneck interval
        assert row.pp_stream_25 > row.cipher_base
        assert row.pp_stream_50 >= row.pp_stream_25 * 0.95
        assert row.speedup_50 > 3.0


def test_latency_vs_load(benchmark):
    load_rows = benchmark.pedantic(
        lambda: exp7_throughput.run_latency_vs_load(),
        rounds=1, iterations=1,
    )
    print()
    print(exp7_throughput.render_latency_vs_load(load_rows))

    by_util = {row.utilization: row.mean_latency for row in load_rows}
    # latency is flat-ish below saturation and blows up past it
    assert by_util[0.5] < 2.0 * by_util[0.2]
    assert by_util[1.2] > 3.0 * by_util[0.2]