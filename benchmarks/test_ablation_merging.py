"""Ablation: operation-encapsulation strategies (Section IV-B).

Quantifies the paper's argument for merging adjacent same-kind
primitives: per-primitive stages pay extra serialization/transfer at
every boundary; a single sequential stage loses the pipeline (and the
privacy separation).
"""

from repro.experiments import ablation_merging


def test_encapsulation_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_merging.run_merging_ablation(),
        rounds=1, iterations=1,
    )
    print()
    print(ablation_merging.render_merging_ablation(rows))

    for row in rows:
        # Merging avoids the per-boundary serialization overhead; the
        # per-primitive extreme can claw some of it back via
        # finer-grained thread allocation, so the two are close —
        # but merging never loses materially ...
        assert row.merged <= row.unmerged * 1.02
        # ... and both pipeline variants beat the single-stage extreme
        # by a large margin.
        assert row.merged < 0.5 * row.single_stage
