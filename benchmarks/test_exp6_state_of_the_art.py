"""Exp#6, Table VII: comparison with state-of-the-art systems.

SecureML / CryptoNets / CryptoDL (reported numbers), EzPC (the in-repo
2PC engine, executed), and PP-Stream (simulated, all features).  The
paper's finding: PP-Stream achieves the lowest latency on all three
MNIST models.
"""

from repro.experiments import exp6_comparison


def test_table_vii_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: exp6_comparison.run_comparison(ezpc_max_real_relu=32),
        rounds=1, iterations=1,
    )
    print()
    print(exp6_comparison.render_comparison(rows))
    for row in rows:
        print(f"  [{row.system} / {row.model_key}] {row.provenance}")

    by_pair = {(r.system, r.model_key): r.latency_seconds
               for r in rows}
    # PP-Stream beats EzPC on every model (paper: 110-236% gaps)
    for model in ("mnist-1", "mnist-2", "mnist-3"):
        assert by_pair[("PP-Stream", model)] < \
            by_pair[("EzPC", model)]
    # PP-Stream beats the reported homomorphic baselines by orders of
    # magnitude on MNIST-2
    assert by_pair[("PP-Stream", "mnist-2")] < \
        0.5 * by_pair[("CryptoNets", "mnist-2")]
    assert by_pair[("PP-Stream", "mnist-2")] < \
        0.5 * by_pair[("CryptoDL", "mnist-2")]
    # EzPC's latency grows sharply with model size (paper: 2.4 -> 25.7)
    assert by_pair[("EzPC", "mnist-3")] > by_pair[("EzPC", "mnist-1")]
