"""CipherBase: centralized single-thread inference on ciphertexts.

The Exp#2 baseline showing raw privacy-preservation overhead: the same
hybrid workflow as PP-Stream (homomorphic linear layers, decrypted
non-linear layers) but run sequentially on one server with one thread —
no pipelining, no multi-threading, no partitioning.  Runnable for real
on small models; the simulator-side analogue is
:func:`repro.simulate.centralized_cipher_latency`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_CONFIG, RuntimeConfig
from ..crypto.paillier import generate_keypair
from ..crypto.tensor import EncryptedTensor
from ..errors import BaselineError
from ..nn.layers import Flatten, LayerKind
from ..nn.model import Sequential
from ..planner.primitive import model_stages
from ..scaling.fixed_point import scale_to_int, scaled_affine_for_layer


@dataclass(frozen=True)
class CipherResult:
    """Outcome of one CipherBase inference."""

    prediction: int
    probabilities: np.ndarray
    latency: float


class CipherBase:
    """Sequential encrypted inference on a single server."""

    def __init__(
        self,
        model: Sequential,
        decimals: int,
        config: RuntimeConfig = DEFAULT_CONFIG,
    ):
        self.decimals = decimals
        self.config = config
        self._rng = random.Random(config.seed ^ 0xCB)
        self.public_key, self._private_key = generate_keypair(
            config.key_size, seed=config.seed ^ 0xCB15
        )
        self.stages = model_stages(model)
        self._stage_affines = {}
        for stage in self.stages:
            if stage.kind is not LayerKind.LINEAR:
                continue
            affines = []
            for primitive in stage.primitives:
                if isinstance(primitive.layer, Flatten):
                    continue
                affines.append(scaled_affine_for_layer(
                    primitive.layer, primitive.input_shape, decimals,
                ))
            self._stage_affines[stage.index] = affines

    def infer(self, x: np.ndarray) -> CipherResult:
        """Run one encrypted inference end to end, sequentially."""
        start = time.perf_counter()
        x = np.asarray(x, dtype=np.float64)
        tensor = EncryptedTensor.encrypt(
            scale_to_int(x, self.decimals), self.public_key, self._rng,
            exponent=self.decimals,
        ).flatten()
        result: np.ndarray | None = None
        last_index = len(self.stages) - 1
        for stage in self.stages:
            if stage.kind is LayerKind.LINEAR:
                for affine in self._stage_affines[stage.index]:
                    tensor = tensor.affine(
                        affine.weight,
                        affine.bias_at(tensor.exponent),
                        self._rng,
                        weight_exponent=affine.decimals,
                    )
            else:
                values = tensor.decrypt_float(self._private_key)
                flat = values.reshape(-1)
                for primitive in stage.primitives:
                    flat = _activation(primitive.layer.name, flat)
                if stage.index == last_index:
                    result = flat
                else:
                    tensor = EncryptedTensor.encrypt(
                        scale_to_int(flat, self.decimals),
                        self.public_key, self._rng,
                        exponent=self.decimals,
                    )
        if result is None:
            raise BaselineError("model did not end with a non-linear stage")
        latency = time.perf_counter() - start
        return CipherResult(
            prediction=int(result.argmax()),
            probabilities=result,
            latency=latency,
        )


def _activation(name: str, flat: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(flat, 0.0)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-np.clip(flat, -500, 500)))
    if name == "softmax":
        shifted = flat - flat.max()
        exp = np.exp(shifted)
        return exp / exp.sum()
    raise BaselineError(f"unknown activation {name!r}")
