"""Additive secret sharing over Z_2^64 with Beaver-triple products.

The arithmetic half of an EzPC/ABY-style two-party framework: values
are fixed-point integers split into two uniformly random additive
shares; linear layers are evaluated share-wise (additions and
public-by-share products are local), and share-by-share products use
Beaver multiplication triples from a trusted dealer — the standard
benchmark setup, matching how EzPC-style systems are measured.

All share arithmetic is vectorized numpy uint64 (wrap-around is the
ring reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BaselineError

#: Ring: Z_2^64 via uint64 wrap-around.
RING_BITS = 64
_DTYPE = np.uint64


def _to_ring(values: np.ndarray) -> np.ndarray:
    return np.asarray(values).astype(np.int64).astype(_DTYPE)


def _from_ring(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64)


@dataclass(frozen=True)
class AdditiveShare:
    """One party's share of a secret tensor (values in Z_2^64)."""

    party: int
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.party not in (0, 1):
            raise BaselineError("party must be 0 or 1")
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=_DTYPE)
        )

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape


@dataclass(frozen=True)
class BeaverTriple:
    """Dealer-issued shares of (a, b, c) with c = a * b element-wise."""

    a0: np.ndarray
    a1: np.ndarray
    b0: np.ndarray
    b1: np.ndarray
    c0: np.ndarray
    c1: np.ndarray


class SecretSharingEngine:
    """Two-party additive sharing with a trusted triple dealer.

    Tracks communication: every value *opened* between the parties (the
    d, e openings of Beaver multiplication and final reconstructions)
    counts 8 bytes per element per direction, and every opening is one
    communication round — the numbers the EzPC latency model consumes.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.bytes_exchanged = 0
        self.rounds = 0
        self.triples_consumed = 0

    # -- sharing ---------------------------------------------------------

    def share(self, values: np.ndarray) -> tuple[AdditiveShare,
                                                 AdditiveShare]:
        """Split integers into two uniformly random additive shares."""
        ring = _to_ring(values)
        share0 = self._rng.integers(
            0, 2 ** 63, size=ring.shape, dtype=np.int64
        ).astype(_DTYPE) * _DTYPE(2) + self._rng.integers(
            0, 2, size=ring.shape, dtype=np.int64
        ).astype(_DTYPE)
        share1 = ring - share0
        return AdditiveShare(0, share0), AdditiveShare(1, share1)

    def reconstruct(self, share0: AdditiveShare,
                    share1: AdditiveShare) -> np.ndarray:
        """Open a shared tensor (counts as one round of communication)."""
        if share0.shape != share1.shape:
            raise BaselineError("share shapes differ")
        self._count_opening(share0.values.size)
        return _from_ring(share0.values + share1.values)

    def _count_opening(self, elements: int) -> None:
        self.bytes_exchanged += 2 * 8 * elements
        self.rounds += 1

    # -- linear algebra on shares ----------------------------------------

    @staticmethod
    def add(x: AdditiveShare, y: AdditiveShare) -> AdditiveShare:
        if x.party != y.party:
            raise BaselineError("cannot add shares of different parties")
        return AdditiveShare(x.party, x.values + y.values)

    @staticmethod
    def add_public(x: AdditiveShare, public: np.ndarray) -> AdditiveShare:
        """Add a public constant (only party 0 adds it)."""
        if x.party == 0:
            return AdditiveShare(0, x.values + _to_ring(public))
        return x

    @staticmethod
    def mul_public(x: AdditiveShare, public: np.ndarray) -> AdditiveShare:
        """Multiply by a public constant (local for both parties)."""
        return AdditiveShare(x.party, x.values * _to_ring(public))

    @staticmethod
    def matmul_public(matrix: np.ndarray, x: AdditiveShare
                      ) -> AdditiveShare:
        """Public-matrix times shared-vector (local)."""
        ring_matrix = _to_ring(matrix)
        return AdditiveShare(x.party, ring_matrix @ x.values)

    # -- Beaver multiplication --------------------------------------------

    def deal_triple(self, shape: tuple[int, ...]) -> BeaverTriple:
        """Trusted dealer: element-wise triple shares of the given shape."""
        a = self._rng.integers(0, 2 ** 62, size=shape).astype(_DTYPE)
        b = self._rng.integers(0, 2 ** 62, size=shape).astype(_DTYPE)
        c = a * b
        a0 = self._rng.integers(0, 2 ** 62, size=shape).astype(_DTYPE)
        b0 = self._rng.integers(0, 2 ** 62, size=shape).astype(_DTYPE)
        c0 = self._rng.integers(0, 2 ** 62, size=shape).astype(_DTYPE)
        return BeaverTriple(a0, a - a0, b0, b - b0, c0, c - c0)

    def multiply(
        self,
        x0: AdditiveShare, x1: AdditiveShare,
        y0: AdditiveShare, y1: AdditiveShare,
    ) -> tuple[AdditiveShare, AdditiveShare]:
        """Element-wise product of two shared tensors via one triple.

        Opens d = x - a and e = y - b (one round, both directions), then
        each party computes its share of x*y locally.
        """
        if x0.shape != y0.shape:
            raise BaselineError("operand shapes differ")
        triple = self.deal_triple(x0.shape)
        self.triples_consumed += 1
        d0 = x0.values - triple.a0
        d1 = x1.values - triple.a1
        e0 = y0.values - triple.b0
        e1 = y1.values - triple.b1
        self._count_opening(2 * x0.values.size)  # d and e together
        d = d0 + d1
        e = e0 + e1
        z0 = triple.c0 + d * triple.b0 + e * triple.a0 + d * e
        z1 = triple.c1 + d * triple.b1 + e * triple.a1
        return AdditiveShare(0, z0), AdditiveShare(1, z1)

    def matmul_shared(
        self,
        w0: AdditiveShare, w1: AdditiveShare,
        x0: AdditiveShare, x1: AdditiveShare,
    ) -> tuple[AdditiveShare, AdditiveShare]:
        """Shared-matrix times shared-vector via a matrix Beaver triple.

        Opens D = W - A (m x n elements) and e = x - b (n elements) in
        one round; this is the communication-heavy step that makes
        secret-sharing frameworks network-bound on large layers.
        """
        if w0.values.ndim != 2 or x0.values.ndim != 1:
            raise BaselineError("matmul_shared expects (matrix, vector)")
        m, n = w0.values.shape
        if x0.values.shape != (n,):
            raise BaselineError(
                f"matrix {w0.values.shape} incompatible with vector "
                f"{x0.values.shape}"
            )
        a = self._rng.integers(0, 2 ** 62, size=(m, n)).astype(_DTYPE)
        b = self._rng.integers(0, 2 ** 62, size=n).astype(_DTYPE)
        c = a @ b
        a0 = self._rng.integers(0, 2 ** 62, size=(m, n)).astype(_DTYPE)
        b0 = self._rng.integers(0, 2 ** 62, size=n).astype(_DTYPE)
        c0 = self._rng.integers(0, 2 ** 62, size=m).astype(_DTYPE)
        a1, b1, c1 = a - a0, b - b0, c - c0
        self.triples_consumed += 1
        d = (w0.values - a0) + (w1.values - a1)   # opened D
        e = (x0.values - b0) + (x1.values - b1)   # opened e
        self._count_opening(m * n + n)
        z0 = c0 + d @ b0 + a0 @ e + d @ e
        z1 = c1 + d @ b1 + a1 @ e
        return AdditiveShare(0, z0), AdditiveShare(1, z1)

    def truncate(
        self, x0: AdditiveShare, x1: AdditiveShare, bits: int
    ) -> tuple[AdditiveShare, AdditiveShare]:
        """Fixed-point truncation by ``bits`` (SecureML local trick).

        Each party arithmetic-shifts its own share; correct with
        overwhelming probability for values far from the ring boundary.
        """
        if bits < 0:
            raise BaselineError("truncation bits must be non-negative")
        s0 = (x0.values.astype(np.int64) >> bits).astype(_DTYPE)
        s1 = -((-x1.values.astype(np.int64)) >> bits).astype(_DTYPE)
        return AdditiveShare(0, s0), AdditiveShare(1, s1)
