"""Baseline systems PP-Stream is compared against (Exp#2, Exp#6).

* :mod:`plain` / :mod:`cipher` — the centralized PlainBase/CipherBase
  variants of Exp#2, runnable for real on small models.
* :mod:`secret_sharing` — additive secret sharing over Z_2^64 with
  Beaver-triple multiplication (the arithmetic half of an
  EzPC/ABY-style 2PC framework).
* :mod:`garbled` — real garbled boolean circuits (SHA-256 garbling,
  free-XOR, point-and-permute) with adder/comparator/ReLU circuit
  builders (the Yao half).
* :mod:`ezpc` — the combined EzPC-style baseline: secret-shared linear
  layers + garbled-circuit ReLU with per-layer share-conversion rounds.
* :mod:`reported` — published latencies of SecureML / CryptoNets /
  CryptoDL, quoted the way the paper quotes them (Table VII).
"""

from .plain import PlainBase
from .cipher import CipherBase
from .secret_sharing import (
    AdditiveShare,
    BeaverTriple,
    SecretSharingEngine,
)
from .garbled import (
    Circuit,
    CircuitBuilder,
    GarbledCircuit,
    build_relu_circuit,
    evaluate_garbled,
)
from .ezpc import EzPCBaseline, EzPCLatency
from .reported import REPORTED_LATENCIES, ReportedResult

__all__ = [
    "PlainBase",
    "CipherBase",
    "AdditiveShare",
    "BeaverTriple",
    "SecretSharingEngine",
    "Circuit",
    "CircuitBuilder",
    "GarbledCircuit",
    "build_relu_circuit",
    "evaluate_garbled",
    "EzPCBaseline",
    "EzPCLatency",
    "REPORTED_LATENCIES",
    "ReportedResult",
]
