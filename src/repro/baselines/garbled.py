"""Garbled boolean circuits: the Yao half of the EzPC-style baseline.

A real implementation of classic garbled-circuit machinery:

* circuits of XOR / AND / NOT gates built by :class:`CircuitBuilder`
  (ripple-carry adders, two's-complement negation, MUX, and the ReLU
  circuit EzPC evaluates per activation);
* garbling with **free-XOR** (Kolesnikov-Schneider: XOR gates cost
  nothing — labels differ by a global offset R) and
  **point-and-permute** (the low bit of each label selects the garbled
  table row, so evaluation does one hash per AND gate);
* SHA-256 as the key-derivation hash.

Oblivious transfer is replaced by direct label lookup (the evaluator's
input bits select labels in-process); its network cost is accounted by
the EzPC latency model instead.  That substitution does not change gate
counts, table sizes, or per-gate computation, which is what the
baseline comparison measures.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import BaselineError

#: Label length in bytes (128-bit wire labels).
LABEL_BYTES = 16

XOR = "xor"
AND = "and"


@dataclass(frozen=True)
class Gate:
    """One gate: output wire computed from two input wires."""

    kind: str
    left: int
    right: int
    output: int


@dataclass
class Circuit:
    """A boolean circuit over numbered wires.

    Wires 0..num_inputs-1 are inputs; gates assign strictly increasing
    output wires; ``outputs`` lists the result wires.  Constant-true /
    constant-false wires are modeled as dedicated inputs fixed by the
    builder (``const_zero`` wire).
    """

    num_inputs: int
    gates: List[Gate] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)

    @property
    def num_wires(self) -> int:
        return self.num_inputs + len(self.gates)

    @property
    def and_count(self) -> int:
        return sum(1 for g in self.gates if g.kind == AND)

    @property
    def xor_count(self) -> int:
        return sum(1 for g in self.gates if g.kind == XOR)

    def evaluate_plain(self, inputs: Sequence[int]) -> List[int]:
        """Reference plaintext evaluation (for tests).

        Accepts either all input wires or just the free inputs — the
        builder's two reserved constant wires (0, then 1) are appended
        automatically when omitted.
        """
        if len(inputs) == self.num_inputs - 2:
            inputs = list(inputs) + [0, 1]
        if len(inputs) != self.num_inputs:
            raise BaselineError(
                f"expected {self.num_inputs} input bits, got {len(inputs)}"
            )
        wires = list(int(b) & 1 for b in inputs)
        for gate in self.gates:
            a, b = wires[gate.left], wires[gate.right]
            wires.append(a ^ b if gate.kind == XOR else a & b)
        return [wires[w] for w in self.outputs]


class CircuitBuilder:
    """Builds circuits from XOR/AND primitives (NOT = XOR with one)."""

    def __init__(self, num_inputs: int):
        # Reserve two extra input wires as constants 0 and 1.
        self.circuit = Circuit(num_inputs=num_inputs + 2)
        self.const_zero = num_inputs
        self.const_one = num_inputs + 1
        self._next_wire = self.circuit.num_inputs

    def _emit(self, kind: str, left: int, right: int) -> int:
        wire = self._next_wire
        self.circuit.gates.append(Gate(kind, left, right, wire))
        self._next_wire += 1
        return wire

    def xor(self, a: int, b: int) -> int:
        return self._emit(XOR, a, b)

    def and_(self, a: int, b: int) -> int:
        return self._emit(AND, a, b)

    def not_(self, a: int) -> int:
        return self.xor(a, self.const_one)

    def or_(self, a: int, b: int) -> int:
        # a | b = (a ^ b) ^ (a & b)
        return self.xor(self.xor(a, b), self.and_(a, b))

    def mux(self, select: int, when_true: int, when_false: int) -> int:
        """select ? when_true : when_false = f ^ (s & (t ^ f))."""
        return self.xor(when_false,
                        self.and_(select, self.xor(when_true, when_false)))

    def full_adder(self, a: int, b: int, carry: int
                   ) -> Tuple[int, int]:
        """Returns (sum, carry_out); 1 AND gate via the standard trick.

        sum = a ^ b ^ c;  carry_out = c ^ ((a ^ c) & (b ^ c)).
        """
        a_xor_c = self.xor(a, carry)
        b_xor_c = self.xor(b, carry)
        total = self.xor(a_xor_c, b_xor_c)
        total = self.xor(total, carry)
        carry_out = self.xor(carry, self.and_(a_xor_c, b_xor_c))
        return total, carry_out

    def add(self, a_bits: Sequence[int], b_bits: Sequence[int]
            ) -> List[int]:
        """Ripple-carry addition of two little-endian k-bit numbers
        (mod 2^k)."""
        if len(a_bits) != len(b_bits):
            raise BaselineError("adder operands must have equal width")
        carry = self.const_zero
        out: List[int] = []
        for a, b in zip(a_bits, b_bits):
            total, carry = self.full_adder(a, b, carry)
            out.append(total)
        return out

    def finish(self, outputs: Sequence[int]) -> Circuit:
        self.circuit.outputs = list(outputs)
        return self.circuit


def build_relu_circuit(bits: int) -> Circuit:
    """The EzPC per-activation circuit: y = (x > 0) ? x : 0, then mask.

    Inputs (little-endian, two's complement):
      * wires [0, bits)        — party A's additive share of x,
      * wires [bits, 2*bits)   — party B's additive share of x,
      * wires [2*bits, 3*bits) — party A's fresh output mask r.

    Output: bits of ``ReLU(a + b) - r``, revealed to the evaluator, so
    the two parties end with additive shares of the activation (the
    standard Y2A conversion).
    """
    if bits < 2:
        raise BaselineError("need at least 2 bits for signed ReLU")
    builder = CircuitBuilder(3 * bits)
    a_bits = list(range(0, bits))
    b_bits = list(range(bits, 2 * bits))
    r_bits = list(range(2 * bits, 3 * bits))
    x_bits = builder.add(a_bits, b_bits)
    sign = x_bits[-1]  # MSB = 1 means negative in two's complement
    keep = builder.not_(sign)
    relu_bits = [builder.and_(keep, bit) for bit in x_bits]
    # Compute relu - r = relu + (~r) + 1 (two's complement).
    not_r = [builder.not_(bit) for bit in r_bits]
    one = [builder.const_one] + [builder.const_zero] * (bits - 1)
    minus_r = builder.add(not_r, one)
    out_bits = builder.add(relu_bits, minus_r)
    return builder.finish(out_bits)


# ---------------------------------------------------------------------
# Garbling (free-XOR + point-and-permute, SHA-256 KDF)
# ---------------------------------------------------------------------


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _hash_pair(left: bytes, right: bytes, gate_id: int) -> bytes:
    digest = hashlib.sha256(
        left + right + gate_id.to_bytes(4, "little")
    ).digest()
    return digest[:LABEL_BYTES]


@dataclass
class GarbledCircuit:
    """A garbled circuit plus the garbler-side secrets.

    Attributes:
        circuit: the underlying boolean circuit.
        tables: per-AND-gate 4-row tables (XOR gates have none).
        zero_labels: label of bit 0 for every wire (garbler secret).
        offset: the global free-XOR offset R (garbler secret).
    """

    circuit: Circuit
    tables: Dict[int, List[bytes]]
    zero_labels: List[bytes]
    offset: bytes

    def label_for(self, wire: int, bit: int) -> bytes:
        label = self.zero_labels[wire]
        if bit & 1:
            label = _xor_bytes(label, self.offset)
        return label

    def input_labels(self, bits: Sequence[int]) -> List[bytes]:
        """Labels for the evaluator's input bits (stands in for OT).

        The two reserved constant wires are appended automatically.
        """
        expected = self.circuit.num_inputs - 2
        if len(bits) != expected:
            raise BaselineError(
                f"expected {expected} input bits, got {len(bits)}"
            )
        labels = [
            self.label_for(wire, bit) for wire, bit in enumerate(bits)
        ]
        labels.append(self.label_for(expected, 0))      # const 0
        labels.append(self.label_for(expected + 1, 1))  # const 1
        return labels

    def decode(self, output_labels: Sequence[bytes]) -> List[int]:
        """Garbler-side decoding of output labels to bits."""
        bits = []
        for wire, label in zip(self.circuit.outputs, output_labels):
            if label == self.zero_labels[wire]:
                bits.append(0)
            elif label == _xor_bytes(self.zero_labels[wire], self.offset):
                bits.append(1)
            else:
                raise BaselineError(
                    f"output label for wire {wire} decodes to neither bit"
                )
        return bits

    @property
    def table_bytes(self) -> int:
        """Wire size of the garbled tables (what EzPC ships per layer)."""
        return sum(len(rows) * LABEL_BYTES for rows in self.tables.values())


def garble(circuit: Circuit, seed: bytes | None = None) -> GarbledCircuit:
    """Garble a circuit with free-XOR and point-and-permute."""
    rng = secrets.token_bytes if seed is None else _DeterministicBytes(seed)
    offset = bytearray(rng(LABEL_BYTES))
    offset[0] |= 1  # point-and-permute: R's low bit must be 1
    offset = bytes(offset)

    zero_labels: List[bytes] = [b""] * circuit.num_wires
    for wire in range(circuit.num_inputs):
        zero_labels[wire] = rng(LABEL_BYTES)

    tables: Dict[int, List[bytes]] = {}
    for gate_id, gate in enumerate(circuit.gates):
        left_zero = zero_labels[gate.left]
        right_zero = zero_labels[gate.right]
        if gate.kind == XOR:
            # Free XOR: the output zero-label is the XOR of inputs'.
            zero_labels[gate.output] = _xor_bytes(left_zero, right_zero)
            continue
        out_zero = rng(LABEL_BYTES)
        zero_labels[gate.output] = out_zero
        rows: List[bytes | None] = [None] * 4
        for left_bit in (0, 1):
            for right_bit in (0, 1):
                left_label = left_zero if left_bit == 0 else \
                    _xor_bytes(left_zero, offset)
                right_label = right_zero if right_bit == 0 else \
                    _xor_bytes(right_zero, offset)
                out_bit = left_bit & right_bit
                out_label = out_zero if out_bit == 0 else \
                    _xor_bytes(out_zero, offset)
                pad = _hash_pair(left_label, right_label, gate_id)
                row_index = (left_label[0] & 1) * 2 + (right_label[0] & 1)
                rows[row_index] = _xor_bytes(pad, out_label)
        tables[gate_id] = [row for row in rows]  # type: ignore[misc]
    return GarbledCircuit(circuit, tables, zero_labels, offset)


def evaluate_garbled(
    garbled: GarbledCircuit, input_labels: Sequence[bytes]
) -> List[bytes]:
    """Evaluator side: walk the gates knowing only one label per wire."""
    circuit = garbled.circuit
    if len(input_labels) != circuit.num_inputs:
        raise BaselineError(
            f"expected {circuit.num_inputs} input labels, got "
            f"{len(input_labels)}"
        )
    labels: List[bytes] = list(input_labels) + [b""] * len(circuit.gates)
    for gate_id, gate in enumerate(circuit.gates):
        left = labels[gate.left]
        right = labels[gate.right]
        if gate.kind == XOR:
            labels[gate.output] = _xor_bytes(left, right)
            continue
        rows = garbled.tables[gate_id]
        row_index = (left[0] & 1) * 2 + (right[0] & 1)
        pad = _hash_pair(left, right, gate_id)
        labels[gate.output] = _xor_bytes(pad, rows[row_index])
    return [labels[wire] for wire in circuit.outputs]


class _DeterministicBytes:
    """Deterministic byte source for reproducible garbling in tests."""

    def __init__(self, seed: bytes):
        self._state = hashlib.sha256(seed).digest()

    def __call__(self, count: int) -> bytes:
        out = b""
        while len(out) < count:
            self._state = hashlib.sha256(self._state).digest()
            out += self._state
        return out[:count]
