"""Published baseline latencies, quoted as the paper quotes them.

Table VII compares PP-Stream against SecureML, CryptoNets, and CryptoDL
"based on the numbers reported in their respective publications" (their
artifacts are not public).  This module records those numbers with
their provenance so the Exp#6 harness can print the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BaselineError


@dataclass(frozen=True)
class ReportedResult:
    """A latency quoted from a publication.

    Attributes:
        system: system name.
        model_key: which Table III model the number applies to.
        latency_seconds: reported inference latency.
        environment: hardware the publication used.
        source: citation string.
    """

    system: str
    model_key: str
    latency_seconds: float
    environment: str
    source: str


REPORTED_LATENCIES: tuple[ReportedResult, ...] = (
    ReportedResult(
        system="SecureML",
        model_key="mnist-1",
        latency_seconds=4.88,
        environment="two Amazon EC2 c4.8xlarge instances, 60 GB RAM each",
        source="Mohassel & Zhang, IEEE S&P 2017 (as quoted in PP-Stream "
               "Table VII)",
    ),
    ReportedResult(
        system="CryptoNets",
        model_key="mnist-2",
        latency_seconds=297.5,
        environment="single Intel Xeon E5-1620 3.5 GHz, 16 GB RAM",
        source="Gilad-Bachrach et al., ICML 2016 (as quoted in PP-Stream "
               "Table VII)",
    ),
    ReportedResult(
        system="CryptoDL",
        model_key="mnist-2",
        latency_seconds=320.0,
        environment="VM with 12 CPU cores, 48 GB RAM",
        source="Hesamifard et al., PETS 2018 (as quoted in PP-Stream "
               "Table VII)",
    ),
)


def reported_for(system: str, model_key: str) -> ReportedResult:
    """Look up a quoted number; raises when the pair was never published."""
    for result in REPORTED_LATENCIES:
        if result.system.lower() == system.lower() and \
                result.model_key == model_key:
            return result
    raise BaselineError(
        f"no published latency for {system} on {model_key}"
    )
