"""The EzPC-style 2PC baseline: secret-shared linear + garbled ReLU.

Reproduces the structure that makes EzPC slower than PP-Stream in the
paper's Exp#6: strictly sequential per-layer execution with multiple
communication rounds per layer (Beaver openings for linear layers,
garbled-table + label transfer and a response round for each ReLU
layer) and expensive protocol transitions between the arithmetic and
boolean worlds.

The linear layers run for real on :class:`SecretSharingEngine`
(vectorized Z_2^64 arithmetic).  ReLU layers garble and evaluate the
real circuit of :func:`build_relu_circuit` for up to
``max_real_relu`` elements and extrapolate the measured per-element
time to the rest (documented sampling — gate counts and table bytes are
always exact).  Latency combines measured compute with a network model
(rounds x RTT + bytes / bandwidth) from the same cost model PP-Stream's
simulator uses, so the comparison is apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..costs import CostModel
from ..errors import BaselineError
from ..nn.layers import Flatten, LayerKind
from ..nn.model import Sequential
from ..planner.primitive import model_stages
from ..scaling.fixed_point import scaled_affine_for_layer
from .garbled import build_relu_circuit, evaluate_garbled, garble
from .secret_sharing import AdditiveShare, SecretSharingEngine

#: Ring width used for the garbled ReLU circuits (matches the shares).
RELU_BITS = 64

#: Wire labels are 16 bytes; each AND gate ships a 4-row table.
_LABEL_BYTES = 16


@dataclass(frozen=True)
class EzPCLatency:
    """Latency breakdown of one EzPC-style inference.

    Attributes:
        compute_seconds: measured local computation (both parties).
        network_seconds: modeled communication time.
        rounds: sequential communication rounds.
        bytes_exchanged: total bytes shipped.
        and_gates: total AND gates garbled across all ReLU layers.
    """

    compute_seconds: float
    network_seconds: float
    rounds: int
    bytes_exchanged: int
    and_gates: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.network_seconds


@dataclass
class _RunState:
    engine: SecretSharingEngine
    compute_seconds: float = 0.0
    gc_bytes: int = 0
    gc_rounds: int = 0
    and_gates: int = 0
    relu_values: List[int] = field(default_factory=list)


class EzPCBaseline:
    """Sequential 2PC inference over a trained model."""

    def __init__(
        self,
        model: Sequential,
        fraction_bits: int = 12,
        seed: int = 0,
        max_real_relu: int = 128,
    ):
        if fraction_bits < 1:
            raise BaselineError("fraction_bits must be >= 1")
        self.model = model
        self.fraction_bits = fraction_bits
        self.max_real_relu = max_real_relu
        self._seed = seed
        self.stages = model_stages(model)
        # Pre-build the integer affine forms at 2^fraction_bits scale.
        self._stage_matrices: dict[int, list[tuple[np.ndarray,
                                                   np.ndarray]]] = {}
        scale = 2 ** fraction_bits
        for stage in self.stages:
            if stage.kind is not LayerKind.LINEAR:
                continue
            mats = []
            for primitive in stage.primitives:
                if isinstance(primitive.layer, Flatten):
                    continue
                affine = scaled_affine_for_layer(
                    primitive.layer, primitive.input_shape, 0,
                )
                # Re-scale the float parameters to base-2 fixed point.
                weight = np.round(
                    _layer_float_weight(primitive.layer,
                                        primitive.input_shape) * scale
                ).astype(np.int64)
                bias = np.round(
                    affine.raw_bias * scale * scale
                ).astype(np.int64)
                mats.append((weight, bias))
            self._stage_matrices[stage.index] = mats
        self._relu_circuit = build_relu_circuit(RELU_BITS)

    # ------------------------------------------------------------------

    def infer(self, x: np.ndarray) -> tuple[int, EzPCLatency]:
        """Run one input through the 2PC pipeline.

        Returns the predicted class and the latency breakdown.
        """
        state = _RunState(engine=SecretSharingEngine(seed=self._seed))
        scale = 2 ** self.fraction_bits
        flat = np.round(
            np.asarray(x, dtype=np.float64).reshape(-1) * scale
        ).astype(np.int64)
        share0, share1 = state.engine.share(flat)

        logits: np.ndarray | None = None
        last = len(self.stages) - 1
        for stage in self.stages:
            if stage.kind is LayerKind.LINEAR:
                share0, share1 = self._linear_stage(stage.index, share0,
                                                    share1, state)
            else:
                names = [p.layer.name for p in stage.primitives]
                if stage.index == last:
                    values = state.engine.reconstruct(share0, share1)
                    logits = values.astype(np.float64) / scale
                    for name in names:
                        if name == "softmax":
                            shifted = logits - logits.max()
                            exp = np.exp(shifted)
                            logits = exp / exp.sum()
                        elif name == "relu":
                            logits = np.maximum(logits, 0.0)
                        else:
                            raise BaselineError(
                                f"unsupported final activation {name!r}"
                            )
                else:
                    for name in names:
                        if name != "relu":
                            raise BaselineError(
                                "EzPC baseline supports ReLU hidden "
                                f"activations, got {name!r}"
                            )
                        share0, share1 = self._relu_stage(share0, share1,
                                                          state)
        if logits is None:
            raise BaselineError("model did not produce logits")
        latency = self._latency(state)
        return int(np.argmax(logits)), latency

    # ------------------------------------------------------------------

    def _linear_stage(
        self, stage_index: int,
        share0: AdditiveShare, share1: AdditiveShare,
        state: _RunState,
    ) -> tuple[AdditiveShare, AdditiveShare]:
        engine = state.engine
        start = time.perf_counter()
        for weight, bias in self._stage_matrices[stage_index]:
            w0, w1 = engine.share(weight)
            share0, share1 = engine.matmul_shared(w0, w1, share0, share1)
            share0 = engine.add_public(share0, bias)
            # Rescale the doubled fraction bits from the product.
            share0, share1 = engine.truncate(share0, share1,
                                             self.fraction_bits)
        state.compute_seconds += time.perf_counter() - start
        return share0, share1

    def _relu_stage(
        self,
        share0: AdditiveShare, share1: AdditiveShare,
        state: _RunState,
    ) -> tuple[AdditiveShare, AdditiveShare]:
        engine = state.engine
        size = share0.values.size
        rng = np.random.default_rng(self._seed ^ size)
        masks = rng.integers(0, 2 ** 62, size=size).astype(np.uint64)

        real_count = min(size, self.max_real_relu)
        start = time.perf_counter()
        out = np.empty(size, dtype=np.uint64)
        for index in range(real_count):
            out[index] = self._garbled_relu(
                int(share0.values[index]), int(share1.values[index]),
                int(masks[index]),
            )
        measured = time.perf_counter() - start
        if real_count < size:
            # Extrapolate per-element GC time to the sampled-out rest;
            # compute their values directly so correctness holds.
            per_element = measured / max(real_count, 1)
            state.compute_seconds += per_element * (size - real_count)
            x = (share0.values[real_count:]
                 + share1.values[real_count:]).astype(np.int64)
            relu = np.maximum(x, 0).astype(np.uint64)
            out[real_count:] = relu - masks[real_count:]
        state.compute_seconds += measured

        gates_per_relu = self._relu_circuit.and_count
        state.and_gates += gates_per_relu * size
        # Wire cost: garbled tables + input labels, plus the response.
        table_bytes = gates_per_relu * 4 * _LABEL_BYTES
        label_bytes = self._relu_circuit.num_inputs * _LABEL_BYTES
        state.gc_bytes += size * (table_bytes + label_bytes
                                  + RELU_BITS // 8)
        state.gc_rounds += 2  # (tables+labels) down, shares back up

        # Party 1 holds the circuit output (relu - r); party 0 holds r.
        new0 = AdditiveShare(0, masks)
        new1 = AdditiveShare(1, out)
        return new0, new1

    def _garbled_relu(self, a: int, b: int, mask: int) -> int:
        bits = RELU_BITS
        garbled = garble(
            self._relu_circuit,
            seed=f"{self._seed}:{a}:{b}".encode(),
        )
        input_bits = (
            _to_bits(a, bits) + _to_bits(b, bits) + _to_bits(mask, bits)
        )
        labels = garbled.input_labels(input_bits)
        output_labels = evaluate_garbled(garbled, labels)
        return _from_bits(garbled.decode(output_labels))

    def _latency(self, state: _RunState) -> EzPCLatency:
        cost = CostModel.reference()
        total_bytes = state.engine.bytes_exchanged + state.gc_bytes
        total_rounds = state.engine.rounds + state.gc_rounds
        network = (
            total_rounds * 2 * cost.network_latency
            + total_bytes / cost.network_bandwidth
        )
        return EzPCLatency(
            compute_seconds=state.compute_seconds,
            network_seconds=network,
            rounds=total_rounds,
            bytes_exchanged=total_bytes,
            and_gates=state.and_gates,
        )


def _layer_float_weight(layer, input_shape) -> np.ndarray:
    """The dense float weight matrix of a linear layer."""
    affine = scaled_affine_for_layer(layer, input_shape, 6)
    return affine.weight.astype(np.float64) / 10 ** 6


def _to_bits(value: int, bits: int) -> list[int]:
    value &= (1 << bits) - 1
    return [(value >> i) & 1 for i in range(bits)]


def _from_bits(bits: list[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits)) & (2 ** 64 - 1)
