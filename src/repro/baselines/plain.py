"""PlainBase: centralized plaintext inference (Exp#2 baseline).

Runs the model directly on one "server" — no crypto, no privacy — and
measures wall-clock latency.  The simulator-side analogue is
:func:`repro.simulate.centralized_plain_latency`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import BaselineError
from ..nn.model import Sequential


@dataclass(frozen=True)
class PlainResult:
    """Outcome of one PlainBase inference."""

    prediction: int
    probabilities: np.ndarray
    latency: float


class PlainBase:
    """Single-server plaintext inference runner."""

    def __init__(self, model: Sequential):
        self.model = model

    def infer(self, x: np.ndarray) -> PlainResult:
        """Run one input through the model, timing the forward pass."""
        x = np.asarray(x, dtype=np.float64)
        start = time.perf_counter()
        out = self.model.forward(x[None, ...])[0]
        latency = time.perf_counter() - start
        return PlainResult(
            prediction=int(out.argmax()),
            probabilities=out,
            latency=latency,
        )

    def infer_batch(self, batch: np.ndarray) -> list[PlainResult]:
        batch = np.asarray(batch)
        if batch.ndim < 2:
            raise BaselineError("infer_batch expects a batch tensor")
        return [self.infer(sample) for sample in batch]
