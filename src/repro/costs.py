"""Per-operation cost model driving profiling and the simulator.

The paper's latency experiments ran on a 9-server testbed with a
C++/GMP prototype at a 2048-bit key.  This reproduction replaces the
testbed with a discrete-event simulator (DESIGN.md, substitution 1)
whose inputs are the per-operation costs defined here.  Two profiles:

* :meth:`CostModel.reference` — frozen constants consistent with the
  paper's Figure 1 micro-benchmark (seconds-scale tensor encryption,
  milliseconds-scale homomorphic arithmetic at 2048 bits) and typical
  GMP/10 GbE numbers.  Deterministic, used by default in benchmarks.
* :meth:`CostModel.calibrate` — measures this repository's actual
  Paillier/permutation kernels at a chosen key size, so simulated and
  real (threaded-runtime) latencies line up on this machine.

Scalar multiplication ``E(m)^w`` is a square-and-multiply loop over the
bits of ``w``, so its cost grows with the bit length of the scaled
weight — that is exactly the scaling-factor/latency trade-off Figure 6
measures, and the model captures it via ``ciphertext_mul_per_bit``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, replace

from .errors import ConfigurationError


@dataclass(frozen=True)
class CompressionStats:
    """Structure of a compressed (pruned / clustered) linear layer.

    The compression-aware engine path (:mod:`repro.crypto.sparse`)
    changes a linear stage's cost profile in two ways the planner must
    see, or stage assignment will keep over-provisioning layers that
    became cheap:

    * pruning removes ``1 - density`` of the ciphertext scalar
      multiplications outright;
    * clustering caps the *exponentiations* at one per (input
      ciphertext, distinct weight) pair — every further use of a
      cluster value is a single ciphertext multiply (charged as an
      addition, which is exactly what it costs).

    Build one from a real plan via
    :meth:`repro.crypto.sparse.SparseMatvecPlan.compression_stats`, or
    by hand from predicted prune/cluster knobs.

    Attributes:
        density: fraction of nonzero weight cells (1.0 = dense).
        clusters: distinct nonzero weight values in the layer, if
            known (``None`` = unclustered).
        distinct_per_column: mean distinct weights per nonzero column
            — the exact per-ciphertext exponentiation count when
            measured from a plan (overrides the ``clusters`` bound).
    """

    density: float = 1.0
    clusters: int | None = None
    distinct_per_column: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.density <= 1.0:
            raise ConfigurationError(
                f"density must be in [0, 1], got {self.density}"
            )
        if self.clusters is not None and self.clusters < 1:
            raise ConfigurationError(
                f"clusters must be >= 1, got {self.clusters}"
            )
        if self.distinct_per_column is not None \
                and self.distinct_per_column < 0:
            raise ConfigurationError(
                "distinct_per_column must be non-negative, got "
                f"{self.distinct_per_column}"
            )

    def exponentiations(self, dense_muls: float, input_size: int) -> float:
        """Modular exponentiations a compressed evaluation performs,
        given the stage's dense scalar-multiplication count."""
        nnz = dense_muls * self.density
        if input_size <= 0:
            return nnz
        if self.distinct_per_column is not None:
            return min(nnz, input_size * self.distinct_per_column)
        if self.clusters is not None:
            return min(nnz, input_size * self.clusters)
        return nnz

    def reuse_mults(self, dense_muls: float, input_size: int) -> float:
        """Nonzero uses served from the per-cluster dedup — each costs
        one ciphertext multiply (an addition in cost-model terms)."""
        nnz = dense_muls * self.density
        return max(0.0, nnz - self.exponentiations(dense_muls,
                                                   input_size))


@dataclass(frozen=True)
class CostModel:
    """Per-operation execution and communication costs (seconds/bytes).

    Attributes:
        key_size: Paillier modulus bits the costs correspond to.
        encrypt: seconds per element encryption.
        decrypt: seconds per element decryption.
        ciphertext_add: seconds per ciphertext-ciphertext addition.
        ciphertext_mul_base: fixed seconds per scalar multiplication.
        ciphertext_mul_per_bit: additional seconds per bit of the
            plaintext scalar.
        plain_op: seconds per plaintext elementary operation.
        permute_element: seconds per element moved by (inverse)
            obfuscation.
        serialize_element: seconds per ciphertext (de)serialized at a
            stage boundary.
        network_latency: one-way message latency between servers.
        network_bandwidth: bytes/second between servers.
        ciphertext_bytes: wire size of one ciphertext.
    """

    key_size: int
    encrypt: float
    decrypt: float
    ciphertext_add: float
    ciphertext_mul_base: float
    ciphertext_mul_per_bit: float
    plain_op: float
    permute_element: float
    serialize_element: float
    network_latency: float
    network_bandwidth: float
    ciphertext_bytes: int

    def __post_init__(self) -> None:
        for field_name in (
            "encrypt", "decrypt", "ciphertext_add", "ciphertext_mul_base",
            "ciphertext_mul_per_bit", "plain_op", "permute_element",
            "serialize_element", "network_latency", "network_bandwidth",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(
                    f"cost {field_name} must be non-negative"
                )
        if self.network_bandwidth == 0:
            raise ConfigurationError("network_bandwidth must be positive")

    # ------------------------------------------------------------------

    def ciphertext_mul(self, scalar_bits: int) -> float:
        """Cost of one homomorphic scalar multiplication by a scalar of
        ``scalar_bits`` bits."""
        return self.ciphertext_mul_base \
            + self.ciphertext_mul_per_bit * max(scalar_bits, 1)

    def scalar_bits_for_decimals(self, decimals: int,
                                 weight_magnitude: float = 1.0) -> int:
        """Typical bit length of a weight scaled by ``10^decimals``."""
        magnitude = max(weight_magnitude, 1e-12) * 10 ** decimals
        return max(int(math.log2(magnitude)) + 1, 1)

    def transfer_time(self, num_elements: int,
                      encrypted: bool = True) -> float:
        """Network time to ship ``num_elements`` values between servers."""
        element_bytes = self.ciphertext_bytes if encrypted else 8
        return self.network_latency \
            + num_elements * element_bytes / self.network_bandwidth

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale all compute costs (not network) by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            encrypt=self.encrypt * factor,
            decrypt=self.decrypt * factor,
            ciphertext_add=self.ciphertext_add * factor,
            ciphertext_mul_base=self.ciphertext_mul_base * factor,
            ciphertext_mul_per_bit=self.ciphertext_mul_per_bit * factor,
            plain_op=self.plain_op * factor,
            permute_element=self.permute_element * factor,
            serialize_element=self.serialize_element * factor,
        )

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------

    @classmethod
    def reference(cls) -> "CostModel":
        """Frozen 2048-bit GMP-testbed profile (see module docstring).

        Anchors: Figure 1 of the paper shows ~seconds to encrypt/decrypt
        a 784-element tensor at 2048 bits (≈5 ms/element encrypt,
        ≈2.5 ms/element decrypt) and ~milliseconds for the homomorphic
        arithmetic on that tensor (≈5 µs/element additions; scalar
        multiplications of a b-bit scalar ≈ b modular squarings at
        ≈5 µs each).  Network matches the testbed's 10 GbE.
        Serialization is charged at 20 µs per ciphertext element —
        per-element message framing of 512-byte bignums through an
        AF-Stream-style worker framework — which is the overhead tensor
        partitioning (Section IV-D) exists to avoid.
        """
        return cls(
            key_size=2048,
            encrypt=5.0e-3,
            decrypt=2.5e-3,
            ciphertext_add=5.0e-6,
            ciphertext_mul_base=1.0e-5,
            ciphertext_mul_per_bit=5.0e-6,
            plain_op=2.0e-9,
            permute_element=2.0e-8,
            serialize_element=2.0e-5,
            network_latency=5.0e-5,
            network_bandwidth=1.25e9,  # 10 Gbps
            ciphertext_bytes=2 * 2048 // 8,
        )

    @classmethod
    def calibrate(
        cls,
        key_size: int,
        samples: int = 64,
        seed: int = 0,
    ) -> "CostModel":
        """Micro-benchmark this repository's own kernels at ``key_size``.

        Times element encryption, decryption, homomorphic addition, and
        scalar multiplication (fitting the per-bit slope from two scalar
        magnitudes), plus permutation and plaintext-op costs.
        """
        from .crypto.paillier import generate_keypair
        from .obfuscation.permutation import Permutation

        if samples < 8:
            raise ConfigurationError("need at least 8 calibration samples")
        public, private = generate_keypair(key_size, seed=seed)
        rng = random.Random(seed)
        values = [rng.randrange(1, 10 ** 6) for _ in range(samples)]

        start = time.perf_counter()
        ciphers = [public.encrypt(v, rng) for v in values]
        encrypt_cost = (time.perf_counter() - start) / samples

        start = time.perf_counter()
        for cipher in ciphers:
            private.decrypt(cipher)
        decrypt_cost = (time.perf_counter() - start) / samples

        start = time.perf_counter()
        for left, right in zip(ciphers, ciphers[1:]):
            _ = left + right
        add_cost = (time.perf_counter() - start) / (samples - 1)

        def time_mul(scalar: int) -> float:
            # Alternate signs: real model weights are ~half negative,
            # and the negative path pays a ciphertext inversion.
            begin = time.perf_counter()
            for index, cipher in enumerate(ciphers):
                _ = cipher * (scalar if index % 2 == 0 else -scalar)
            return (time.perf_counter() - begin) / samples

        small_bits, large_bits = 4, 40
        small_time = time_mul((1 << small_bits) - 1)
        large_time = time_mul((1 << large_bits) - 1)
        per_bit = max(
            (large_time - small_time) / (large_bits - small_bits), 0.0
        )
        mul_base = max(small_time - per_bit * small_bits, 1e-9)

        permutation = Permutation.random(4096, seed)
        data = list(range(4096))
        start = time.perf_counter()
        for _ in range(8):
            data = permutation.apply(data)
        permute_cost = (time.perf_counter() - start) / (8 * 4096)

        return cls(
            key_size=key_size,
            encrypt=encrypt_cost,
            decrypt=decrypt_cost,
            ciphertext_add=add_cost,
            ciphertext_mul_base=mul_base,
            ciphertext_mul_per_bit=per_bit,
            plain_op=5.0e-9,
            permute_element=permute_cost,
            serialize_element=2.0e-7,
            network_latency=5.0e-5,
            network_bandwidth=1.25e9,
            ciphertext_bytes=2 * key_size // 8,
        )
