"""Pipeline latency/throughput simulation and centralized baselines.

:class:`PipelineSimulator` turns a plan + cost model into per-request
latencies for a request stream, using either the closed-form pipeline
recurrence or the event-driven engine (they agree exactly; tests check
this).  The centralized baselines of Exp#2 — PlainBase and CipherBase —
are plain sums of operation costs on a single server with no pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np  # noqa: F401 - jitter sampling

from ..costs import CostModel
from ..errors import SimulationError
from ..nn.layers import LayerKind
from ..planner.plan import Plan
from ..planner.primitive import MergedPrimitive
from .events import EventDrivenPipeline
from .stagecosts import (
    StageCost,
    _linear_compute_seconds,
    _nonlinear_compute_seconds,
    stage_costs,
)


@dataclass(frozen=True)
class SimulatedStream:
    """Result of simulating a request stream.

    Attributes:
        latencies: per-request seconds from admission to completion.
        makespan: completion time of the last request.
        throughput: requests per second over the makespan.
    """

    latencies: tuple[float, ...]
    makespan: float

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def first_request_latency(self) -> float:
        return self.latencies[0]

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            raise SimulationError("makespan must be positive")
        return len(self.latencies) / self.makespan


class PipelineSimulator:
    """Simulates a deployed PP-Stream plan under a cost model."""

    def __init__(
        self,
        plan: Plan,
        cost_model: CostModel,
        decimals: int,
    ):
        self.plan = plan
        self.cost_model = cost_model
        self.decimals = decimals
        self.costs: List[StageCost] = stage_costs(
            plan, cost_model, decimals
        )

    def request_latency(self) -> float:
        """Latency of a single request through an idle pipeline."""
        return sum(cost.total for cost in self.costs)

    def bottleneck_service(self) -> float:
        """The slowest stage's per-request occupancy (throughput cap)."""
        return max(cost.service for cost in self.costs)

    def simulate_stream(
        self,
        num_requests: int,
        arrival_interval: float = 0.0,
        engine: str = "recurrence",
        service_jitter: float = 0.0,
        seed: int = 0,
    ) -> SimulatedStream:
        """Push ``num_requests`` through the pipeline.

        Args:
            num_requests: stream length.
            arrival_interval: seconds between admissions (0 = all at
                time zero, i.e. a backlogged stream).
            engine: "recurrence" (closed form) or "events"
                (event-driven); both produce identical schedules.
            service_jitter: relative per-(request, stage) service-time
                noise: each service time is multiplied by a uniform
                draw from [1 - j, 1 + j].  0 = deterministic.
            seed: jitter RNG seed.
        """
        if num_requests < 1:
            raise SimulationError("num_requests must be >= 1")
        if not 0.0 <= service_jitter < 1.0:
            raise SimulationError("service_jitter must be in [0, 1)")
        arrivals = [arrival_interval * r for r in range(num_requests)]
        services = [cost.service for cost in self.costs]
        transfers = [cost.transfer for cost in self.costs]
        service_matrix: list[list[float]] | None = None
        if service_jitter > 0.0:
            rng = np.random.default_rng(seed)
            service_matrix = [
                [
                    s * float(rng.uniform(1 - service_jitter,
                                          1 + service_jitter))
                    for s in services
                ]
                for _ in range(num_requests)
            ]
        if engine == "events":
            completions = EventDrivenPipeline(services, transfers).run(
                arrivals, service_matrix=service_matrix
            )
        elif engine == "recurrence":
            completions = _recurrence(services, transfers, arrivals,
                                      service_matrix)
        else:
            raise SimulationError(
                f"unknown engine {engine!r}; use 'recurrence' or 'events'"
            )
        latencies = tuple(
            done - admitted for done, admitted in zip(completions,
                                                      arrivals)
        )
        return SimulatedStream(latencies=latencies,
                               makespan=max(completions))


def _recurrence(
    services: Sequence[float],
    transfers: Sequence[float],
    arrivals: Sequence[float],
    service_matrix: Sequence[Sequence[float]] | None = None,
) -> List[float]:
    """Exact FIFO pipeline schedule via the classic recurrence.

    ``service_matrix[r][i]`` overrides stage ``i``'s service time for
    request ``r`` (per-request jitter).
    """
    num_stages = len(services)
    previous_finish = [0.0] * num_stages
    completions: List[float] = []
    for request_index, admission in enumerate(arrivals):
        row = (service_matrix[request_index]
               if service_matrix is not None else services)
        ready = admission
        for index in range(num_stages):
            start = max(ready, previous_finish[index])
            finish = start + row[index]
            previous_finish[index] = finish
            ready = finish + transfers[index]
        completions.append(ready)
    return completions


def centralized_cipher_latency(
    stages: Sequence[MergedPrimitive],
    cost_model: CostModel,
    decimals: int,
) -> float:
    """CipherBase: single-server, single-thread inference on
    ciphertexts — the total homomorphic + activation cost, no pipeline,
    no network."""
    total = 0.0
    for stage in stages:
        if stage.kind is LayerKind.LINEAR:
            total += _linear_compute_seconds(stage, cost_model, decimals)
        else:
            total += _nonlinear_compute_seconds(stage, cost_model)
    return total


def centralized_plain_latency(
    stages: Sequence[MergedPrimitive],
    cost_model: CostModel,
) -> float:
    """PlainBase: single-server plaintext inference (no crypto at all).

    Every operation — linear multiply-accumulate or activation — costs
    one plaintext elementary operation.
    """
    total = 0.0
    for stage in stages:
        counts = stage.op_counts()
        plain_equivalent = (
            counts.ciphertext_muls + counts.ciphertext_adds
            + counts.plain_ops
        )
        total += plain_equivalent * cost_model.plain_op
    return total
