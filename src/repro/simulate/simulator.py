"""Pipeline latency/throughput simulation and centralized baselines.

:class:`PipelineSimulator` turns a plan + cost model into per-request
latencies for a request stream, using either the closed-form pipeline
recurrence or the event-driven engine (they agree exactly; tests check
this).  The centralized baselines of Exp#2 — PlainBase and CipherBase —
are plain sums of operation costs on a single server with no pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np  # noqa: F401 - jitter sampling

from ..costs import CostModel
from ..errors import SimulationError
from ..nn.layers import LayerKind
from ..planner.plan import Plan
from ..planner.primitive import MergedPrimitive
from ..stream.faults import FaultKind, FaultPlan
from ..stream.retry import (
    REASON_EXHAUSTED,
    REASON_PERMANENT,
    DeadLetter,
    RetryPolicy,
)
from .events import EventDrivenPipeline
from .stagecosts import (
    StageCost,
    _linear_compute_seconds,
    _nonlinear_compute_seconds,
    stage_costs,
)


@dataclass(frozen=True)
class SimulatedStream:
    """Result of simulating a request stream.

    Attributes:
        latencies: per-*completed*-request seconds from admission to
            completion (dead-lettered requests are excluded).
        makespan: completion/exit time of the last request.
        throughput: completed requests per second over the makespan.
        dead_letters: requests removed by injected permanent faults or
            exhausted retries — same record type and semantics as the
            threaded runtime's :class:`repro.stream.retry.DeadLetter`.
        retries: total simulated executor retries.
        backoff_events: total simulated backoff sleeps.
    """

    latencies: tuple[float, ...]
    makespan: float
    dead_letters: tuple = ()
    retries: int = 0
    backoff_events: int = 0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def first_request_latency(self) -> float:
        return self.latencies[0]

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            raise SimulationError("makespan must be positive")
        return len(self.latencies) / self.makespan


class PipelineSimulator:
    """Simulates a deployed PP-Stream plan under a cost model."""

    def __init__(
        self,
        plan: Plan,
        cost_model: CostModel,
        decimals: int,
    ):
        self.plan = plan
        self.cost_model = cost_model
        self.decimals = decimals
        self.costs: List[StageCost] = stage_costs(
            plan, cost_model, decimals
        )

    def request_latency(self) -> float:
        """Latency of a single request through an idle pipeline."""
        return sum(cost.total for cost in self.costs)

    def bottleneck_service(self) -> float:
        """The slowest stage's per-request occupancy (throughput cap)."""
        return max(cost.service for cost in self.costs)

    def simulate_stream(
        self,
        num_requests: int,
        arrival_interval: float = 0.0,
        engine: str = "recurrence",
        service_jitter: float = 0.0,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> SimulatedStream:
        """Push ``num_requests`` through the pipeline.

        Args:
            num_requests: stream length.
            arrival_interval: seconds between admissions (0 = all at
                time zero, i.e. a backlogged stream).
            engine: "recurrence" (closed form) or "events"
                (event-driven); both produce identical schedules.
            service_jitter: relative per-(request, stage) service-time
                noise: each service time is multiplied by a uniform
                draw from [1 - j, 1 + j].  0 = deterministic.
            seed: jitter RNG seed.
            fault_plan: the stream runtime's fault model
                (:mod:`repro.stream.faults`), applied with identical
                failure semantics: transient faults cost backoff time
                and retries, permanent faults (and transient counts
                exceeding the retry budget) dead-letter exactly their
                request at the faulted stage, slow/stall faults add
                their delay to the stage visit, and crashes are
                absorbed by supervisor restarts (re-running the item).
            retry_policy: classification/backoff policy used to
                resolve the fault plan; defaults to
                :class:`RetryPolicy`'s defaults (as the pipeline's
                would).
        """
        if num_requests < 1:
            raise SimulationError("num_requests must be >= 1")
        if not 0.0 <= service_jitter < 1.0:
            raise SimulationError("service_jitter must be in [0, 1)")
        arrivals = [arrival_interval * r for r in range(num_requests)]
        services = [cost.service for cost in self.costs]
        transfers = [cost.transfer for cost in self.costs]
        service_matrix: list[list[float]] | None = None
        if service_jitter > 0.0:
            rng = np.random.default_rng(seed)
            service_matrix = [
                [
                    s * float(rng.uniform(1 - service_jitter,
                                          1 + service_jitter))
                    for s in services
                ]
                for _ in range(num_requests)
            ]
        drop_after: dict[int, int] | None = None
        dead_letters: tuple[DeadLetter, ...] = ()
        retries = 0
        backoff_events = 0
        if fault_plan:
            (service_matrix, drop_after, dead_letters, retries,
             backoff_events) = _fold_fault_plan(
                fault_plan,
                retry_policy if retry_policy is not None
                else RetryPolicy(),
                services, num_requests, service_matrix,
            )
        if engine == "events":
            completions = EventDrivenPipeline(services, transfers).run(
                arrivals, service_matrix=service_matrix,
                drop_after=drop_after,
            )
        elif engine == "recurrence":
            completions = _recurrence(services, transfers, arrivals,
                                      service_matrix, drop_after)
        else:
            raise SimulationError(
                f"unknown engine {engine!r}; use 'recurrence' or 'events'"
            )
        dropped = set(drop_after or ())
        latencies = tuple(
            done - admitted
            for request_id, (done, admitted)
            in enumerate(zip(completions, arrivals))
            if request_id not in dropped
        )
        return SimulatedStream(
            latencies=latencies,
            makespan=max(completions),
            dead_letters=dead_letters,
            retries=retries,
            backoff_events=backoff_events,
        )


def _fold_fault_plan(
    fault_plan: FaultPlan,
    policy: RetryPolicy,
    services: Sequence[float],
    num_requests: int,
    base_matrix: Sequence[Sequence[float]] | None,
):
    """Resolve a fault plan into the schedule inputs both engines eat.

    Mirrors the threaded runtime's semantics: an injected failure
    raises *before* the stage's real work, so a failed attempt costs
    only its backoff sleep; a transient fault that stays within the
    retry budget then pays the full service time once, while one that
    exceeds it (or a permanent fault) dead-letters the request at that
    stage — it occupies the stage for its accumulated backoff and
    exits.  Crashes are absorbed by supervisor restarts which re-run
    the item at no modelled extra cost.

    Returns ``(service_matrix, drop_after, dead_letters, retries,
    backoff_events)``.
    """
    matrix = [
        [base_matrix[r][s] if base_matrix is not None else services[s]
         for s in range(len(services))]
        for r in range(num_requests)
    ]
    drop_after: dict[int, int] = {}
    dead: List[DeadLetter] = []
    retries = 0
    backoff_events = 0
    for request_id in range(num_requests):
        for stage in range(len(services)):
            visit = matrix[request_id][stage]
            dropped = False
            for spec in fault_plan.lookup(stage, request_id):
                if spec.kind in (FaultKind.SLOW, FaultKind.STALL):
                    visit += spec.delay
                elif spec.kind is FaultKind.CRASH:
                    continue
                elif spec.kind is FaultKind.TRANSIENT:
                    failures = min(spec.count, policy.max_retries + 1)
                    backoff = 0.0
                    for attempt in range(1, failures + 1):
                        if attempt <= policy.max_retries:
                            delay = policy.backoff_delay(attempt)
                            backoff += delay
                            retries += 1
                            if delay > 0:
                                backoff_events += 1
                    if spec.count > policy.max_retries:
                        visit = backoff
                        dropped = True
                        dead.append(DeadLetter(
                            request_id=request_id,
                            stage=stage,
                            reason=REASON_EXHAUSTED,
                            attempts=policy.max_retries + 1,
                            error="simulated transient fault",
                        ))
                    else:
                        visit += backoff
                elif spec.kind is FaultKind.PERMANENT:
                    visit = 0.0
                    dropped = True
                    dead.append(DeadLetter(
                        request_id=request_id,
                        stage=stage,
                        reason=REASON_PERMANENT,
                        attempts=1,
                        error="simulated permanent fault",
                    ))
                if dropped:
                    break
            matrix[request_id][stage] = visit
            if dropped:
                drop_after[request_id] = stage
                break
    return matrix, drop_after, tuple(dead), retries, backoff_events


def _recurrence(
    services: Sequence[float],
    transfers: Sequence[float],
    arrivals: Sequence[float],
    service_matrix: Sequence[Sequence[float]] | None = None,
    drop_after: dict[int, int] | None = None,
) -> List[float]:
    """Exact FIFO pipeline schedule via the classic recurrence.

    ``service_matrix[r][i]`` overrides stage ``i``'s service time for
    request ``r`` (per-request jitter / injected faults), and
    ``drop_after[r]`` makes request ``r`` exit the pipeline after its
    visit to that stage (its completion is its exit time, with no
    trailing transfer) — matching the event engine exactly.
    """
    num_stages = len(services)
    previous_finish = [0.0] * num_stages
    completions: List[float] = []
    for request_index, admission in enumerate(arrivals):
        row = (service_matrix[request_index]
               if service_matrix is not None else services)
        drop_stage = (drop_after.get(request_index)
                      if drop_after is not None else None)
        ready = admission
        for index in range(num_stages):
            start = max(ready, previous_finish[index])
            finish = start + row[index]
            previous_finish[index] = finish
            if drop_stage == index:
                ready = finish
                break
            ready = finish + transfers[index]
        completions.append(ready)
    return completions


def centralized_cipher_latency(
    stages: Sequence[MergedPrimitive],
    cost_model: CostModel,
    decimals: int,
) -> float:
    """CipherBase: single-server, single-thread inference on
    ciphertexts — the total homomorphic + activation cost, no pipeline,
    no network."""
    total = 0.0
    for stage in stages:
        if stage.kind is LayerKind.LINEAR:
            total += _linear_compute_seconds(stage, cost_model, decimals)
        else:
            total += _nonlinear_compute_seconds(stage, cost_model)
    return total


def centralized_plain_latency(
    stages: Sequence[MergedPrimitive],
    cost_model: CostModel,
) -> float:
    """PlainBase: single-server plaintext inference (no crypto at all).

    Every operation — linear multiply-accumulate or activation — costs
    one plaintext elementary operation.
    """
    total = 0.0
    for stage in stages:
        counts = stage.op_counts()
        plain_equivalent = (
            counts.ciphertext_muls + counts.ciphertext_adds
            + counts.plain_ops
        )
        total += plain_equivalent * cost_model.plain_op
    return total
