"""A small discrete-event engine for pipeline simulation.

Each stage is a FIFO resource that serves one request at a time (its
intra-stage threads parallelize *within* a request, which is already
folded into the stage's service time).  Events are (time, sequence,
action) tuples on a heap; actions enqueue requests at stages, start
service when a stage is idle, and forward requests downstream after the
inter-stage transfer delay.

The closed-form recurrence in :mod:`repro.simulate.simulator` computes
the same schedule; the event engine exists so the simulation extends
naturally to arrival jitter and per-request service variation, and the
test suite asserts both engines agree exactly on deterministic inputs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..errors import SimulationError


@dataclass
class _StageState:
    service_time: float
    busy_until: float = 0.0
    queue: List[tuple[float, int]] = field(default_factory=list)


class EventDrivenPipeline:
    """Simulate R requests through stages with given service/transfer
    times.

    Args:
        service_times: per-stage service seconds (occupancy).
        transfer_times: per-stage output transfer seconds (delay before
            the next stage may start; not stage occupancy).
    """

    def __init__(
        self,
        service_times: Sequence[float],
        transfer_times: Sequence[float],
    ):
        if len(service_times) != len(transfer_times):
            raise SimulationError(
                "service and transfer time lists differ in length"
            )
        if not service_times:
            raise SimulationError("pipeline needs at least one stage")
        if any(t < 0 for t in service_times) or \
                any(t < 0 for t in transfer_times):
            raise SimulationError("times must be non-negative")
        self.service_times = list(service_times)
        self.transfer_times = list(transfer_times)

    def run(
        self,
        arrivals: Sequence[float],
        service_matrix: Sequence[Sequence[float]] | None = None,
        drop_after: dict[int, int] | None = None,
    ) -> List[float]:
        """Simulate; returns completion time of each request.

        Args:
            arrivals: per-request admission times (non-decreasing).
            service_matrix: optional per-(request, stage) service-time
                overrides (jitter / injected faults); defaults to the
                fixed per-stage times.
            drop_after: optional map request_id -> stage index at
                which that request leaves the pipeline (dead-letter
                semantics: it occupies stages up to and including the
                drop stage, then exits without the trailing transfer
                and without visiting later stages).  Its "completion"
                time is its exit time.
        """
        if not arrivals:
            raise SimulationError("no arrivals")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise SimulationError("arrivals must be non-decreasing")
        if service_matrix is not None:
            if len(service_matrix) != len(arrivals):
                raise SimulationError(
                    "service_matrix row count != arrivals"
                )
            for row in service_matrix:
                if len(row) != len(self.service_times):
                    raise SimulationError(
                        "service_matrix column count != stages"
                    )
        if drop_after is not None:
            for request_id, stage in drop_after.items():
                if not 0 <= stage < len(self.service_times):
                    raise SimulationError(
                        f"drop stage {stage} for request "
                        f"{request_id} out of range"
                    )

        num_stages = len(self.service_times)
        stages = [_StageState(s) for s in self.service_times]
        completions: dict[int, float] = {}
        heap: list = []
        sequence = itertools.count()

        def push(when: float, action: Callable[[float], None]) -> None:
            heapq.heappush(heap, (when, next(sequence), action))

        def arrive(stage_index: int, request_id: int, when: float) -> None:
            state = stages[stage_index]
            start = max(when, state.busy_until)
            if service_matrix is not None:
                service = service_matrix[request_id][stage_index]
            else:
                service = state.service_time
            finish = start + service
            state.busy_until = finish
            if drop_after is not None \
                    and drop_after.get(request_id) == stage_index:
                completions[request_id] = finish
                return
            if stage_index + 1 < num_stages:
                ready = finish + self.transfer_times[stage_index]
                push(ready, lambda now, s=stage_index + 1, r=request_id:
                     arrive(s, r, now))
            else:
                done = finish + self.transfer_times[stage_index]
                completions[request_id] = done

        for request_id, admission in enumerate(arrivals):
            push(admission,
                 lambda now, r=request_id: arrive(0, r, now))

        while heap:
            when, _, action = heapq.heappop(heap)
            action(when)

        return [completions[r] for r in range(len(arrivals))]
