"""Calibrated discrete-event simulation of the PP-Stream pipeline.

Stands in for the paper's 9-server testbed (DESIGN.md, substitution 1).
The simulator executes the *same* plans the real planner produces —
stage graph, thread counts, partitioning decisions — and charges time
from a :class:`repro.costs.CostModel`, so relative results (speedups,
crossovers, % reductions) are produced by the system's actual logic.

Two interchangeable engines compute stream schedules: an event-driven
engine (:mod:`events`) and a closed-form pipeline recurrence; tests
assert they agree exactly.
"""

from .stagecosts import (
    StageCost,
    intra_comm_seconds,
    make_comm_model,
    stage_costs,
)
from .simulator import (
    PipelineSimulator,
    SimulatedStream,
    centralized_cipher_latency,
    centralized_plain_latency,
)
from .events import EventDrivenPipeline

__all__ = [
    "StageCost",
    "intra_comm_seconds",
    "make_comm_model",
    "stage_costs",
    "PipelineSimulator",
    "SimulatedStream",
    "centralized_cipher_latency",
    "centralized_plain_latency",
    "EventDrivenPipeline",
]
