"""Per-stage service-time derivation from a plan and a cost model.

For each stage of a plan, compute the three latency components of
serving one request:

* ``compute``: cryptographic/plaintext work, divided by the stage's
  thread count (threads partition the output elements).
* ``intra_comm``: distributing inputs to the stage's threads and
  collecting their results.  This is where tensor partitioning acts
  (Section IV-D): without it every thread receives the whole input
  tensor and emits results one element at a time; with it, threads
  receive sub-tensors (receptive fields, for convolution chains) and
  emit one block each.
* ``transfer``: shipping the stage's output tensor across the network
  to the next stage's server (stages alternate between the model and
  data providers, so every boundary is a network hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

from ..costs import CostModel
from ..errors import SimulationError
from ..nn.layers import Flatten, FullyConnected, LayerKind
from ..partitioning.receptive import partitioned_input_elements
from ..planner.plan import Plan


@dataclass(frozen=True)
class StageCost:
    """Latency components of one stage serving one request (seconds)."""

    compute: float
    intra_comm: float
    transfer: float

    @property
    def service(self) -> float:
        """Stage occupancy per request (compute + thread communication)."""
        return self.compute + self.intra_comm

    @property
    def total(self) -> float:
        return self.service + self.transfer


def _linear_compute_seconds(stage, cost_model: CostModel,
                            decimals: int) -> float:
    counts = stage.op_counts()
    scalar_bits = cost_model.scalar_bits_for_decimals(decimals)
    return (
        counts.ciphertext_muls * cost_model.ciphertext_mul(scalar_bits)
        + counts.ciphertext_adds * cost_model.ciphertext_add
        + counts.input_size * cost_model.permute_element
        + counts.output_size * cost_model.permute_element
    )


def _nonlinear_compute_seconds(stage, cost_model: CostModel) -> float:
    counts = stage.op_counts()
    return (
        counts.input_size * cost_model.decrypt
        + counts.plain_ops * cost_model.plain_op
        + counts.output_size * cost_model.encrypt
    )


@lru_cache(maxsize=4096)
def _linear_comm_elements(stage, threads: int,
                          partitioning: bool) -> int:
    """Input elements shipped to the stage's threads for one request.

    Cached: the receptive-field union computation for wide conv stages
    is the expensive part of simulating a plan, and experiments sweep
    scaling factors / cost models over identical (stage, threads)
    pairs.
    """
    counts = stage.op_counts()
    if not partitioning:
        return threads * counts.input_size
    layers = []
    shapes = []
    dense = False
    for primitive in stage.primitives:
        if isinstance(primitive.layer, Flatten):
            continue
        if isinstance(primitive.layer, FullyConnected):
            dense = True
        layers.append(primitive.layer)
        shapes.append(primitive.input_shape)
    if dense or not layers:
        # Output-only partitioning: threads each need the whole input
        # (the paper: input partitioning applies to convolutions only).
        return threads * counts.input_size
    per_thread = partitioned_input_elements(
        layers, shapes, counts.output_size, threads
    )
    return sum(per_thread)


def intra_comm_seconds(
    stage,
    threads: int,
    partitioning: bool,
    cost_model: CostModel,
) -> float:
    """Thread-distribution communication time of one stage/request."""
    counts = stage.op_counts()
    if stage.kind is LayerKind.LINEAR:
        comm_in = _linear_comm_elements(stage, threads, partitioning)
        if partitioning:
            result_messages = threads
        else:
            result_messages = counts.output_size
        return (
            comm_in * (cost_model.serialize_element
                       + cost_model.ciphertext_bytes
                       / cost_model.network_bandwidth)
            + result_messages * cost_model.network_latency
            + counts.output_size * cost_model.serialize_element
        )
    return (
        counts.input_size * cost_model.serialize_element
        + threads * cost_model.network_latency
    )


def make_comm_model(cost_model: CostModel, partitioning: bool):
    """A ``(stage, threads) -> seconds`` callback for the allocator.

    Passing this to :func:`repro.planner.allocation.allocate_load_balanced`
    makes water-filling communication-aware: a thread is only granted
    when its compute gain beats its extra distribution cost.
    """
    def comm(stage, threads: int) -> float:
        return intra_comm_seconds(stage, threads, partitioning,
                                  cost_model)

    return comm


def stage_costs(
    plan: Plan,
    cost_model: CostModel,
    decimals: int,
) -> List[StageCost]:
    """Service/communication costs per stage for one request.

    Args:
        plan: deployment plan (threads + partitioning flag).
        cost_model: per-operation costs.
        decimals: selected scaling exponent ``f``.
    """
    if decimals < 0:
        raise SimulationError("decimals must be non-negative")
    costs: List[StageCost] = []
    partitioning = plan.use_tensor_partitioning
    for stage in plan.stages:
        threads = plan.threads_for(stage.index)
        counts = stage.op_counts()
        if stage.kind is LayerKind.LINEAR:
            compute = _linear_compute_seconds(stage, cost_model,
                                              decimals) / threads
        else:
            compute = _nonlinear_compute_seconds(stage,
                                                 cost_model) / threads
        intra = intra_comm_seconds(stage, threads, partitioning,
                                   cost_model)
        transfer = cost_model.transfer_time(counts.output_size,
                                            encrypted=True)
        costs.append(StageCost(compute=compute, intra_comm=intra,
                               transfer=transfer))
    return costs
