"""The paper's three-step scaling-factor selection (Section IV-A).

Step 1: measure the model's inference accuracy A on the training set.
Step 2: for f = 0, 1, 2, ... round every parameter to f decimal places
and re-measure accuracy A'; stop when |A - A'| < threshold or f hits the
maximum (6).
Step 3: the scaling factor is F = 10^f.

The sweep variant additionally records the accuracy at *every* f, which
is what Tables IV and V report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MAX_SCALING_DECIMALS, SCALING_ACCURACY_THRESHOLD
from ..errors import ScalingError
from ..nn.metrics import accuracy
from ..nn.model import Sequential


def round_parameters(model: Sequential, decimals: int) -> Sequential:
    """Return a copy of ``model`` with every parameter rounded to
    ``decimals`` decimal places (the paper's approximate model)."""
    if decimals < 0:
        raise ScalingError(f"decimals must be non-negative, got {decimals}")
    clone = Sequential.from_state_dict(model.state_dict())
    for param in clone.params():
        param[...] = np.round(param, decimals)
    return clone


def _model_accuracy(
    model: Sequential, x: np.ndarray, y: np.ndarray, num_classes: int,
    batch_size: int = 256,
) -> float:
    predictions = []
    for start in range(0, x.shape[0], batch_size):
        predictions.append(model.predict(x[start:start + batch_size]))
    return accuracy(np.concatenate(predictions), y, num_classes)


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome of the scaling-factor search.

    Attributes:
        decimals: selected ``f``.
        factor: selected ``F = 10^f``.
        original_accuracy: unscaled accuracy A on the evaluation set.
        accuracy_by_decimals: accuracy A' for each explored ``f``.
        hit_cap: True when ``f`` reached the maximum without meeting
            the threshold.
    """

    decimals: int
    original_accuracy: float
    accuracy_by_decimals: dict[int, float] = field(default_factory=dict)
    hit_cap: bool = False

    @property
    def factor(self) -> int:
        return 10 ** self.decimals

    @property
    def selected_accuracy(self) -> float:
        return self.accuracy_by_decimals[self.decimals]


def select_scaling_factor(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    num_classes: int,
    threshold: float = SCALING_ACCURACY_THRESHOLD,
    max_decimals: int = MAX_SCALING_DECIMALS,
) -> ScalingDecision:
    """Run the paper's Step 1-3 search on a training set.

    Args:
        model: trained model (floating-point parameters).
        x, y: the training set the paper measures A and A' on.
        num_classes: label count.
        threshold: accuracy tolerance in *percentage points* (paper
            default 0.01).
        max_decimals: cap on ``f`` (paper default 6).

    Returns:
        :class:`ScalingDecision` with the chosen ``f`` and the accuracy
        trace (only the ``f`` values actually explored).
    """
    if max_decimals < 0:
        raise ScalingError("max_decimals must be non-negative")
    original = _model_accuracy(model, x, y, num_classes)
    trace: dict[int, float] = {}
    for decimals in range(max_decimals + 1):
        approx = round_parameters(model, decimals)
        approx_acc = _model_accuracy(approx, x, y, num_classes)
        trace[decimals] = approx_acc
        # Threshold is in percentage points; accuracies are fractions.
        if abs(original - approx_acc) * 100.0 < threshold:
            return ScalingDecision(
                decimals=decimals,
                original_accuracy=original,
                accuracy_by_decimals=trace,
            )
    return ScalingDecision(
        decimals=max_decimals,
        original_accuracy=original,
        accuracy_by_decimals=trace,
        hit_cap=True,
    )


def scaling_factor_sweep(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    num_classes: int,
    max_decimals: int = MAX_SCALING_DECIMALS,
) -> dict[int, float]:
    """Accuracy at every ``f`` in [0, max_decimals] (Tables IV / V)."""
    return {
        decimals: _model_accuracy(
            round_parameters(model, decimals), x, y, num_classes
        )
        for decimals in range(max_decimals + 1)
    }
