"""Scaled-integer views of linear layers for the homomorphic pipeline.

Once a scaling factor ``F = 10^f`` is selected, every linear layer is
rewritten as an integer affine map so Paillier can evaluate it
(Section III-B / IV-A):

* weights become ``round(W * 10^f)`` carrying exponent ``f``;
* the bias must be pre-scaled to the *output* exponent
  (input exponent + ``f``) so the homomorphic sum lines up;
* the output tensor's exponent is the input's plus ``f``.

:func:`scaled_affine_for_layer` produces the :class:`ScaledAffine` for
each linear layer type (fully-connected, conv via im2col weights,
batch-norm folded to scale/shift, elementwise scale, average pooling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScalingError
from ..nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ElementwiseScale,
    Flatten,
    FullyConnected,
    Layer,
)


def scale_to_int(values: np.ndarray, decimals: int) -> np.ndarray:
    """Round ``values * 10^decimals`` to an int64 array.

    Raises:
        ScalingError: if the scaled values overflow int64 (a sign the
            exponent budget is being misused).
    """
    if decimals < 0:
        raise ScalingError(f"decimals must be non-negative, got {decimals}")
    scaled = np.round(np.asarray(values, dtype=np.float64) * 10 ** decimals)
    if np.any(np.abs(scaled) >= 2 ** 62):
        raise ScalingError(
            "scaled values overflow int64; reduce the scaling exponent"
        )
    return scaled.astype(np.int64)


@dataclass(frozen=True)
class ScaledAffine:
    """Integer affine map ``y = W x + b`` at a declared exponent.

    Attributes:
        weight: int64 (out_dim, in_dim) matrix at exponent ``decimals``.
        bias: int64 (out_dim,) vector, pre-scaled to
            ``input_exponent + decimals`` by the caller of
            :meth:`bias_at`.
        decimals: the weight exponent ``f``.
        input_shape, output_shape: per-sample shapes of the layer this
            affine realizes (flat evaluation is row-major).
    """

    weight: np.ndarray
    raw_bias: np.ndarray
    decimals: int
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]

    def bias_at(self, input_exponent: int) -> np.ndarray:
        """Bias integers at the output exponent for a given input
        exponent: ``round(b * 10^(input_exponent + decimals))``."""
        return scale_to_int(self.raw_bias, input_exponent + self.decimals)

    @property
    def out_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def in_dim(self) -> int:
        return self.weight.shape[1]

    def apply_plain(
        self, x_int: np.ndarray, input_exponent: int
    ) -> np.ndarray:
        """Evaluate on scaled plaintext integers (reference semantics
        for the homomorphic path; used heavily in tests)."""
        flat = np.asarray(x_int, dtype=object).reshape(-1)
        if flat.shape[0] != self.in_dim:
            raise ScalingError(
                f"input size {flat.shape[0]} != expected {self.in_dim}"
            )
        weight = self.weight.astype(object)
        bias = self.bias_at(input_exponent).astype(object)
        return (weight @ flat + bias).reshape(self.output_shape)


def _conv_as_matrix(layer: Conv2d, input_shape: tuple[int, ...]
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Unroll a conv into a dense (out_size, in_size) matrix + bias.

    Row-major flattening on both sides; this is the exact linear map the
    homomorphic pipeline evaluates (and what tensor partitioning slices
    rows of).
    """
    c, h, w = input_shape
    out_c, out_h, out_w = layer.output_shape(input_shape)
    in_size = c * h * w
    out_size = out_c * out_h * out_w
    matrix = np.zeros((out_size, in_size))
    bias = np.zeros(out_size)
    for oc in range(out_c):
        for i in range(out_h):
            top = i * layer.stride - layer.padding
            for j in range(out_w):
                left = j * layer.stride - layer.padding
                row = (oc * out_h + i) * out_w + j
                bias[row] = layer.bias[oc]
                for ic in range(c):
                    for ki in range(layer.kernel):
                        for kj in range(layer.kernel):
                            y_pos, x_pos = top + ki, left + kj
                            if 0 <= y_pos < h and 0 <= x_pos < w:
                                col = (ic * h + y_pos) * w + x_pos
                                matrix[row, col] = \
                                    layer.weight[oc, ic, ki, kj]
    return matrix, bias


def _avgpool_as_matrix(layer: AvgPool2d, input_shape: tuple[int, ...]
                       ) -> tuple[np.ndarray, np.ndarray]:
    c, h, w = input_shape
    out_c, out_h, out_w = layer.output_shape(input_shape)
    matrix = np.zeros((out_c * out_h * out_w, c * h * w))
    share = 1.0 / (layer.kernel * layer.kernel)
    for ch in range(c):
        for i in range(out_h):
            for j in range(out_w):
                row = (ch * out_h + i) * out_w + j
                for ki in range(layer.kernel):
                    for kj in range(layer.kernel):
                        y_pos = i * layer.stride + ki
                        x_pos = j * layer.stride + kj
                        col = (ch * h + y_pos) * w + x_pos
                        matrix[row, col] = share
    return matrix, np.zeros(matrix.shape[0])


def scaled_affine_for_layer(
    layer: Layer, input_shape: tuple[int, ...], decimals: int
) -> ScaledAffine:
    """Build the scaled-integer affine map of a linear layer.

    Supported: FullyConnected, Conv2d, BatchNorm (folded), AvgPool2d,
    ElementwiseScale, Flatten (identity).

    Raises:
        ScalingError: for non-linear or unsupported layers.
    """
    output_shape = layer.output_shape(input_shape)
    in_size = int(np.prod(input_shape))

    if isinstance(layer, FullyConnected):
        weight, bias = layer.weight, layer.bias
    elif isinstance(layer, Conv2d):
        weight, bias = _conv_as_matrix(layer, input_shape)
    elif isinstance(layer, BatchNorm):
        scale, shift = layer.inference_affine()
        per_element_scale = np.broadcast_to(
            scale.reshape((layer.num_features,) + (1,) *
                          (len(input_shape) - 1)),
            input_shape,
        ).reshape(-1)
        per_element_shift = np.broadcast_to(
            shift.reshape((layer.num_features,) + (1,) *
                          (len(input_shape) - 1)),
            input_shape,
        ).reshape(-1)
        weight = np.diag(per_element_scale)
        bias = per_element_shift
    elif isinstance(layer, AvgPool2d):
        weight, bias = _avgpool_as_matrix(layer, input_shape)
    elif isinstance(layer, ElementwiseScale):
        weight = np.eye(in_size) * float(layer.scale[0])
        bias = np.zeros(in_size)
    elif isinstance(layer, Flatten):
        weight = np.eye(in_size)
        bias = np.zeros(in_size)
    else:
        raise ScalingError(
            f"layer {type(layer).__name__} has no scaled affine form"
        )
    return ScaledAffine(
        weight=scale_to_int(weight, decimals),
        raw_bias=np.asarray(bias, dtype=np.float64),
        decimals=decimals,
        input_shape=tuple(input_shape),
        output_shape=tuple(output_shape),
    )
