"""Parameter scaling: floats -> integers for cryptographic operations.

Section IV-A of the paper: every model parameter is multiplied by a
scaling factor ``F = 10^f`` and rounded, with ``f`` chosen by the
smallest value whose rounded model matches the original training-set
accuracy within a threshold (default 0.01 percentage points, f capped
at 6).
"""

from .parameter_scaling import (
    ScalingDecision,
    round_parameters,
    scaling_factor_sweep,
    select_scaling_factor,
)
from .clustering import (
    DEFAULT_CLUSTERS,
    ClusterReport,
    LayerClusterStats,
    cluster_model,
    cluster_values,
)
from .fixed_point import scale_to_int, ScaledAffine, scaled_affine_for_layer
from .headroom import (
    HeadroomReport,
    LanePlan,
    analyze_headroom,
    plan_lane_packing,
    require_headroom,
)

__all__ = [
    "ScalingDecision",
    "round_parameters",
    "scaling_factor_sweep",
    "select_scaling_factor",
    "scale_to_int",
    "ScaledAffine",
    "scaled_affine_for_layer",
    "DEFAULT_CLUSTERS",
    "ClusterReport",
    "LayerClusterStats",
    "cluster_model",
    "cluster_values",
    "HeadroomReport",
    "LanePlan",
    "analyze_headroom",
    "plan_lane_packing",
    "require_headroom",
]
