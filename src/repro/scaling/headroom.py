"""Fixed-point overflow analysis for the homomorphic pipeline.

Paillier arithmetic is exact over Z_n, but the *signed* encoding only
decodes correctly while every intermediate magnitude stays below n/2
(see :class:`repro.crypto.encoding.SignedEncoder`).  A merged linear
stage multiplies scaled integers (exponent grows by ``f`` per fused
affine), so with small keys and deep fusions the headroom can silently
run out — the kind of bug that corrupts inferences without failing.

:func:`analyze_headroom` propagates a worst-case magnitude bound
through every stage of a model: for a linear layer the output bound is
``max_row_l1(W_int) * input_bound + max|b_int|``; non-linear stages
reset the bound to the activation's range re-encoded at the data
exponent.  The result reports the tightest margin (in bits) and the
stage where it occurs, and :class:`repro.protocol.roles.ModelProvider`
can refuse configurations that would overflow.

The same propagation powers lane-packing admission
(:func:`plan_lane_packing`): the *peak* per-primitive magnitude sizes
the lane width of :class:`repro.crypto.encoding.LanePacker`, and a
model is admitted to the packed path only when the requested batch's
worth of lanes fits the key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScalingError
from ..nn.layers import Flatten, LayerKind
from ..nn.model import Sequential
from ..planner.primitive import model_stages


@dataclass(frozen=True)
class HeadroomReport:
    """Outcome of the overflow analysis.

    Attributes:
        safe: True when every intermediate fits the signed range.
        margin_bits: bits of slack at the tightest point (negative
            when overflowing).
        tightest_stage: stage index where the margin occurs.
        bound_by_stage: worst-case integer magnitude after each stage.
        peak_bound: the largest per-primitive intermediate magnitude
            anywhere in the model — a merged linear stage's interior
            primitives can exceed the stage's *final* bound, and lane
            packing must survive every one of them, so this is what
            sizes packed lane widths.
    """

    safe: bool
    margin_bits: float
    tightest_stage: int
    bound_by_stage: dict[int, int]
    peak_bound: int = 0


def _activation_output_bound(activations: list[str],
                             input_bound_float: float) -> float:
    """Worst-case |value| after a non-linear stage, in float units."""
    bound = input_bound_float
    for name in activations:
        base = name.partition(":")[0]
        if base in ("sigmoid", "softmax"):
            bound = 1.0
        elif base == "tanh":
            bound = 1.0
        elif base in ("relu", "leaky_relu"):
            bound = bound  # magnitude cannot grow
        else:
            raise ScalingError(f"unknown activation {name!r}")
    return bound


def analyze_headroom(
    model: Sequential,
    decimals: int,
    key_size: int,
    input_bound: float = 1.0,
) -> HeadroomReport:
    """Propagate worst-case magnitudes and compare against n/2.

    Args:
        model: the (trained) model to be deployed.
        decimals: scaling exponent ``f``.
        key_size: Paillier modulus bits; the signed range is about
            ``2^(key_size - 1)``.
        input_bound: max |input value| (float units; e.g. 1.0 for
            normalized pixels).

    Raises:
        ScalingError: on models the analysis does not support.
    """
    if input_bound <= 0:
        raise ScalingError("input_bound must be positive")
    # Conservative signed range: n >= 2^(key_size - 1), headroom n/2.
    limit_bits = key_size - 2
    stages = model_stages(model)
    from ..protocol.roles import activation_spec

    bound_by_stage: dict[int, int] = {}
    worst_margin = float("inf")
    tightest = 0
    # (integer magnitude bound, its base-10 exponent)
    int_bound = int(np.ceil(input_bound * 10 ** decimals))
    exponent = decimals
    peak_bound = int_bound
    for stage in stages:
        if stage.kind is LayerKind.LINEAR:
            for primitive in stage.primitives:
                if isinstance(primitive.layer, Flatten):
                    continue
                weight_l1, bias_max = _layer_l1_and_bias(
                    primitive.layer, decimals
                )
                exponent += decimals
                bias_bound = int(np.ceil(bias_max * 10 ** exponent))
                int_bound = weight_l1 * int_bound + bias_bound
                # Interior primitives of a merged stage can exceed the
                # stage's final bound; the peak must cover them all.
                peak_bound = max(peak_bound, int_bound)
            int_bound = max(int_bound, 1)
            bound_by_stage[stage.index] = int_bound
            margin = float(limit_bits) - _log2_int(int_bound)
            if margin < worst_margin:
                worst_margin = margin
                tightest = stage.index
        else:
            activations = [activation_spec(p.layer)
                           for p in stage.primitives]
            float_bound = _activation_output_bound(
                activations, int_bound / 10 ** exponent
            )
            exponent = decimals
            int_bound = max(
                int(np.ceil(float_bound * 10 ** decimals)), 1
            )
            peak_bound = max(peak_bound, int_bound)
            bound_by_stage[stage.index] = int_bound
    return HeadroomReport(
        safe=worst_margin > 0,
        margin_bits=worst_margin,
        tightest_stage=tightest,
        bound_by_stage=bound_by_stage,
        peak_bound=max(peak_bound, 1),
    )


def _layer_l1_and_bias(layer, decimals: int) -> tuple[int, float]:
    """(max output-row L1 of the scaled-integer weights, max |bias|).

    Computed per layer type without materializing the dense unrolled
    matrix, so the analysis stays cheap for VGG-scale convolutions.
    """
    from ..nn.layers import (
        AvgPool2d,
        BatchNorm,
        Conv2d,
        ElementwiseScale,
        FullyConnected,
    )

    scale = 10 ** decimals
    if isinstance(layer, FullyConnected):
        int_w = np.round(layer.weight * scale)
        l1 = int(np.abs(int_w).sum(axis=1).max())
        return l1, float(np.abs(layer.bias).max(initial=0.0))
    if isinstance(layer, Conv2d):
        int_w = np.round(layer.weight * scale)
        # worst row: an interior output position seeing the full kernel
        l1 = int(np.abs(int_w).reshape(layer.out_channels, -1)
                 .sum(axis=1).max())
        return l1, float(np.abs(layer.bias).max(initial=0.0))
    if isinstance(layer, BatchNorm):
        bn_scale, bn_shift = layer.inference_affine()
        l1 = int(np.abs(np.round(bn_scale * scale)).max())
        return l1, float(np.abs(bn_shift).max(initial=0.0))
    if isinstance(layer, ElementwiseScale):
        return int(abs(round(float(layer.scale[0]) * scale))), 0.0
    if isinstance(layer, AvgPool2d):
        window = layer.kernel * layer.kernel
        return window * int(round(scale / window)), 0.0
    raise ScalingError(
        f"no headroom rule for layer {type(layer).__name__}"
    )


def _log2_int(value: int) -> float:
    """log2 of a possibly huge Python int."""
    if value < 1:
        return 0.0
    return float(value.bit_length() - 1)


@dataclass(frozen=True)
class LanePlan:
    """Lane-packing admission decision for one (model, key, batch).

    Attributes:
        lanes: requested batch-axis lane count.
        mag_bits: advertised per-lane magnitude bits, sized from the
            headroom analysis's :attr:`HeadroomReport.peak_bound`.
        guard_bits: extra slack bits per lane (pure safety margin —
            the peak bound already covers every intermediate).
        lane_bits: total lane width (``mag_bits + guard_bits + 1``).
        capacity: how many such lanes the key can carry.
        peak_bound: the peak magnitude that sized the lanes.
        admitted: True when the packed path may run.
        reason: why admission failed (None when admitted).
    """

    lanes: int
    mag_bits: int
    guard_bits: int
    lane_bits: int
    capacity: int
    peak_bound: int
    admitted: bool
    reason: str | None = None


def plan_lane_packing(
    model: Sequential,
    decimals: int,
    key_size: int,
    lanes: int,
    input_bound: float = 1.0,
    guard_bits: int | None = None,
) -> LanePlan:
    """Decide whether lane packing can carry ``lanes`` batch samples.

    Sizes lanes from the worst-case *peak* intermediate magnitude
    (:func:`analyze_headroom`), then checks the requested lane count
    against the key's capacity.  Capacity is computed conservatively
    from ``key_size - 2`` bits so a :class:`LanePacker` built from the
    actual modulus (whose bit length can fall one short of
    ``key_size``) always accepts an admitted plan.

    Returns a :class:`LanePlan`; callers branch on ``plan.admitted``
    and surface ``plan.reason`` in the fallback metrics.
    """
    from ..crypto.encoding import DEFAULT_GUARD_BITS

    if lanes < 1:
        raise ScalingError(f"lanes must be >= 1, got {lanes}")
    if guard_bits is None:
        guard_bits = DEFAULT_GUARD_BITS
    report = analyze_headroom(model, decimals, key_size, input_bound)
    peak = max(report.peak_bound, 1)
    mag_bits = max(peak.bit_length(), 1)
    lane_bits = mag_bits + guard_bits + 1
    capacity = max(0, (key_size - 2) // lane_bits)
    if not report.safe:
        admitted = False
        reason = (
            f"headroom analysis unsafe at stage "
            f"{report.tightest_stage} "
            f"({-report.margin_bits:.1f} bits over)"
        )
    elif capacity < lanes:
        admitted = False
        reason = (
            f"{lanes} lanes of {lane_bits} bits exceed the "
            f"{capacity}-lane capacity of a {key_size}-bit key"
        )
    else:
        admitted = True
        reason = None
    return LanePlan(
        lanes=lanes,
        mag_bits=mag_bits,
        guard_bits=guard_bits,
        lane_bits=lane_bits,
        capacity=capacity,
        peak_bound=peak,
        admitted=admitted,
        reason=reason,
    )


def require_headroom(
    model: Sequential,
    decimals: int,
    key_size: int,
    input_bound: float = 1.0,
) -> HeadroomReport:
    """Like :func:`analyze_headroom` but raises when unsafe."""
    report = analyze_headroom(model, decimals, key_size, input_bound)
    if not report.safe:
        raise ScalingError(
            f"fixed-point overflow: stage {report.tightest_stage} "
            f"exceeds the signed range by {-report.margin_bits:.1f} "
            f"bits at key size {key_size}; increase the key size or "
            "reduce the scaling factor"
        )
    return report
