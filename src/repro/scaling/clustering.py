"""Weight clustering: collapse each layer to few distinct values.

The compression-aware Paillier path (:mod:`repro.crypto.sparse`) pays
one modular exponentiation per distinct (ciphertext, weight) pair and
a single modular multiply for every further use.  Clustering a layer's
weights to ``k`` shared values therefore caps the exponentiations an
input ciphertext can cost at ``k`` — for a conv layer whose im2col
matrix reuses each kernel weight at every output position, this is the
difference between "one pow per output position" and "one pow per
cluster".

Determinism is a hard requirement here (the planner, the property
tests, and any two stage replicas must quantize a layer identically),
so the k-means implementation is seeded end to end and breaks every
tie stably:

* k-means++ initialization draws from ``numpy.random.default_rng`` on
  the caller's seed (per-layer seeds are derived as ``seed + index``
  so reordering unrelated layers does not reshuffle clusters);
* Lloyd assignment uses ``argmin`` over ``(distance, center index)``,
  which resolves equidistant points to the lowest-indexed center;
* empty clusters keep their previous center;
* centers are sorted ascending before the final assignment, so the
  returned palette is a canonical form independent of init order.

Zero weights are never clustered: a zero is pruning's work product and
must stay exactly zero for the sparse engine path to skip it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError, ModelError
from ..nn.layers import Conv2d, FullyConnected
from ..nn.metrics import top1_accuracy
from ..nn.model import Sequential
from ..nn.rewrite import _clone_layer

#: Default number of shared weight values per layer.  16 clusters keep
#: zoo-model accuracy within noise while capping per-ciphertext
#: exponentiations at 16 (Popcorn uses comparable palettes).
DEFAULT_CLUSTERS = 16


def cluster_values(
    values: np.ndarray,
    clusters: int,
    seed: int = 0,
    iterations: int = 25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic 1-D k-means quantization.

    Args:
        values: 1-D float array to quantize.
        clusters: number of shared values (``k``).
        seed: RNG seed for k-means++ initialization.
        iterations: maximum Lloyd iterations.

    Returns:
        ``(quantized, centers)`` — ``quantized`` has ``values``'s shape
        with every entry replaced by its cluster center; ``centers``
        is sorted ascending and deduplicated.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if clusters < 1:
        raise ConfigurationError(
            f"clusters must be >= 1, got {clusters}"
        )
    if iterations < 1:
        raise ConfigurationError(
            f"iterations must be >= 1, got {iterations}"
        )
    if values.size == 0:
        return values.copy(), np.empty(0)
    unique = np.unique(values)
    if unique.size <= clusters:
        # Fewer distinct values than clusters: the identity quantizer
        # is exact and trivially deterministic.
        return values.copy(), unique
    centers = _kmeans_pp_init(values, clusters,
                              np.random.default_rng(seed))
    for _ in range(iterations):
        # Row-wise |v - c| with argmin resolves ties to the
        # lowest-indexed center (numpy guarantees first occurrence).
        assign = np.argmin(np.abs(values[:, None] - centers[None, :]),
                           axis=1)
        updated = centers.copy()
        for index in range(clusters):
            members = values[assign == index]
            if members.size:
                updated[index] = members.mean()
        if np.array_equal(updated, centers):
            break
        centers = updated
    centers = np.unique(centers)
    assign = np.argmin(np.abs(values[:, None] - centers[None, :]),
                       axis=1)
    return centers[assign], centers


def _kmeans_pp_init(values: np.ndarray, clusters: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Seeded k-means++ over 1-D values (deterministic per seed)."""
    centers = np.empty(clusters)
    centers[0] = values[int(rng.integers(values.size))]
    d2 = (values - centers[0]) ** 2
    for index in range(1, clusters):
        total = d2.sum()
        if total <= 0.0:
            # All remaining points coincide with a chosen center;
            # replicate it (dedup happens after Lloyd).
            centers[index:] = centers[index - 1]
            break
        # Inverse-CDF sampling on a single uniform draw keeps the
        # choice deterministic and independent of numpy's choice()
        # implementation details.
        cumulative = np.cumsum(d2 / total)
        draw = float(rng.random())
        centers[index] = values[
            int(np.searchsorted(cumulative, draw, side="right"))
        ]
        d2 = np.minimum(d2, (values - centers[index]) ** 2)
    return centers


@dataclass(frozen=True)
class LayerClusterStats:
    """Clustering outcome of one linear layer."""

    index: int
    layer: str
    total: int
    nonzero: int
    clusters: int
    #: Mean |w - q(w)| over the clustered (nonzero) weights.
    quantization_error: float


@dataclass(frozen=True)
class ClusterReport:
    """What :func:`cluster_model` did and what it cost in accuracy."""

    requested_clusters: int
    seed: int
    layers: Tuple[LayerClusterStats, ...]
    baseline_accuracy: float | None = None
    clustered_accuracy: float | None = None

    @property
    def accuracy_delta(self) -> float | None:
        """Accuracy change caused by clustering (negative = loss)."""
        if self.baseline_accuracy is None \
                or self.clustered_accuracy is None:
            return None
        return self.clustered_accuracy - self.baseline_accuracy


def cluster_model(
    model: Sequential,
    clusters: int = DEFAULT_CLUSTERS,
    *,
    seed: int = 0,
    inputs: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    iterations: int = 25,
) -> Tuple[Sequential, ClusterReport]:
    """Cluster every linear layer's nonzero weights to shared values.

    Layers are deep-copied; zeros (pruned weights) are preserved
    exactly.  Layer ``i`` clusters under seed ``seed + i``, so the
    result is a pure function of (model weights, clusters, seed).

    Args:
        model: source model (left untouched).
        clusters: shared values per layer.
        seed: master seed; per-layer seeds derive from it.
        inputs, labels: optional evaluation set — when given, the
            report carries before/after top-1 accuracy.
        iterations: maximum Lloyd iterations per layer.

    Returns:
        ``(clustered_model, report)``.
    """
    if (inputs is None) != (labels is None):
        raise ModelError(
            "cluster_model needs both inputs and labels, or neither"
        )
    baseline = None
    if inputs is not None:
        baseline = top1_accuracy(model.predict(inputs), labels)
    clustered = Sequential(model.input_shape,
                           name=f"{model.name}-clustered")
    stats: list[LayerClusterStats] = []
    for index, layer in enumerate(model.layers):
        clone = _clone_layer(layer)
        if isinstance(clone, (Conv2d, FullyConnected)):
            weight = clone.weight
            flat = weight.reshape(-1)
            nonzero = flat != 0.0
            values = flat[nonzero]
            quantized, centers = cluster_values(
                values, clusters, seed=seed + index,
                iterations=iterations,
            )
            error = (float(np.mean(np.abs(values - quantized)))
                     if values.size else 0.0)
            flat[nonzero] = quantized
            stats.append(LayerClusterStats(
                index=index,
                layer=type(layer).__name__,
                total=int(flat.size),
                nonzero=int(values.size),
                clusters=int(centers.size),
                quantization_error=error,
            ))
        clustered.add(clone)
    achieved = None
    if baseline is not None:
        achieved = top1_accuracy(clustered.predict(inputs), labels)
    return clustered, ClusterReport(
        requested_clusters=clusters,
        seed=seed,
        layers=tuple(stats),
        baseline_accuracy=baseline,
        clustered_accuracy=achieved,
    )
