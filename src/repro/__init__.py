"""PP-Stream reproduction: privacy-preserving NN inference via
distributed stream processing (Liu et al., ICDE 2024).

Public API tour:

* ``repro.crypto`` — Paillier PHE, encodings, encrypted tensors.
* ``repro.obfuscation`` — permutation obfuscation + leakage metric.
* ``repro.nn`` — numpy NN engine (layers, training, model zoo).
* ``repro.datasets`` — synthetic Table III dataset stand-ins.
* ``repro.scaling`` — the paper's parameter-scaling procedure.
* ``repro.planner`` — primitive merging, profiling, the allocation ILP.
* ``repro.partitioning`` — input/output tensor partitioning.
* ``repro.protocol`` — the Figure 3 collaborative workflow (roles,
  sessions, transcripts).
* ``repro.stream`` — the real threaded stream-processing runtime.
* ``repro.net`` — the networked twin: framed TCP transport, remote
  stage workers, coordinator with heartbeat failover.
* ``repro.serve`` — the multi-tenant serving gateway: HTTP front
  door, bounded job manager, per-tenant keypairs on a shared fleet.
* ``repro.soak`` — sustained mixed-load harness with leak sentinels.
* ``repro.simulate`` — the calibrated discrete-event simulator.
* ``repro.baselines`` — PlainBase/CipherBase and the EzPC-style 2PC
  engine (secret sharing + garbled circuits).
* ``repro.experiments`` — regenerates every table and figure.

Quickstart::

    from repro.config import RuntimeConfig
    from repro.datasets import load_dataset
    from repro.nn import model_zoo
    from repro.nn.training import SGDTrainer
    from repro.protocol import DataProvider, InferenceSession, \
        ModelProvider

    ds = load_dataset("breast")
    model = model_zoo.build_model("breast")
    SGDTrainer(model).fit(ds.train_x, ds.train_y, epochs=10)

    cfg = RuntimeConfig(key_size=256)
    session = InferenceSession(
        ModelProvider(model, decimals=3, config=cfg),
        DataProvider(value_decimals=3, config=cfg),
    )
    outcome = session.run(ds.test_x[0])
    print(outcome.prediction, outcome.transcript.all_ciphertext())
"""

from .config import DEFAULT_CONFIG, RuntimeConfig
from .costs import CostModel
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "RuntimeConfig",
    "CostModel",
    "ReproError",
    "__version__",
]
