"""Runtime configuration for the PP-Stream reproduction.

A single :class:`RuntimeConfig` object gathers the knobs that cut across
subsystems: the Paillier key size, the default scaling factor bounds, RNG
seeding, and whether latency experiments run against the live-calibrated
cost model or the frozen reference profile.

The paper's prototype fixes the key size at 2048 bits (Section V).  Pure
Python is slower than the GMP-based prototype, so the *default* here is a
smaller key that keeps tests fast; the key size is a parameter everywhere,
never a separate code path, and the Fig. 1 benchmark exercises the real
512/1024/2048-bit sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigurationError

#: Key size used by the paper's prototype (bits).
PAPER_KEY_SIZE = 2048

#: Default key size for tests and examples (bits).  Small enough that a
#: full protocol round-trip over a small model completes in well under a
#: second, large enough to exercise every code path (CRT split, signed
#: encoding headroom checks).
DEFAULT_KEY_SIZE = 256

#: Maximum number of decimal places explored by parameter scaling (paper
#: Section IV-A fixes this to 6).
MAX_SCALING_DECIMALS = 6

#: Accuracy-degradation threshold for accepting a scaling factor
#: (paper default: 0.01 percentage points).
SCALING_ACCURACY_THRESHOLD = 0.01


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable bundle of cross-cutting runtime settings.

    Attributes:
        key_size: Paillier modulus size in bits.
        seed: master RNG seed; all randomness in the package derives from
            it so experiments are reproducible.
        max_scaling_decimals: upper bound on the scaling exponent ``f``.
        scaling_threshold: accuracy-drop tolerance (percentage points)
            used when selecting the scaling factor.
        hyperthreading: whether a physical core may host two threads
            (constraint (8) of the allocation ILP multiplies capacity by 2).
        cost_profile: name of the simulator cost profile, either
            ``"reference"`` (frozen constants resembling the paper's
            2048-bit GMP testbed) or ``"calibrated"`` (micro-benchmarked
            from this interpreter at ``key_size``).
        workers: process-pool size for the batched Paillier engine's
            bulk kernels (``encrypt_many`` / ``decrypt_many`` /
            matvec).  0 (the default) keeps all crypto in-process —
            big-int ``pow`` holds the GIL, so processes, not threads,
            are the only way to parallelize it.
        blinding_pool_size: target number of precomputed ``r^n mod
            n^2`` blinding factors the engine keeps ready; online
            encryption then costs one modular multiply.
        power_window_bits: window width of the engine's fixed-base
            exponentiation tables (the per-ciphertext power cache used
            by FC/conv matvecs).
        dispatch_min_items: the engine's process-dispatch break-even
            threshold — batches smaller than this run inline even when
            ``workers > 0``, because fork/pickle overhead dwarfs the
            arithmetic at small sizes (BENCH_paillier.json showed
            ``decrypt_many`` regressing below 1x at 48 ops when
            dispatched).
        bigint_backend: which modular-arithmetic implementation the
            crypto layer uses (:mod:`repro.crypto.backend`):
            ``"auto"`` (the default — gmpy2 where installed, pure
            Python otherwise), ``"python"``, or ``"gmpy2"`` (errors if
            gmpy2 is absent).  Backends are bit-identical; the knob
            only changes speed.
        power_cache_entries: LRU bound on the engine's cross-call
            fixed-base power cache (tables keyed by ciphertext, used
            by the sparse ``fc_matvec`` / ``conv_im2col`` paths).
            Exported as the ``paillier_power_cache_entries`` gauge.
        pack_lanes: requested batch-axis lane count for lane-packed
            inference (:class:`repro.crypto.encoding.LanePacker`).
            0 (the default) disables packing; with ``pack_lanes = B``,
            ``InferenceSession.run_batch`` packs B samples per
            ciphertext when the headroom analysis admits the model,
            falling back to per-sample runs otherwise.
        observability: enable the metrics registry + tracer
            (:mod:`repro.observability`).  Off by default: disabled
            observability hands every hot path shared no-op objects,
            so the instrumented code costs one empty method call per
            point (docs/OBSERVABILITY.md has the measurements).
        net_connect_timeout: seconds the networked runtime
            (:mod:`repro.net`) waits for a TCP connect (coordinator
            dialing a worker, including failover redials).
        net_handshake_timeout: seconds the coordinator waits for a
            worker's handshake ack — larger than the connect timeout
            because a fresh worker may train its model stage state
            before acking.
        net_request_timeout: seconds a stage proxy waits for one
            stage-task round trip before declaring the worker dead and
            raising a transient error (the retry policy then re-runs
            the item, typically against a failover worker).
        net_heartbeat_interval: seconds between coordinator heartbeat
            pings on each worker control channel.
        net_heartbeat_timeout: heartbeat round-trip budget; a worker
            that misses it is marked dead and its in-flight items are
            re-injected through the retry/dead-letter path.
        net_max_frame_bytes: hard ceiling on one transport frame
            (header + payload).  Oversized sends and oversized declared
            receive lengths both fail with
            :class:`~repro.errors.TransportError` instead of
            exhausting memory.
        net_reconnect_attempts: redial attempts the coordinator makes
            against a failed worker's *existing* address (exponential
            backoff between attempts) before falling back to the
            respawn hook.  Transient network partitions therefore heal
            by reconnecting instead of consuming the worker restart
            budget.  0 disables reconnection (pre-reconnect behaviour:
            straight to respawn/failover).
        net_reconnect_base_delay: seconds before the first reconnect
            attempt; doubles per attempt up to
            ``net_reconnect_max_delay``.
        net_reconnect_max_delay: reconnect backoff ceiling in seconds.
        net_breaker_threshold: consecutive connection failures on one
            worker slot before its circuit breaker opens and reconnect
            attempts are suspended (protection against reconnect
            storms on a flapping worker).
        net_breaker_cooldown: seconds an open circuit breaker waits
            before allowing one half-open probe dial.
        chaos_seed: extra seed folded into the master seed for the
            network chaos plan (:mod:`repro.net.chaos`), so chaos
            schedules can vary independently of the crypto RNG.
        chaos_delay_rate: probability that one outbound frame is
            delayed ``chaos_delay_seconds`` before hitting the wire.
        chaos_delay_seconds: frame-delay duration.
        chaos_drop_rate: probability that one outbound frame is cut
            mid-frame and the connection hard-closed (the peer sees a
            truncated frame, the sender a
            :class:`~repro.errors.TransportError`).
        chaos_dup_heartbeat_rate: probability that a heartbeat frame
            is sent twice — the peer's extra ack then arrives
            out-of-order on the control channel, exercising stale-ack
            tolerance.
        chaos_slow_read_rate: probability that one receive is delayed
            ``chaos_slow_read_seconds`` before reading.
        chaos_slow_read_seconds: slow-read stall duration.

        All ``chaos_*`` rates default to 0.0: chaos is off unless a
        knob is raised (``with_chaos``); handshake frames are always
        exempt so a chaos-enabled run can still connect.

        serve_queue_capacity: bounded request-queue depth of the
            serving gateway's job manager (:mod:`repro.serve`).  A
            submit that finds the queue full is **shed** (HTTP 503 +
            ``Retry-After``) instead of queued — admission control
            before queues blow up.
        serve_workers: job-worker threads draining the gateway queue
            (the shared execution slots all tenants multiplex onto).
        serve_tenant_quota: per-tenant in-flight job ceiling (queued +
            running).  A tenant at quota has further submits shed with
            reason ``quota`` while other tenants keep being admitted.
        serve_max_tenants: hard cap on registered tenants; each tenant
            costs a Paillier keypair and isolated provider state.
        serve_default_deadline: end-to-end job deadline in seconds
            (queue wait + service) applied when a request does not
            carry its own; a job that blows it lands in the DEADLINE
            terminal state.  ``0`` disables the default deadline.
        serve_retry_after: the ``Retry-After`` hint (seconds) the
            gateway attaches to shed responses.
        serve_tenant_allowlist: when non-empty, only these tenant
            names may be created — first-use registration of any
            other name is refused with a non-retryable 4xx.  Empty
            (the default) keeps registration open, which is fine for
            tests and trusted networks but lets any client burn
            tenant slots (and Paillier keygens) on junk names.
        serve_tenant_idle_seconds: evict the least-recently-used
            *idle* tenant (no job queued or running) once it has been
            unused this many seconds **and** the tenant table is full
            — so a name-spray cannot permanently brick registration.
            0 (the default) never evicts: a full table is permanent
            until restart.
        serve_job_history: retained *terminal* jobs per gateway.  The
            tracker folds older terminal jobs into monotonic per-state
            counters (the ``accepted + shed == submitted`` identity
            stays exact forever) but frees their payloads/results, so
            a long-running gateway's memory is bounded by traffic
            rate, not lifetime.  Status polls for evicted job ids
            return 404.
        serve_tenant_rps: per-tenant request-rate ceiling at the
            gateway front door, in admitted requests per one-second
            sliding window (:class:`repro.protocol.ratelimit
            .RateLimiter`).  An over-limit submit gets HTTP 429 +
            ``Retry-After`` *before* any tenant runtime work happens.
            0 (the default) disables rate limiting.
        serve_compress_tenants: with ``compress_enabled``, restricts
            the compressed model to these tenant names — everyone
            else keeps the dense model (per-tenant opt-in).  Empty
            (the default) serves the compressed model to every
            tenant once ``compress_enabled`` is set.
        compress_enabled: serve the pruned + clustered form of the
            model (:func:`repro.nn.rewrite.prune_model` +
            :func:`repro.scaling.clustering.cluster_model`) instead
            of the dense one.  Compressed layers automatically get
            per-layer :class:`~repro.crypto.sparse.SparseMatvecPlan`
            structures at session setup, which every linear-stage
            runtime (in-process, threaded stream, TCP fleet) routes
            through the engine's compressed kernels — bit-identical
            to the dense path on the surviving weights.
        compress_sparsity: target fraction of weights pruned to zero
            per layer when ``compress_enabled``.
        compress_clusters: distinct weight values per layer after
            clustering when ``compress_enabled``.
        compress_accuracy_budget: largest accuracy drop (fraction)
            the compressed model may cost versus the dense baseline.
            Enforced wherever labeled evaluation data is available
            (the bench gate, and serving when the gateway is handed
            an eval set); pruning backs off its sparsity target to
            stay inside the budget.
        cluster_backlog_high: per-stage queue depth at which the
            :class:`~repro.cluster.rebalancer.Rebalancer` triggers an
            online re-plan (docs/ELASTIC.md).
        cluster_backlog_low: depth the backlog must fall below before
            the trigger re-arms (hysteresis; must be <= the high
            threshold).
        cluster_rebalance_cooldown: minimum seconds between two
            applied re-plans, so a noisy gauge cannot thrash plans.
        cluster_rebalance_interval: period of the rebalancer's
            background control loop when started as a thread.
        cluster_min_service_samples: observations a stage's
            service-time histogram needs before its measured mean is
            trusted as a planner input.
        cluster_join_timeout: deadline for the join/announce round
            trip against the coordinator's membership listener.
    """

    key_size: int = DEFAULT_KEY_SIZE
    seed: int = 20240519
    max_scaling_decimals: int = MAX_SCALING_DECIMALS
    scaling_threshold: float = SCALING_ACCURACY_THRESHOLD
    hyperthreading: bool = True
    cost_profile: str = "reference"
    workers: int = 0
    blinding_pool_size: int = 128
    power_window_bits: int = 4
    dispatch_min_items: int = 64
    bigint_backend: str = "auto"
    power_cache_entries: int = 512
    pack_lanes: int = 0
    observability: bool = False
    net_connect_timeout: float = 5.0
    net_handshake_timeout: float = 60.0
    net_request_timeout: float = 120.0
    net_heartbeat_interval: float = 0.5
    net_heartbeat_timeout: float = 5.0
    net_max_frame_bytes: int = 64 * 1024 * 1024
    net_reconnect_attempts: int = 3
    net_reconnect_base_delay: float = 0.05
    net_reconnect_max_delay: float = 2.0
    net_breaker_threshold: int = 5
    net_breaker_cooldown: float = 5.0
    chaos_seed: int = 0
    chaos_delay_rate: float = 0.0
    chaos_delay_seconds: float = 0.02
    chaos_drop_rate: float = 0.0
    chaos_dup_heartbeat_rate: float = 0.0
    chaos_slow_read_rate: float = 0.0
    chaos_slow_read_seconds: float = 0.02
    serve_queue_capacity: int = 32
    serve_workers: int = 4
    serve_tenant_quota: int = 8
    serve_max_tenants: int = 16
    serve_default_deadline: float = 30.0
    serve_retry_after: float = 1.0
    serve_tenant_allowlist: tuple = ()
    serve_tenant_idle_seconds: float = 0.0
    serve_job_history: int = 4096
    serve_tenant_rps: int = 0
    serve_compress_tenants: tuple = ()
    compress_enabled: bool = False
    compress_sparsity: float = 0.7
    compress_clusters: int = 8
    compress_accuracy_budget: float = 0.01
    cluster_backlog_high: float = 8.0
    cluster_backlog_low: float = 2.0
    cluster_rebalance_cooldown: float = 5.0
    cluster_rebalance_interval: float = 1.0
    cluster_min_service_samples: int = 3
    cluster_join_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.key_size < 64:
            raise ConfigurationError(
                f"key_size must be >= 64 bits, got {self.key_size}"
            )
        if self.key_size % 2 != 0:
            raise ConfigurationError(
                f"key_size must be even, got {self.key_size}"
            )
        if self.max_scaling_decimals < 0:
            raise ConfigurationError(
                "max_scaling_decimals must be non-negative, got "
                f"{self.max_scaling_decimals}"
            )
        if self.scaling_threshold < 0:
            raise ConfigurationError(
                f"scaling_threshold must be non-negative, got "
                f"{self.scaling_threshold}"
            )
        if self.cost_profile not in ("reference", "calibrated"):
            raise ConfigurationError(
                "cost_profile must be 'reference' or 'calibrated', got "
                f"{self.cost_profile!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {self.workers}"
            )
        if self.blinding_pool_size < 0:
            raise ConfigurationError(
                "blinding_pool_size must be non-negative, got "
                f"{self.blinding_pool_size}"
            )
        if not 1 <= self.power_window_bits <= 16:
            raise ConfigurationError(
                "power_window_bits must be in [1, 16], got "
                f"{self.power_window_bits}"
            )
        if self.dispatch_min_items < 1:
            raise ConfigurationError(
                "dispatch_min_items must be >= 1, got "
                f"{self.dispatch_min_items}"
            )
        if self.bigint_backend not in ("auto", "python", "gmpy2"):
            raise ConfigurationError(
                "bigint_backend must be 'auto', 'python', or 'gmpy2', "
                f"got {self.bigint_backend!r}"
            )
        if self.power_cache_entries < 1:
            raise ConfigurationError(
                "power_cache_entries must be >= 1, got "
                f"{self.power_cache_entries}"
            )
        if self.pack_lanes < 0:
            raise ConfigurationError(
                f"pack_lanes must be non-negative, got {self.pack_lanes}"
            )
        for knob in ("net_connect_timeout", "net_handshake_timeout",
                     "net_request_timeout", "net_heartbeat_interval",
                     "net_heartbeat_timeout"):
            if getattr(self, knob) <= 0:
                raise ConfigurationError(
                    f"{knob} must be positive seconds, got "
                    f"{getattr(self, knob)}"
                )
        if self.net_heartbeat_timeout < self.net_heartbeat_interval:
            raise ConfigurationError(
                "net_heartbeat_timeout must be >= net_heartbeat_interval "
                f"({self.net_heartbeat_timeout} < "
                f"{self.net_heartbeat_interval})"
            )
        if self.net_max_frame_bytes < 1024:
            raise ConfigurationError(
                "net_max_frame_bytes must be >= 1024 (one frame must "
                f"fit at least a header), got {self.net_max_frame_bytes}"
            )
        if self.net_reconnect_attempts < 0:
            raise ConfigurationError(
                "net_reconnect_attempts must be non-negative, got "
                f"{self.net_reconnect_attempts}"
            )
        for knob in ("net_reconnect_base_delay",
                     "net_reconnect_max_delay"):
            if getattr(self, knob) < 0:
                raise ConfigurationError(
                    f"{knob} must be non-negative seconds, got "
                    f"{getattr(self, knob)}"
                )
        if self.net_breaker_threshold < 1:
            raise ConfigurationError(
                "net_breaker_threshold must be >= 1, got "
                f"{self.net_breaker_threshold}"
            )
        if self.net_breaker_cooldown <= 0:
            raise ConfigurationError(
                "net_breaker_cooldown must be positive seconds, got "
                f"{self.net_breaker_cooldown}"
            )
        for knob in ("chaos_delay_rate", "chaos_drop_rate",
                     "chaos_dup_heartbeat_rate", "chaos_slow_read_rate"):
            if not 0.0 <= getattr(self, knob) <= 1.0:
                raise ConfigurationError(
                    f"{knob} must be a probability in [0, 1], got "
                    f"{getattr(self, knob)}"
                )
        for knob in ("chaos_delay_seconds", "chaos_slow_read_seconds"):
            if getattr(self, knob) < 0:
                raise ConfigurationError(
                    f"{knob} must be non-negative seconds, got "
                    f"{getattr(self, knob)}"
                )
        for knob in ("serve_queue_capacity", "serve_workers",
                     "serve_tenant_quota", "serve_max_tenants"):
            if getattr(self, knob) < 1:
                raise ConfigurationError(
                    f"{knob} must be >= 1, got {getattr(self, knob)}"
                )
        if self.serve_default_deadline < 0:
            raise ConfigurationError(
                "serve_default_deadline must be non-negative seconds "
                f"(0 disables), got {self.serve_default_deadline}"
            )
        if self.serve_retry_after <= 0:
            raise ConfigurationError(
                "serve_retry_after must be positive seconds, got "
                f"{self.serve_retry_after}"
            )
        # The allowlist crosses the wire as a JSON array; normalize it
        # back to a tuple so the frozen dataclass stays hashable.
        object.__setattr__(self, "serve_tenant_allowlist",
                           tuple(self.serve_tenant_allowlist))
        for entry in self.serve_tenant_allowlist:
            if not isinstance(entry, str) or not entry:
                raise ConfigurationError(
                    "serve_tenant_allowlist entries must be non-empty "
                    f"strings, got {entry!r}"
                )
        if self.serve_tenant_idle_seconds < 0:
            raise ConfigurationError(
                "serve_tenant_idle_seconds must be non-negative "
                f"seconds (0 disables), got "
                f"{self.serve_tenant_idle_seconds}"
            )
        if self.serve_job_history < 1:
            raise ConfigurationError(
                "serve_job_history must be >= 1, got "
                f"{self.serve_job_history}"
            )
        if self.serve_tenant_rps < 0:
            raise ConfigurationError(
                "serve_tenant_rps must be non-negative "
                f"(0 disables), got {self.serve_tenant_rps}"
            )
        # Like the allowlist: crosses the wire as a JSON array.
        object.__setattr__(self, "serve_compress_tenants",
                           tuple(self.serve_compress_tenants))
        for entry in self.serve_compress_tenants:
            if not isinstance(entry, str) or not entry:
                raise ConfigurationError(
                    "serve_compress_tenants entries must be non-empty "
                    f"strings, got {entry!r}"
                )
        if not 0.0 <= self.compress_sparsity < 1.0:
            raise ConfigurationError(
                "compress_sparsity must be in [0, 1), got "
                f"{self.compress_sparsity}"
            )
        if self.compress_clusters < 1:
            raise ConfigurationError(
                "compress_clusters must be >= 1, got "
                f"{self.compress_clusters}"
            )
        if self.compress_accuracy_budget < 0:
            raise ConfigurationError(
                "compress_accuracy_budget must be non-negative, got "
                f"{self.compress_accuracy_budget}"
            )
        if self.cluster_backlog_high <= 0:
            raise ConfigurationError(
                "cluster_backlog_high must be positive, got "
                f"{self.cluster_backlog_high}"
            )
        if self.cluster_backlog_low < 0:
            raise ConfigurationError(
                "cluster_backlog_low must be non-negative, got "
                f"{self.cluster_backlog_low}"
            )
        if self.cluster_backlog_low > self.cluster_backlog_high:
            raise ConfigurationError(
                "cluster_backlog_low must be <= cluster_backlog_high "
                f"({self.cluster_backlog_low} > "
                f"{self.cluster_backlog_high})"
            )
        if self.cluster_rebalance_cooldown < 0:
            raise ConfigurationError(
                "cluster_rebalance_cooldown must be non-negative "
                f"seconds, got {self.cluster_rebalance_cooldown}"
            )
        if self.cluster_rebalance_interval <= 0:
            raise ConfigurationError(
                "cluster_rebalance_interval must be positive seconds, "
                f"got {self.cluster_rebalance_interval}"
            )
        if self.cluster_min_service_samples < 1:
            raise ConfigurationError(
                "cluster_min_service_samples must be >= 1, got "
                f"{self.cluster_min_service_samples}"
            )
        if self.cluster_join_timeout <= 0:
            raise ConfigurationError(
                "cluster_join_timeout must be positive seconds, got "
                f"{self.cluster_join_timeout}"
            )

    def with_key_size(self, key_size: int) -> "RuntimeConfig":
        """Return a copy of this config with a different key size."""
        return replace(self, key_size=key_size)

    def with_seed(self, seed: int) -> "RuntimeConfig":
        """Return a copy of this config with a different master seed."""
        return replace(self, seed=seed)

    def with_workers(self, workers: int) -> "RuntimeConfig":
        """Return a copy of this config with a different crypto
        process-pool size."""
        return replace(self, workers=workers)

    def with_observability(self, enabled: bool = True) -> "RuntimeConfig":
        """Return a copy of this config with observability toggled."""
        return replace(self, observability=enabled)

    def with_pack_lanes(self, pack_lanes: int) -> "RuntimeConfig":
        """Return a copy of this config with a different batch-axis
        lane count for lane-packed inference."""
        return replace(self, pack_lanes=pack_lanes)

    def with_dispatch_min_items(self, dispatch_min_items: int
                                ) -> "RuntimeConfig":
        """Return a copy of this config with a different engine
        process-dispatch break-even threshold."""
        return replace(self, dispatch_min_items=dispatch_min_items)

    def with_bigint_backend(self, bigint_backend: str) -> "RuntimeConfig":
        """Return a copy of this config with a different bigint
        backend ('auto', 'python', or 'gmpy2')."""
        return replace(self, bigint_backend=bigint_backend)

    def with_power_cache_entries(self, power_cache_entries: int
                                 ) -> "RuntimeConfig":
        """Return a copy of this config with a different LRU bound on
        the engine's cross-call fixed-base power cache."""
        return replace(self, power_cache_entries=power_cache_entries)

    def with_net(
        self,
        connect_timeout: float | None = None,
        handshake_timeout: float | None = None,
        request_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        max_frame_bytes: int | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the given networked-runtime knobs
        replaced (omitted ones keep their current values)."""
        updates = {
            "net_connect_timeout": connect_timeout,
            "net_handshake_timeout": handshake_timeout,
            "net_request_timeout": request_timeout,
            "net_heartbeat_interval": heartbeat_interval,
            "net_heartbeat_timeout": heartbeat_timeout,
            "net_max_frame_bytes": max_frame_bytes,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    def with_reconnect(
        self,
        attempts: int | None = None,
        base_delay: float | None = None,
        max_delay: float | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown: float | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the reconnect / circuit-breaker knobs
        replaced (omitted ones keep their current values)."""
        updates = {
            "net_reconnect_attempts": attempts,
            "net_reconnect_base_delay": base_delay,
            "net_reconnect_max_delay": max_delay,
            "net_breaker_threshold": breaker_threshold,
            "net_breaker_cooldown": breaker_cooldown,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    def with_chaos(
        self,
        seed: int | None = None,
        delay_rate: float | None = None,
        delay_seconds: float | None = None,
        drop_rate: float | None = None,
        dup_heartbeat_rate: float | None = None,
        slow_read_rate: float | None = None,
        slow_read_seconds: float | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the network-chaos knobs replaced
        (omitted ones keep their current values)."""
        updates = {
            "chaos_seed": seed,
            "chaos_delay_rate": delay_rate,
            "chaos_delay_seconds": delay_seconds,
            "chaos_drop_rate": drop_rate,
            "chaos_dup_heartbeat_rate": dup_heartbeat_rate,
            "chaos_slow_read_rate": slow_read_rate,
            "chaos_slow_read_seconds": slow_read_seconds,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    def with_serve(
        self,
        queue_capacity: int | None = None,
        workers: int | None = None,
        tenant_quota: int | None = None,
        max_tenants: int | None = None,
        default_deadline: float | None = None,
        retry_after: float | None = None,
        tenant_allowlist: tuple | None = None,
        tenant_idle_seconds: float | None = None,
        job_history: int | None = None,
        tenant_rps: int | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the serving-gateway knobs replaced
        (omitted ones keep their current values)."""
        updates = {
            "serve_queue_capacity": queue_capacity,
            "serve_workers": workers,
            "serve_tenant_quota": tenant_quota,
            "serve_max_tenants": max_tenants,
            "serve_default_deadline": default_deadline,
            "serve_retry_after": retry_after,
            "serve_tenant_allowlist": tenant_allowlist,
            "serve_tenant_idle_seconds": tenant_idle_seconds,
            "serve_job_history": job_history,
            "serve_tenant_rps": tenant_rps,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    def with_compress(
        self,
        enabled: bool | None = None,
        sparsity: float | None = None,
        clusters: int | None = None,
        accuracy_budget: float | None = None,
        tenants: tuple | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the model-compression knobs replaced
        (omitted ones keep their current values)."""
        updates = {
            "compress_enabled": enabled,
            "compress_sparsity": sparsity,
            "compress_clusters": clusters,
            "compress_accuracy_budget": accuracy_budget,
            "serve_compress_tenants": tenants,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    def with_cluster(
        self,
        backlog_high: float | None = None,
        backlog_low: float | None = None,
        rebalance_cooldown: float | None = None,
        rebalance_interval: float | None = None,
        min_service_samples: int | None = None,
        join_timeout: float | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with the elastic-fleet knobs replaced
        (omitted ones keep their current values)."""
        updates = {
            "cluster_backlog_high": backlog_high,
            "cluster_backlog_low": backlog_low,
            "cluster_rebalance_cooldown": rebalance_cooldown,
            "cluster_rebalance_interval": rebalance_interval,
            "cluster_min_service_samples": min_service_samples,
            "cluster_join_timeout": join_timeout,
        }
        return replace(self, **{key: value
                                for key, value in updates.items()
                                if value is not None})

    @property
    def chaos_enabled(self) -> bool:
        """Whether any chaos knob would actually inject anything."""
        return (self.chaos_delay_rate > 0.0
                or self.chaos_drop_rate > 0.0
                or self.chaos_dup_heartbeat_rate > 0.0
                or self.chaos_slow_read_rate > 0.0)


#: Package-wide default configuration.
DEFAULT_CONFIG = RuntimeConfig()
