"""Tensor partitioning across threads (paper Section IV-D).

Output tensor partitioning splits the elements of a stage's output
evenly across its threads; input tensor partitioning additionally ships
each thread only the input elements its outputs actually depend on
(possible for convolutions, whose outputs have local receptive fields —
not for fully-connected layers, whose outputs read every input).
"""

from .partition import (
    ThreadTask,
    partition_affine,
    partition_elementwise,
    stage_communication,
)
from .receptive import (
    chain_required_inputs,
    partitioned_input_elements,
    required_inputs,
)

__all__ = [
    "ThreadTask",
    "partition_affine",
    "partition_elementwise",
    "stage_communication",
    "chain_required_inputs",
    "partitioned_input_elements",
    "required_inputs",
]
