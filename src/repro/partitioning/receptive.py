"""Analytic receptive-field computation for input partitioning.

Computes, without materializing dense matrices, which input elements a
set of output elements of a linear layer depends on.  Used by the
simulator to charge per-thread communication for large (e.g. VGG)
models, and chained backwards through merged linear stages.

Flat indices are row-major, matching :class:`EncryptedTensor` and the
obfuscator's lexicographic reshaping.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from ..errors import PartitioningError
from ..nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ElementwiseScale,
    Flatten,
    FullyConnected,
    Layer,
)


def required_inputs(
    layer: Layer,
    input_shape: tuple[int, ...],
    output_indices: Iterable[int],
) -> Set[int]:
    """Flat input indices needed to produce the given flat outputs.

    Supported linear layers:
    * Conv2d / AvgPool2d — true receptive fields (local support).
    * BatchNorm / ElementwiseScale / Flatten — identity index mapping.
    * FullyConnected — every input (dense rows; the paper's reason
      input partitioning only helps convolutions).
    """
    outputs = set(int(i) for i in output_indices)
    if isinstance(layer, FullyConnected):
        if not outputs:
            return set()
        return set(range(layer.in_features))
    if isinstance(layer, (BatchNorm, ElementwiseScale, Flatten)):
        return outputs
    if isinstance(layer, Conv2d):
        return _conv_receptive(
            input_shape, layer.output_shape(input_shape), outputs,
            layer.kernel, layer.stride, layer.padding,
            depthwise=False,
        )
    if isinstance(layer, AvgPool2d):
        return _conv_receptive(
            input_shape, layer.output_shape(input_shape), outputs,
            layer.kernel, layer.stride, 0,
            depthwise=True,
        )
    raise PartitioningError(
        f"no receptive-field rule for layer {type(layer).__name__}"
    )


def _conv_receptive(
    input_shape: tuple[int, ...],
    output_shape: tuple[int, ...],
    outputs: Set[int],
    kernel: int,
    stride: int,
    padding: int,
    depthwise: bool,
) -> Set[int]:
    in_c, in_h, in_w = input_shape
    out_c, out_h, out_w = output_shape
    needed: Set[int] = set()
    plane = out_h * out_w
    for flat in outputs:
        oc, rest = divmod(flat, plane)
        i, j = divmod(rest, out_w)
        if not 0 <= oc < out_c:
            raise PartitioningError(
                f"output index {flat} out of range for shape {output_shape}"
            )
        top = i * stride - padding
        left = j * stride - padding
        channels = (oc,) if depthwise else range(in_c)
        for ic in channels:
            for ki in range(kernel):
                y_pos = top + ki
                if not 0 <= y_pos < in_h:
                    continue
                for kj in range(kernel):
                    x_pos = left + kj
                    if 0 <= x_pos < in_w:
                        needed.add((ic * in_h + y_pos) * in_w + x_pos)
    return needed


def chain_required_inputs(
    layers: Sequence[Layer],
    shapes: Sequence[tuple[int, ...]],
    output_indices: Iterable[int],
) -> Set[int]:
    """Propagate required indices backwards through a merged linear
    stage.

    Args:
        layers: the stage's fused layers, in forward order.
        shapes: per-layer *input* shapes (len == len(layers)).
        output_indices: flat outputs of the final layer the thread must
            produce.
    """
    if len(layers) != len(shapes):
        raise PartitioningError("layers and shapes length mismatch")
    needed = set(int(i) for i in output_indices)
    for layer, shape in zip(reversed(layers), reversed(list(shapes))):
        needed = required_inputs(layer, shape, needed)
    return needed


def partitioned_input_elements(
    layers: Sequence[Layer],
    shapes: Sequence[tuple[int, ...]],
    output_size: int,
    threads: int,
) -> list[int]:
    """Per-thread input element counts for a partitioned linear stage.

    Output elements are split into contiguous near-equal blocks (as
    :func:`repro.partitioning.partition_affine` does) and each block's
    required inputs are chained backwards.
    """
    if threads < 1:
        raise PartitioningError("threads must be >= 1")
    threads = min(threads, output_size)
    base, extra = divmod(output_size, threads)
    counts = []
    start = 0
    for index in range(threads):
        size = base + (1 if index < extra else 0)
        block = range(start, start + size)
        counts.append(
            len(chain_required_inputs(layers, shapes, block))
        )
        start += size
    return counts
