"""Partitioning of affine stages and element-wise stages over threads.

The unit of work is a :class:`ThreadTask`: which output elements a
thread produces and which input elements it must receive.  For linear
stages the work is a slice of the stage's scaled affine map (rows of W);
with input partitioning enabled, each task's input set shrinks to the
union of the non-zero columns of its rows — exactly the receptive
fields in the paper's Figure 5 convolution example.  Fully-connected
rows are dense, so their tasks always need the whole input (the paper's
"input tensor partitioning can only be applied for convolution
operations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import PartitioningError
from ..scaling.fixed_point import ScaledAffine


@dataclass(frozen=True)
class ThreadTask:
    """One thread's share of a partitioned stage.

    Attributes:
        thread_index: 0-based thread id within the stage.
        output_indices: flat output element indices this thread
            produces (contiguous, row-major).
        input_indices: flat input element indices this thread needs.
        weight: int64 submatrix (len(output_indices), len(input_indices))
            — columns already restricted to ``input_indices``.
        raw_bias: float bias entries of the task's rows (scaled by the
            caller at a chosen input exponent, like
            :meth:`ScaledAffine.bias_at`).
        decimals: weight exponent of the submatrix.
    """

    thread_index: int
    output_indices: tuple[int, ...]
    input_indices: tuple[int, ...]
    weight: np.ndarray | None
    raw_bias: np.ndarray | None
    decimals: int

    @property
    def input_elements(self) -> int:
        return len(self.input_indices)

    @property
    def output_elements(self) -> int:
        return len(self.output_indices)

    def bias_at(self, input_exponent: int) -> np.ndarray:
        """Bias integers at ``input_exponent + decimals`` (linear tasks)."""
        if self.raw_bias is None:
            raise PartitioningError("element-wise tasks carry no bias")
        from ..scaling.fixed_point import scale_to_int

        return scale_to_int(self.raw_bias, input_exponent + self.decimals)


def _split_evenly(count: int, parts: int) -> List[range]:
    """Split range(count) into ``parts`` contiguous near-equal ranges."""
    if parts < 1:
        raise PartitioningError("parts must be >= 1")
    if count < 1:
        raise PartitioningError("cannot split an empty range")
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    ranges = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def partition_affine(
    affine: ScaledAffine,
    threads: int,
    input_partitioning: bool,
) -> List[ThreadTask]:
    """Partition a scaled affine map across ``threads``.

    Output partitioning always applies: thread t gets a contiguous
    block of output rows.  With ``input_partitioning``, each task's
    columns are restricted to the rows' non-zero support (a no-op for
    dense FC rows, a big win for conv rows).

    Returns fewer than ``threads`` tasks when the output has fewer
    elements than threads.
    """
    out_dim = affine.out_dim
    tasks: List[ThreadTask] = []
    for thread_index, rows in enumerate(_split_evenly(out_dim, threads)):
        row_block = affine.weight[rows.start:rows.stop]
        if input_partitioning:
            support = np.flatnonzero(np.any(row_block != 0, axis=0))
            if support.size == 0:
                # all-zero rows still produce the (scaled) bias
                support = np.array([0], dtype=np.int64)
            columns = tuple(int(i) for i in support)
            weight = row_block[:, support]
        else:
            columns = tuple(range(affine.in_dim))
            weight = row_block
        tasks.append(
            ThreadTask(
                thread_index=thread_index,
                output_indices=tuple(rows),
                input_indices=columns,
                weight=weight,
                raw_bias=affine.raw_bias[rows.start:rows.stop],
                decimals=affine.decimals,
            )
        )
    return tasks


def partition_elementwise(size: int, threads: int) -> List[ThreadTask]:
    """Partition an element-wise (non-linear) stage of ``size`` elements.

    Element-wise stages read exactly the elements they write, so the
    input and output index sets coincide.
    """
    tasks: List[ThreadTask] = []
    for thread_index, block in enumerate(_split_evenly(size, threads)):
        indices = tuple(block)
        tasks.append(
            ThreadTask(
                thread_index=thread_index,
                output_indices=indices,
                input_indices=indices,
                weight=None,
                raw_bias=None,
                decimals=0,
            )
        )
    return tasks


def stage_communication(tasks: Sequence[ThreadTask]) -> int:
    """Total input elements shipped to the stage's threads.

    Without input partitioning every thread receives the whole tensor,
    so this is ``threads * input_size``; with it, the sum of receptive
    fields — the communication reduction Exp#4 measures.
    """
    return sum(task.input_elements for task in tasks)
