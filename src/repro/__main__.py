"""Top-level CLI: ``python -m repro <command>``.

Commands:

* ``demo [--model KEY] [--samples N]`` — train a Table III model and
  run collaborative encrypted inference on held-out samples, printing
  predictions, agreement with plaintext, and transcript statistics.
* ``stream [--faults SPEC] [--retries N] [--deadline S] ...`` — run
  the threaded stream runtime over a request stream, optionally under
  an injected fault plan (docs/FAULT_TOLERANCE.md), printing the
  utilization and failure reports.
* ``bench [--key-sizes LIST] [--workers N] [--out PATH] [--observe]``
  — run the scalar-vs-engine Paillier micro-benchmark
  (docs/PERFORMANCE.md) and write ``BENCH_paillier.json``;
  ``--observe`` embeds a metrics breakdown per key size.  With
  ``--packed [--batch-sizes LIST]`` it instead benchmarks lane-packed
  vs unpacked batched inference and writes ``BENCH_packing.json``.
  With ``--compress [--sparsity F] [--clusters K]`` it benchmarks the
  compression-aware engine paths (dense vs pruned vs clustered vs
  gmpy2 bigint backend) and writes ``BENCH_compress.json``;
  ``--session`` adds dense-vs-compressed end-to-end session rows
  (in-process, threaded stream, and TCP fleet, bit-identity gated).
  With ``--elastic`` it benchmarks the elastic fleet instead
  (docs/ELASTIC.md) — throughput before/during/after a live worker
  join, a telemetry-driven rebalance, a hard worker kill, and a
  drain, bit-identity gated — writing ``BENCH_elastic.json``.
* ``metrics [--workload session|stream] [--format json|prometheus]
  [--traces]`` — run a small workload with observability enabled
  (docs/OBSERVABILITY.md) and dump the metrics registry, optionally
  followed by the reconstructed span trees.
* ``worker --listen HOST:PORT [--join HOST:PORT --role R]`` — run one
  remote stage worker serving framed TCP (docs/DISTRIBUTED.md);
  prints ``worker listening on HOST:PORT`` once bound (port 0 picks a
  free port).  ``--join`` additionally registers the worker with a
  running elastic coordinator's membership listener mid-stream
  (docs/ELASTIC.md), printing ``joined fleet as server ID (epoch
  E)``.
* ``serve --workers N [--verify] [--kill-one]`` — spawn N local worker
  processes, deploy a plan across them, and stream encrypted inference
  over localhost TCP; ``--verify`` checks the results are bit-identical
  to the in-process pipeline, ``--kill-one`` kills a worker mid-stream
  to exercise failover.
* ``serve-http [--listen HOST:PORT] [--mode local|fleet] ...`` — run
  the multi-tenant serving gateway (docs/SERVING.md): an async HTTP
  front door with admission control, per-job state tracking, and
  per-tenant Paillier keypairs over one shared worker fleet; prints
  ``gateway listening on HOST:PORT`` once bound.
* ``loadgen [--tenants N] [--requests R] [--url URL] ...`` — drive N
  concurrent tenants against a gateway (self-hosted unless ``--url``)
  and write ``BENCH_serve.json``: req/s, latency percentiles, exact
  shed/terminal accounting, and cross-tenant decrypt probes.
* ``soak [--duration S] [--seed N] [--scenarios LIST] [--out PATH]``
  — run the heavy-traffic soak harness (docs/SOAK.md): mixed
  single/packed/faulted/chaos/kill/serve/elastic workloads with leak
  sentinels,
  writing ``BENCH_soak.json``; exits non-zero on any leaked
  thread/fd, RSS growth over tolerance, output drift, or unexpected
  dead letter.
* ``summary`` — print the package's subsystem inventory.
* ``experiments ...`` — forwarded to ``repro.experiments`` (all the
  paper's tables and figures).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from .config import RuntimeConfig
    from .experiments.common import prepare_model
    from .protocol import DataProvider, InferenceSession, ModelProvider

    prepared = prepare_model(args.model)
    print(f"model {args.model}: trained to "
          f"{prepared.train_accuracy:.1%} on the synthetic stand-in, "
          f"scaling factor 10^{prepared.decimals}")
    config = RuntimeConfig(key_size=args.key_size)
    session = InferenceSession(
        ModelProvider(prepared.model, decimals=prepared.decimals,
                      config=config),
        DataProvider(value_decimals=prepared.decimals, config=config),
    )
    dataset = prepared.dataset
    agree = 0
    for index in range(args.samples):
        sample = dataset.test_x[index]
        outcome = session.run(sample)
        plain = int(prepared.model.predict(sample[None])[0])
        agree += outcome.prediction == plain
        print(f"  sample {index}: encrypted={outcome.prediction} "
              f"plain={plain} true={dataset.test_y[index]} "
              f"({outcome.wall_time:.2f}s, "
              f"{outcome.transcript.total_elements} ciphertexts)")
    print(f"encrypted/plaintext agreement: {agree}/{args.samples}; "
          "wire carried ciphertexts only: "
          f"{outcome.transcript.all_ciphertext()}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .config import RuntimeConfig
    from .experiments.common import prepare_model
    from .planner.allocation import allocate_even
    from .planner.plan import ClusterSpec
    from .protocol import DataProvider, ModelProvider
    from .stream import FaultPlan, Pipeline, RetryPolicy

    from .errors import StreamError

    try:
        fault_plan = (FaultPlan.parse(args.faults)
                      if args.faults else None)
        retry_policy = RetryPolicy(max_retries=args.retries,
                                   base_delay=args.backoff_base)
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prepared = prepare_model(args.model)
    config = RuntimeConfig(key_size=args.key_size)
    model_provider = ModelProvider(
        prepared.model, decimals=prepared.decimals, config=config
    )
    data_provider = DataProvider(
        value_decimals=prepared.decimals, config=config
    )
    cluster = ClusterSpec.homogeneous(1, 1, args.threads)
    plan = allocate_even(model_provider.stages, cluster).plan
    pipeline = Pipeline(
        model_provider, data_provider, plan,
        channel_capacity=args.channel_capacity,
        retry_policy=retry_policy,
        request_deadline=args.deadline,
        fault_plan=fault_plan,
        restart_budget=args.restart_budget,
    )
    if fault_plan:
        print(f"injected faults: {fault_plan.describe()}")
    inputs = list(prepared.dataset.test_x[:args.samples])
    try:
        stats = pipeline.run_stream(inputs)
    except StreamError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    print(stats.utilization_report())
    if not stats.dead_letters:
        print(stats.failure_report())
    return 1 if stats.dead_letters else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import render_bench, run_paillier_bench, write_bench_json

    try:
        key_sizes = tuple(
            int(part) for part in args.key_sizes.split(",") if part
        )
    except ValueError:
        print(f"error: bad --key-sizes {args.key_sizes!r}",
              file=sys.stderr)
        return 2
    if args.elastic:
        from .bench import render_elastic_bench, run_elastic_bench

        out = args.out
        if out == "BENCH_paillier.json":
            out = "BENCH_elastic.json"
        results = run_elastic_bench(
            key_size=min(key_sizes),
            seed=args.seed,
            samples=args.elastic_samples,
            progress=print,
        )
        write_bench_json(results, out)
        print(render_elastic_bench(results))
        print(f"wrote {out}")
        return 0 if results["ok"] else 1
    if args.compress:
        from .bench import render_compress_bench, run_compress_bench

        out = args.out
        if out == "BENCH_paillier.json":
            out = "BENCH_compress.json"
        results = run_compress_bench(
            key_sizes=key_sizes,
            seed=args.seed,
            repeats=args.repeats,
            sparsity=args.sparsity,
            clusters=args.clusters,
            workers=args.workers,
            model_key=None if args.no_accuracy
            else args.compress_model,
        )
        if args.session:
            from .bench import (
                render_compress_session_bench,
                run_compress_session_bench,
            )

            # --no-accuracy keeps the session leg CI-sized too: the
            # untrained tiny model has no evaluation data, so the
            # accuracy gate is moot and nothing trains.
            results["session"] = run_compress_session_bench(
                key_sizes=key_sizes,
                seed=args.seed,
                repeats=args.repeats,
                sparsity=args.sparsity,
                clusters=args.clusters,
                model_key="tiny" if args.no_accuracy
                else args.session_model,
            )
            print(render_compress_session_bench(results["session"]))
        write_bench_json(results, out)
        print(render_compress_bench(results))
        print(f"wrote {out}")
        return 0
    if args.packed:
        from .bench import render_packing_bench, run_packing_bench

        try:
            batch_sizes = tuple(
                int(part) for part in args.batch_sizes.split(",") if part
            )
        except ValueError:
            print(f"error: bad --batch-sizes {args.batch_sizes!r}",
                  file=sys.stderr)
            return 2
        out = args.out
        if out == "BENCH_paillier.json":
            out = "BENCH_packing.json"
        fc_dim = args.fc_dim if args.fc_dim is not None else 32
        results = run_packing_bench(
            key_sizes=key_sizes,
            batch_sizes=batch_sizes,
            fc_shape=(fc_dim, fc_dim),
            seed=args.seed,
            repeats=args.repeats,
            workers=args.workers,
        )
        write_bench_json(results, out)
        print(render_packing_bench(results))
        print(f"wrote {out}")
        return 0
    fc_dim = args.fc_dim if args.fc_dim is not None else 64
    results = run_paillier_bench(
        key_sizes=key_sizes,
        workers=args.workers,
        elements=args.elements,
        fc_shape=(fc_dim, fc_dim),
        seed=args.seed,
        repeats=args.repeats,
        observe=args.observe,
    )
    write_bench_json(results, args.out)
    print(render_bench(results))
    print(f"wrote {args.out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .config import RuntimeConfig
    from .errors import StreamError
    from .experiments.common import prepare_model
    from .observability import Observability
    from .protocol import DataProvider, InferenceSession, ModelProvider

    prepared = prepare_model(args.model)
    config = RuntimeConfig(
        key_size=args.key_size
    ).with_observability()
    # One shared Observability: both parties, the session/pipeline,
    # and every engine report into the same registry and tracer.
    obs = Observability(enabled=True)
    model_provider = ModelProvider(
        prepared.model, decimals=prepared.decimals, config=config,
        obs=obs,
    )
    data_provider = DataProvider(
        value_decimals=prepared.decimals, config=config, obs=obs
    )
    inputs = list(prepared.dataset.test_x[:args.samples])
    if args.workload == "stream":
        from .planner.allocation import allocate_even
        from .planner.plan import ClusterSpec
        from .stream import FaultPlan, Pipeline, RetryPolicy

        try:
            fault_plan = (FaultPlan.parse(args.faults)
                          if args.faults else None)
        except StreamError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cluster = ClusterSpec.homogeneous(1, 1, args.threads)
        plan = allocate_even(model_provider.stages, cluster).plan
        pipeline = Pipeline(
            model_provider, data_provider, plan,
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.01),
            fault_plan=fault_plan,
            obs=obs,
        )
        try:
            pipeline.run_stream(inputs)
        except StreamError as exc:
            print(f"workload failed; metrics below are partial: {exc}",
                  file=sys.stderr)
    else:
        session = InferenceSession(model_provider, data_provider,
                                   obs=obs)
        for sample in inputs:
            session.run(sample)
    if args.format == "prometheus":
        output = obs.registry.to_prometheus()
    else:
        output = json.dumps(obs.registry.snapshot(), indent=2,
                            sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(output)
    if args.traces:
        for trace_id in obs.tracer.trace_ids():
            print(obs.tracer.render(trace_id))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .errors import ClusterMembershipError, TransportError
    from .net import WorkerServer

    try:
        host, _, port_text = args.listen.rpartition(":")
        server = WorkerServer(
            host or "127.0.0.1", int(port_text),
            max_frame_bytes=args.max_frame_bytes,
        )
    except (ValueError, OSError) as exc:
        print(f"error: cannot listen on {args.listen!r}: {exc}",
              file=sys.stderr)
        return 2
    host, port = server.address
    # The exact line the serve command (and any orchestrator) parses
    # to learn an ephemeral port.
    print(f"worker listening on {host}:{port}", flush=True)
    if args.join:
        # Register with a running elastic coordinator's membership
        # listener (docs/ELASTIC.md).  The accept loop must already be
        # serving — the coordinator dials back — so start it in the
        # background and idle on the main thread.
        import time

        try:
            join_host, _, join_port = args.join.rpartition(":")
            server.start()
            reply = server.join_fleet(
                join_host or "127.0.0.1", int(join_port),
                args.role, cores=args.cores,
            )
        except (ValueError, ClusterMembershipError,
                TransportError) as exc:
            print(f"error: cannot join fleet at {args.join!r}: {exc}",
                  file=sys.stderr)
            server.stop()
            return 1
        print(f"joined fleet as server {reply['server_id']} "
              f"(epoch {reply['epoch']})", flush=True)
        try:
            while server.running:
                time.sleep(0.5)
        except KeyboardInterrupt:
            server.stop()
        return 0
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    except TransportError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    return 0


def _spawn_local_worker(env: dict) -> tuple:
    """Start ``python -m repro worker`` on an ephemeral port; returns
    ``(process, (host, port))`` once the worker reports its address."""
    import subprocess

    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    line = process.stdout.readline()
    prefix = "worker listening on "
    if not line.startswith(prefix):
        process.kill()
        raise RuntimeError(
            f"worker failed to start (said {line!r})"
        )
    host, _, port_text = line[len(prefix):].strip().rpartition(":")
    return process, (host, int(port_text))


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .config import RuntimeConfig
    from .errors import StreamError, TransportError
    from .experiments.common import prepare_model
    from .net import Coordinator
    from .planner.allocation import allocate_even
    from .planner.plan import ClusterSpec
    from .protocol import DataProvider, ModelProvider
    from .stream import RetryPolicy

    if args.workers < 2:
        print("error: --workers must be >= 2 (at least one model "
              "worker and one data worker)", file=sys.stderr)
        return 2
    prepared = prepare_model(args.model)
    config = RuntimeConfig(key_size=args.key_size)
    model_provider = ModelProvider(
        prepared.model, decimals=prepared.decimals, config=config
    )
    data_provider = DataProvider(
        value_decimals=prepared.decimals, config=config
    )
    model_workers = max(1, args.workers // 2)
    data_workers = args.workers - model_workers
    cluster = ClusterSpec.homogeneous(model_workers, data_workers,
                                      args.threads)
    plan = allocate_even(model_provider.stages, cluster).plan
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
            env.get("PYTHONPATH")) if path
    )
    processes, addresses = [], []
    try:
        for _ in range(args.workers):
            process, address = _spawn_local_worker(env)
            processes.append(process)
            addresses.append(address)
        print(f"spawned {args.workers} workers "
              f"({model_workers} model / {data_workers} data) on "
              + ", ".join(f"{h}:{p}" for h, p in addresses))
        inputs = list(prepared.dataset.test_x[:args.samples])
        coordinator = Coordinator(
            model_provider, data_provider, plan, addresses,
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.05),
        )
        with coordinator:
            if args.kill_one:
                import threading

                victim = processes[-1]

                def _assassin():
                    import time

                    time.sleep(args.kill_delay)
                    victim.kill()

                threading.Thread(target=_assassin, daemon=True,
                                 name="repro-serve-assassin").start()
                print(f"will kill worker pid {victim.pid} after "
                      f"{args.kill_delay}s")
            try:
                stats = coordinator.run_stream(inputs)
            except StreamError as exc:
                print(f"fatal: {exc}", file=sys.stderr)
                return 1
            coordinator.close(shutdown_workers=True)
        print(stats.utilization_report())
        if stats.dead_letters:
            print(stats.failure_report())
        print(f"{len(stats.results)}/{len(inputs)} requests completed "
              f"over TCP in {stats.wall_time:.2f}s")
        if args.verify:
            from .stream import Pipeline

            reference = Pipeline(
                ModelProvider(prepared.model,
                              decimals=prepared.decimals,
                              config=config),
                DataProvider(value_decimals=prepared.decimals,
                             config=config),
                plan,
            ).run_stream(inputs)
            expected = {r.request_id: r.probabilities
                        for r in reference.results}
            mismatches = [
                r.request_id for r in stats.results
                if not np.array_equal(r.probabilities,
                                      expected[r.request_id])
            ]
            if mismatches:
                print(f"verify: MISMATCH on requests {mismatches}",
                      file=sys.stderr)
                return 1
            print(f"verify: all {len(stats.results)} distributed "
                  "results bit-identical to the in-process pipeline")
        if stats.dead_letters and not args.kill_one:
            return 1
        return 0
    except (TransportError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5)
            except Exception:
                process.kill()


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import time

    from .config import RuntimeConfig
    from .errors import ReproError
    from .serve import ServeGateway, build_serve_model

    try:
        host, _, port_text = args.listen.rpartition(":")
        host = host or "127.0.0.1"
        port = int(port_text)
        model, decimals, _shape = build_serve_model(args.model)
        config = RuntimeConfig(
            key_size=args.key_size, seed=args.seed,
        ).with_serve(
            queue_capacity=args.queue_capacity,
            workers=args.job_workers,
            tenant_quota=args.tenant_quota,
            default_deadline=args.deadline,
            tenant_rps=args.tenant_rps,
        )
        if args.compress:
            config = config.with_compress(enabled=True)
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fleet = []
    gateway = None
    # One registry for the whole process, shared by the gateway and
    # any in-process fleet workers, so /metrics carries worker-side
    # series (per-tenant power-cache gauges, session rebuilds) too.
    from .observability import NULL_TRACER, Observability

    obs = Observability(enabled=True, tracer=NULL_TRACER)
    try:
        addresses = None
        if args.mode == "fleet":
            from .net import WorkerServer

            for _ in range(args.fleet_workers):
                fleet.append(WorkerServer(obs=obs))
            addresses = [server.start() for server in fleet]
            print(f"fleet: {len(fleet)} shared TCP workers on "
                  + ", ".join(f"{h}:{p}" for h, p in addresses))
        gateway = ServeGateway(
            model, decimals, config, mode=args.mode,
            worker_addresses=addresses, host=host, port=port,
            obs=obs,
        )
        bound_host, bound_port = gateway.start()
        # The exact line loadgen (and any orchestrator) parses to
        # learn an ephemeral port.
        print(f"gateway listening on {bound_host}:{bound_port}",
              flush=True)
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if gateway is not None:
            gateway.close()
        for server in fleet:
            server.stop()


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .serve import LoadgenOptions, run_loadgen
    from .serve.loadgen import render_report

    try:
        options = LoadgenOptions(
            tenants=args.tenants,
            requests=args.requests,
            mode=args.mode,
            fleet_workers=args.fleet_workers,
            key_size=args.key_size,
            seed=args.seed,
            deadline=args.deadline,
            queue_capacity=args.queue_capacity,
            serve_workers=args.job_workers,
            tenant_quota=args.tenant_quota,
            url=args.url,
            out=args.out,
            model=args.model,
            submit_retries=args.submit_retries,
            retry_after_cap=args.retry_after_cap,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_loadgen(options, progress=print)
    except ReproError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    print(render_report(report))
    if options.out:
        print(f"wrote {options.out}")
    violations = report.get("cross_tenant_decrypts") or 0
    return 0 if report["accounting_ok"] and violations == 0 else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .soak import SCENARIO_NAMES, SoakOptions, run_soak

    try:
        scenarios = (tuple(
            part for part in args.scenarios.split(",") if part
        ) if args.scenarios else SCENARIO_NAMES)
        options = SoakOptions(
            duration=args.duration,
            seed=args.seed,
            out=args.out,
            scenarios=scenarios,
            rss_tolerance_mb=args.rss_tolerance_mb,
            key_size=args.key_size,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_soak(options, progress=print)
    print(report.render())
    if options.out:
        print(f"wrote {options.out}")
    return 0 if report.ok else 1


def _cmd_summary(_: argparse.Namespace) -> int:
    from . import __doc__ as package_doc

    print(package_doc)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        from .experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run collaborative encrypted inference"
    )
    demo.add_argument("--model", default="breast",
                      help="Table III model key (default: breast)")
    demo.add_argument("--samples", type=int, default=5)
    demo.add_argument("--key-size", type=int, default=256,
                      dest="key_size")
    demo.set_defaults(func=_cmd_demo)

    stream = subparsers.add_parser(
        "stream",
        help="run the threaded stream runtime, optionally under an "
             "injected fault plan",
    )
    stream.add_argument("--model", default="breast",
                        help="Table III model key (default: breast)")
    stream.add_argument("--samples", type=int, default=4)
    stream.add_argument("--key-size", type=int, default=256,
                        dest="key_size")
    stream.add_argument("--threads", type=int, default=2,
                        help="threads per stage server")
    stream.add_argument("--channel-capacity", type=int, default=8,
                        dest="channel_capacity")
    stream.add_argument(
        "--faults", default=None,
        help="fault plan, e.g. "
             "'transient:stage=0:request=1:count=2;"
             "permanent:stage=2:request=3' "
             "(kinds: transient, permanent, slow, stall, crash)",
    )
    stream.add_argument("--retries", type=int, default=3,
                        help="max retries per request per stage")
    stream.add_argument("--backoff-base", type=float, default=0.01,
                        dest="backoff_base",
                        help="first-retry backoff in seconds")
    stream.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in seconds")
    stream.add_argument("--restart-budget", type=int, default=2,
                        dest="restart_budget",
                        help="crashed-worker restarts per stage")
    stream.set_defaults(func=_cmd_stream)

    bench = subparsers.add_parser(
        "bench",
        help="scalar-vs-engine Paillier micro-benchmark "
             "(writes BENCH_paillier.json)",
    )
    bench.add_argument("--key-sizes", default="512,1024",
                       dest="key_sizes",
                       help="comma-separated key sizes in bits "
                            "(default: 512,1024)")
    bench.add_argument("--workers", type=int, default=4,
                       help="engine process-pool size (default: 4)")
    bench.add_argument("--elements", type=int, default=48,
                       help="batch size for encrypt/decrypt/add/mul")
    bench.add_argument("--fc-dim", type=int, default=None, dest="fc_dim",
                       help="FC matvec dimension (square; default 64, "
                            "or 32 with --packed)")
    bench.add_argument("--repeats", type=int, default=1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_paillier.json",
                       help="output JSON path "
                            "(default: BENCH_paillier.json)")
    bench.add_argument("--observe", action="store_true",
                       help="run the engine with observability on and "
                            "embed a metrics breakdown per key size")
    bench.add_argument("--packed", action="store_true",
                       help="run the lane-packing benchmark instead "
                            "(writes BENCH_packing.json unless --out "
                            "is given)")
    bench.add_argument("--batch-sizes", default="4,8,16",
                       dest="batch_sizes",
                       help="comma-separated batch sizes for --packed "
                            "(default: 4,8,16)")
    bench.add_argument("--compress", action="store_true",
                       help="run the compression benchmark instead: "
                            "dense vs pruned vs clustered vs gmpy2 "
                            "engine paths (writes BENCH_compress.json "
                            "unless --out is given)")
    bench.add_argument("--sparsity", type=float, default=0.7,
                       help="per-layer target sparsity for --compress "
                            "(default: 0.7)")
    bench.add_argument("--clusters", type=int, default=8,
                       help="shared weight values per layer for "
                            "--compress (default: 8)")
    bench.add_argument("--compress-model", default="breast",
                       dest="compress_model",
                       help="model-zoo key for the --compress accuracy "
                            "delta (default: breast)")
    bench.add_argument("--session", action="store_true",
                       help="with --compress: also benchmark dense vs "
                            "compressed end-to-end sessions across "
                            "the in-process, threaded-stream, and TCP "
                            "runtimes (bit-identity gated)")
    bench.add_argument("--session-model", default="mnist-1",
                       dest="session_model",
                       help="model-zoo key for the --session leg "
                            "(default: mnist-1, whose wide linear "
                            "layers dominate end-to-end cost)")
    bench.add_argument("--elastic", action="store_true",
                       help="run the elastic-fleet benchmark instead: "
                            "throughput before/during/after a live "
                            "join, rebalance, kill and drain (writes "
                            "BENCH_elastic.json unless --out is "
                            "given; uses the smallest --key-sizes "
                            "entry)")
    bench.add_argument("--elastic-samples", type=int, default=6,
                       dest="elastic_samples",
                       help="requests per streaming phase for "
                            "--elastic (default: 6)")
    bench.add_argument("--no-accuracy", action="store_true",
                       dest="no_accuracy",
                       help="skip the model-zoo accuracy measurement "
                            "in --compress")
    bench.set_defaults(func=_cmd_bench)

    metrics = subparsers.add_parser(
        "metrics",
        help="run a workload with observability enabled and dump "
             "the metrics registry (and optionally the span trees)",
    )
    metrics.add_argument("--model", default="breast",
                         help="Table III model key (default: breast)")
    metrics.add_argument("--samples", type=int, default=3)
    metrics.add_argument("--key-size", type=int, default=256,
                         dest="key_size")
    metrics.add_argument("--workload", choices=("session", "stream"),
                         default="session",
                         help="sequential protocol session or the "
                              "threaded stream runtime")
    metrics.add_argument("--threads", type=int, default=2,
                         help="threads per stage server (stream)")
    metrics.add_argument("--faults", default=None,
                         help="fault plan for the stream workload "
                              "(same syntax as 'stream --faults')")
    metrics.add_argument("--format", choices=("json", "prometheus"),
                         default="json")
    metrics.add_argument("--out", default=None,
                         help="write the dump here instead of stdout")
    metrics.add_argument("--traces", action="store_true",
                         help="also print every reconstructed span "
                              "tree")
    metrics.set_defaults(func=_cmd_metrics)

    worker = subparsers.add_parser(
        "worker",
        help="run one remote stage worker serving framed TCP "
             "(docs/DISTRIBUTED.md)",
    )
    worker.add_argument("--listen", default="127.0.0.1:0",
                        help="HOST:PORT to bind (port 0 picks a free "
                             "port; default 127.0.0.1:0)")
    worker.add_argument("--max-frame-bytes", type=int,
                        default=64 * 1024 * 1024,
                        dest="max_frame_bytes",
                        help="transport frame ceiling in bytes")
    worker.add_argument("--join", default=None,
                        help="HOST:PORT of a running elastic "
                             "coordinator's membership listener to "
                             "register with (docs/ELASTIC.md)")
    worker.add_argument("--role", choices=("model", "data"),
                        default="model",
                        help="cluster role to join as (default: "
                             "model)")
    worker.add_argument("--cores", type=int, default=2,
                        help="advertised core count for the planner "
                             "(default: 2)")
    worker.set_defaults(func=_cmd_worker)

    serve = subparsers.add_parser(
        "serve",
        help="spawn N local workers and stream encrypted inference "
             "over localhost TCP",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="total worker processes, split between "
                            "model and data roles (default: 2)")
    serve.add_argument("--model", default="breast",
                       help="Table III model key (default: breast)")
    serve.add_argument("--samples", type=int, default=4)
    serve.add_argument("--key-size", type=int, default=256,
                       dest="key_size")
    serve.add_argument("--threads", type=int, default=2,
                       help="cores per worker in the cluster spec")
    serve.add_argument("--verify", action="store_true",
                       help="re-run in-process and require "
                            "bit-identical results")
    serve.add_argument("--kill-one", action="store_true",
                       dest="kill_one",
                       help="kill one worker mid-stream to exercise "
                            "heartbeat failover")
    serve.add_argument("--kill-delay", type=float, default=1.0,
                       dest="kill_delay",
                       help="seconds before --kill-one strikes")
    serve.set_defaults(func=_cmd_serve)

    serve_http = subparsers.add_parser(
        "serve-http",
        help="run the multi-tenant serving gateway: async HTTP front "
             "door, admission control, per-tenant keypairs "
             "(docs/SERVING.md)",
    )
    serve_http.add_argument("--listen", default="127.0.0.1:0",
                            help="HOST:PORT to bind (port 0 picks a "
                                 "free port; default 127.0.0.1:0)")
    serve_http.add_argument("--mode", choices=("local", "fleet"),
                            default="local",
                            help="run stages in-process (local) or on "
                                 "a shared TCP worker fleet")
    serve_http.add_argument("--fleet-workers", type=int, default=2,
                            dest="fleet_workers",
                            help="shared TCP workers in fleet mode "
                                 "(default: 2)")
    serve_http.add_argument("--model", default="tiny",
                            help="'tiny' (untrained conv, fast) or a "
                                 "Table III model key")
    serve_http.add_argument("--key-size", type=int, default=128,
                            dest="key_size")
    serve_http.add_argument("--seed", type=int, default=11,
                            help="master seed; per-tenant keypairs "
                                 "derive from it and the tenant name")
    serve_http.add_argument("--queue-capacity", type=int, default=32,
                            dest="queue_capacity",
                            help="bounded request queue depth before "
                                 "shedding (default: 32)")
    serve_http.add_argument("--job-workers", type=int, default=4,
                            dest="job_workers",
                            help="job-worker threads draining the "
                                 "queue (default: 4)")
    serve_http.add_argument("--tenant-quota", type=int, default=8,
                            dest="tenant_quota",
                            help="per-tenant in-flight job ceiling "
                                 "(default: 8)")
    serve_http.add_argument("--deadline", type=float, default=30.0,
                            help="default end-to-end job deadline in "
                                 "seconds (0 disables; default: 30)")
    serve_http.add_argument("--tenant-rps", type=int, default=0,
                            dest="tenant_rps",
                            help="per-tenant requests-per-second "
                                 "ceiling; over-limit submits get "
                                 "429 + Retry-After (0 disables; "
                                 "default: 0)")
    serve_http.add_argument("--compress", action="store_true",
                            help="serve the pruned+clustered model "
                                 "(compress_* config defaults) "
                                 "instead of the dense one")
    serve_http.set_defaults(func=_cmd_serve_http)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive N concurrent tenants against a serving gateway "
             "and write BENCH_serve.json (docs/SERVING.md)",
    )
    loadgen.add_argument("--tenants", type=int, default=4,
                         help="concurrent tenants (default: 4)")
    loadgen.add_argument("--requests", type=int, default=6,
                         help="requests per tenant, submitted as a "
                              "burst (default: 6 — deliberately over "
                              "the default tenant quota)")
    loadgen.add_argument("--mode", choices=("local", "fleet"),
                         default="fleet",
                         help="self-hosted gateway flavour (default: "
                              "fleet — a shared 2-worker TCP fleet)")
    loadgen.add_argument("--fleet-workers", type=int, default=2,
                         dest="fleet_workers")
    loadgen.add_argument("--url", default=None,
                         help="drive an external gateway at this base "
                              "URL instead of self-hosting (skips the "
                              "key isolation probes)")
    loadgen.add_argument("--model", default="tiny")
    loadgen.add_argument("--key-size", type=int, default=128,
                         dest="key_size")
    loadgen.add_argument("--seed", type=int, default=11)
    loadgen.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    loadgen.add_argument("--queue-capacity", type=int, default=8,
                         dest="queue_capacity")
    loadgen.add_argument("--job-workers", type=int, default=2,
                         dest="job_workers")
    loadgen.add_argument("--tenant-quota", type=int, default=4,
                         dest="tenant_quota")
    loadgen.add_argument("--out", default="BENCH_serve.json",
                         help="report path (default: "
                              "BENCH_serve.json)")
    loadgen.add_argument("--submit-retries", type=int, default=2,
                         dest="submit_retries",
                         help="extra submit attempts after a 429/503 "
                              "carrying Retry-After (default: 2)")
    loadgen.add_argument("--retry-after-cap", type=float, default=2.0,
                         dest="retry_after_cap",
                         help="per-sleep bound in seconds on an "
                              "honored Retry-After (default: 2.0)")
    loadgen.set_defaults(func=_cmd_loadgen)

    soak = subparsers.add_parser(
        "soak",
        help="run the heavy-traffic soak harness with leak sentinels "
             "(docs/SOAK.md; writes BENCH_soak.json)",
    )
    soak.add_argument("--duration", type=float, default=20.0,
                      help="steady-state soak duration in seconds "
                           "(default: 20; warm-up and teardown are "
                           "extra)")
    soak.add_argument("--seed", type=int, default=7,
                      help="master seed for the schedule, fault plans "
                           "and chaos scripts (default: 7)")
    soak.add_argument("--scenarios", "--scenario", default=None,
                      help="comma-separated subset of "
                           "single,packed,faulted,chaos,kill,serve,"
                           "elastic (default: all)")
    soak.add_argument("--key-size", type=int, default=128,
                      dest="key_size",
                      help="Paillier key size for the non-packed "
                           "scenarios (default: 128; packed always "
                           "uses 256 for lane headroom)")
    soak.add_argument("--rss-tolerance-mb", type=float, default=64.0,
                      dest="rss_tolerance_mb",
                      help="steady-state RSS growth allowed before "
                           "the soak fails (default: 64)")
    soak.add_argument("--out", default="BENCH_soak.json",
                      help="report path (default: BENCH_soak.json)")
    soak.set_defaults(func=_cmd_soak)

    summary = subparsers.add_parser(
        "summary", help="print the subsystem inventory"
    )
    summary.set_defaults(func=_cmd_summary)

    subparsers.add_parser(
        "experiments",
        help="regenerate the paper's tables/figures "
             "(python -m repro experiments --help)",
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    np.seterr(all="ignore")
    sys.exit(main())
