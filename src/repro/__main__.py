"""Top-level CLI: ``python -m repro <command>``.

Commands:

* ``demo [--model KEY] [--samples N]`` — train a Table III model and
  run collaborative encrypted inference on held-out samples, printing
  predictions, agreement with plaintext, and transcript statistics.
* ``summary`` — print the package's subsystem inventory.
* ``experiments ...`` — forwarded to ``repro.experiments`` (all the
  paper's tables and figures).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from .config import RuntimeConfig
    from .experiments.common import prepare_model
    from .protocol import DataProvider, InferenceSession, ModelProvider

    prepared = prepare_model(args.model)
    print(f"model {args.model}: trained to "
          f"{prepared.train_accuracy:.1%} on the synthetic stand-in, "
          f"scaling factor 10^{prepared.decimals}")
    config = RuntimeConfig(key_size=args.key_size)
    session = InferenceSession(
        ModelProvider(prepared.model, decimals=prepared.decimals,
                      config=config),
        DataProvider(value_decimals=prepared.decimals, config=config),
    )
    dataset = prepared.dataset
    agree = 0
    for index in range(args.samples):
        sample = dataset.test_x[index]
        outcome = session.run(sample)
        plain = int(prepared.model.predict(sample[None])[0])
        agree += outcome.prediction == plain
        print(f"  sample {index}: encrypted={outcome.prediction} "
              f"plain={plain} true={dataset.test_y[index]} "
              f"({outcome.wall_time:.2f}s, "
              f"{outcome.transcript.total_elements} ciphertexts)")
    print(f"encrypted/plaintext agreement: {agree}/{args.samples}; "
          "wire carried ciphertexts only: "
          f"{outcome.transcript.all_ciphertext()}")
    return 0


def _cmd_summary(_: argparse.Namespace) -> int:
    from . import __doc__ as package_doc

    print(package_doc)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        from .experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run collaborative encrypted inference"
    )
    demo.add_argument("--model", default="breast",
                      help="Table III model key (default: breast)")
    demo.add_argument("--samples", type=int, default=5)
    demo.add_argument("--key-size", type=int, default=256,
                      dest="key_size")
    demo.set_defaults(func=_cmd_demo)

    summary = subparsers.add_parser(
        "summary", help="print the subsystem inventory"
    )
    summary.set_defaults(func=_cmd_summary)

    subparsers.add_parser(
        "experiments",
        help="regenerate the paper's tables/figures "
             "(python -m repro experiments --help)",
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    np.seterr(all="ignore")
    sys.exit(main())
