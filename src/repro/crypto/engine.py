"""Batched Paillier engine: the bulk-ciphertext fast path.

Every linear stage of the pipeline bottoms out in modular
exponentiations mod ``n^2``; this module amortizes them four ways
(the tricks Popcorn and C2PI show Paillier-based private inference
lives or dies on):

1. **Offline blinding-factor pool** — encryption is ``(1 + n*m) * r^n
   mod n^2`` and the ``r^n`` part does not depend on the message, so a
   :class:`BlindingPool` precomputes ``r^n mod n^2`` values ahead of
   time (optionally on a background producer thread) and online
   encryption collapses to one modular multiply.  The pool draws its
   ``r`` values from a seeded RNG in a fixed order, so pooled
   encryption is deterministic for tests and bit-identical to the
   scalar reference path under the same seed.
2. **CRT-accelerated blinding** — the key holder knows ``p`` and
   ``q``, so it can compute ``r^n mod p^2`` / ``r^n mod q^2`` with the
   exponent reduced mod ``lambda(p^2) = p(p-1)`` and recombine, which
   is substantially cheaper than one full-width exponentiation
   (quadratic modular multiplication makes the two half-width
   exponentiations ~2x faster in CPython, up to ~4x with exponent
   reduction).  Only sound on the data-provider side: the public-key
   path never sees ``p``/``q``.
3. **Process-pool parallelism** — big-int ``pow`` does *not* release
   the GIL, so threads cannot help; ``encrypt_many`` /
   ``decrypt_many`` / ``matvec`` dispatch chunks of work to a
   ``ProcessPoolExecutor`` when ``workers > 0``.  Chunk sizes are
   serialization-aware: ciphertexts are a few hundred bytes each, so
   chunks are kept large enough that pickling cost stays far below
   the modular-arithmetic cost, and tiny batches run inline.
4. **Per-ciphertext power cache** — in a matvec (FC layer, or conv via
   im2col) the same input ciphertext is raised to many small weight
   exponents across output positions.  A fixed-base windowed table
   (:class:`PowerTable`) precomputes ``c^(d * 2^(w*t))`` once per
   ciphertext; each subsequent exponentiation is then a handful of
   multiplies instead of a full square-and-multiply ladder.  Repeated
   quantized weights are deduplicated per input ciphertext on top:
   conv layers (via im2col) raise each ciphertext to the *same* kernel
   weight at many output positions, so each distinct (ciphertext,
   weight) pair is exponentiated exactly once and reused.
5. **Lane packing** — the packed fast paths
   (:meth:`PaillierEngine.encrypt_many_packed` /
   :meth:`~PaillierEngine.decrypt_many_packed` /
   :meth:`~PaillierEngine.fc_matvec_packed`) carry B batch elements per
   ciphertext as fixed-width lanes
   (:class:`repro.crypto.encoding.LanePacker`), so every modular
   exponentiation — and every pooled blinding factor and CRT
   decryption — is amortized over B values.

All batched paths produce ciphertexts **bit-identical** to the scalar
reference implementation in :mod:`repro.crypto.paillier` given the
same randomness; the scalar API remains the reference the property
tests compare against.
"""

from __future__ import annotations

import os
import random
import threading
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import CryptoError, EncryptionError, KeyMismatchError
from ..observability import OBS_OFF, Observability
from ..observability.metrics import SIZE_BUCKETS
from .backend import BigintBackend, resolve_backend
from .encoding import LanePacker
from .math_utils import invmod, sample_coprime
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from .sparse import SparseMatvecPlan

#: Default number of precomputed blinding factors kept ready.
DEFAULT_POOL_SIZE = 128

#: Default window width (bits) of the fixed-base power tables.
DEFAULT_WINDOW_BITS = 4

#: Default LRU bound on the engine's cross-call fixed-base power cache
#: (the sparse ``fc_matvec`` / ``conv_im2col`` paths key tables by
#: ciphertext; without a bound a long-lived engine would grow one
#: table per ciphertext it ever saw).
DEFAULT_POWER_CACHE_ENTRIES = 512

#: ``add_many`` process-dispatch multiplier: one homomorphic add is a
#: single modular multiply, ~this many times cheaper than the pow-bound
#: work ``dispatch_min_items`` was calibrated for, so the break-even
#: batch is correspondingly larger.
ADD_DISPATCH_FACTOR = 32

#: Historical break-even relaxation for the sparse path's table
#: builds.  Kept for API compatibility; the sparse kernel now counts
#: the actual intra-call uses of each ciphertext base instead of
#: assuming cross-call cache reuse — protocol requests re-randomize
#: every ciphertext, so an assumed-reuse factor systematically
#: overbuilt tables on FC layers (one column per base, never reused)
#: and thrashed the LRU that conv's genuine im2col reuse depends on.
POWER_CACHE_ASSUMED_REUSE = 4

#: Default process-dispatch break-even threshold: below this many items
#: a batch runs inline even when workers > 0, because fork/pickle
#: overhead dwarfs the arithmetic (BENCH_paillier.json showed
#: ``decrypt_many`` *regressing* to 0.98x at 48 ops when dispatched).
#: Tunable via :attr:`repro.config.RuntimeConfig.dispatch_min_items`.
DEFAULT_DISPATCH_MIN_ITEMS = 64


# ----------------------------------------------------------------------
# Process-pool kernels.  Module-level functions over primitive ints so
# they pickle cheaply; each call works on a chunk, not a single item.
# ----------------------------------------------------------------------

def _pow_chunk(args) -> list[int]:
    """Blinding factors ``r^n mod n^2`` for a chunk of ``r`` values."""
    rs, n, n_sq, backend_name = args
    powmod = resolve_backend(backend_name).powmod
    return [powmod(r, n, n_sq) for r in rs]


def _pow_chunk_crt(args) -> list[int]:
    """CRT-accelerated blinding factors for a chunk (key holder only)."""
    rs, p_sq, q_sq, exp_p, exp_q, q_sq_inv, backend_name = args
    powmod = resolve_backend(backend_name).powmod
    out = []
    for r in rs:
        a = powmod(r % p_sq, exp_p, p_sq)
        b = powmod(r % q_sq, exp_q, q_sq)
        h = ((a - b) * q_sq_inv) % p_sq
        out.append(b + q_sq * h)
    return out


def _decrypt_chunk(args) -> list[int]:
    """CRT decryption of a chunk of raw ciphertexts."""
    ciphers, n, p, q, p_sq, q_sq, h_p, h_q, q_inv_p, backend_name = args
    powmod = resolve_backend(backend_name).powmod
    out = []
    for c in ciphers:
        u_p = powmod(c, p - 1, p_sq)
        m_p = (((u_p - 1) // p) * h_p) % p
        u_q = powmod(c, q - 1, q_sq)
        m_q = (((u_q - 1) // q) * h_q) % q
        h = ((m_p - m_q) * q_inv_p) % p
        out.append((m_q + q * h) % n)
    return out


def _matvec_chunk(args) -> list[int]:
    """Per-row partial products over a column slice of a matvec."""
    cells, rows, n_sq, window_bits, backend_name = args
    return _matvec_partial(cells, rows, n_sq, window_bits,
                           backend=resolve_backend(backend_name))


def _sparse_chunk(args) -> list[int]:
    """Per-row partial products over a slice of sparse plan columns."""
    pairs, out_dim, n_sq, window_bits, backend_name = args
    return _sparse_partial(pairs, out_dim, n_sq, window_bits,
                           backend=resolve_backend(backend_name))


def _mulmod_chunk(args) -> list[int]:
    """Pairwise ``a * b mod n^2`` (homomorphic add) over a chunk."""
    pairs, n_sq, backend_name = args
    backend = resolve_backend(backend_name)
    modulus = backend.wrap(n_sq)
    return [int(a * b % modulus) for a, b in pairs]


# ----------------------------------------------------------------------
# Fixed-base windowed exponentiation.
# ----------------------------------------------------------------------

class PowerTable:
    """Fixed-base windowed power cache for one ciphertext.

    Precomputes ``base^(d * 2^(w*t)) mod m`` for every window digit
    ``d`` in ``[1, 2^w)`` and window position ``t``; :meth:`pow` then
    multiplies one table entry per non-zero window of the exponent —
    no squarings on the hot path.  Tables grow lazily if an exponent
    exceeds the bit budget they were built for.
    """

    __slots__ = ("modulus", "window_bits", "_mask", "_tables", "_next_g")

    def __init__(self, base: int, modulus: int, max_bits: int,
                 window_bits: int = DEFAULT_WINDOW_BITS,
                 backend: BigintBackend | None = None):
        if window_bits < 1:
            raise CryptoError(f"window_bits must be >= 1, got {window_bits}")
        if backend is not None:
            # Lifting base and modulus into the backend's native integer
            # type makes every product below run on that type; the
            # Python backend's wrap is the identity, so this is free.
            base = backend.wrap(base)
            modulus = backend.wrap(modulus)
        self.modulus = modulus
        self.window_bits = window_bits
        self._mask = (1 << window_bits) - 1
        self._tables: list[list[int]] = []
        self._next_g = base % modulus
        positions = max(1, -(-max(1, max_bits) // window_bits))
        self._extend(positions)

    def _extend(self, positions: int) -> None:
        m = self.modulus
        w = self.window_bits
        while len(self._tables) < positions:
            g = self._next_g
            row = [1, g]
            entry = g
            for _ in range(2, 1 << w):
                entry = entry * g % m
                row.append(entry)
            self._tables.append(row)
            for _ in range(w):
                g = g * g % m
            self._next_g = g

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` for a non-negative exponent."""
        if exponent < 0:
            raise CryptoError("PowerTable.pow needs a non-negative exponent")
        m = self.modulus
        w = self.window_bits
        mask = self._mask
        needed = -(-max(1, exponent.bit_length()) // w)
        if needed > len(self._tables):
            self._extend(needed)
        acc = 1
        t = 0
        tables = self._tables
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * tables[t][digit] % m
            exponent >>= w
            t += 1
        return int(acc)


def _matvec_partial(
    cells: Sequence[int],
    rows: Sequence[Sequence[int]],
    n_sq: int,
    window_bits: int,
    stats: dict | None = None,
    backend: BigintBackend | None = None,
) -> list[int]:
    """Bias-free matvec: ``prod_i cells[i]^rows[j][i] mod n^2`` per row.

    Walks column by column so each input ciphertext's power table (and
    the inverse-base table for negative weights) is built once and
    reused across every output row that touches it.  Repeated weights
    within a column are deduplicated — an im2col conv matrix raises
    each input ciphertext to the *same* kernel weight at many output
    positions, so each distinct (ciphertext, weight) pair costs one
    exponentiation and every further use is a dictionary hit.  Falls
    back to plain ``pow`` for columns with too few distinct non-zero
    weights to amortize a table.

    ``stats`` (optional, inline path only) accumulates the power-cache
    break-even decisions so the engine can publish them as metrics:
    ``columns_table`` / ``columns_plain`` (which way the break-even
    heuristic went per column), ``tables_built``, ``table_pows`` /
    ``plain_pows`` (per-exponentiation cache use vs fallback), and
    ``dedup_hits`` (uses served from the per-column weight cache).
    """
    if backend is None:
        backend = resolve_backend("python")
    powmod = backend.powmod
    modulus = backend.wrap(n_sq)
    out = [1] * len(rows)
    for i, base in enumerate(cells):
        uses = [(j, row[i]) for j, row in enumerate(rows) if row[i]]
        if not uses:
            continue
        distinct = set(w for _, w in uses)
        max_bits = max(abs(w) for w in distinct).bit_length()
        positions = -(-max_bits // window_bits)
        build_cost = positions * ((1 << window_bits) - 2 + window_bits)
        saving_per_use = max(1, max_bits - positions)
        # Only distinct weights pay an exponentiation (duplicates are
        # cache hits), so the table amortizes over distinct uses.
        use_table = len(distinct) * saving_per_use > build_cost
        pos_table = (PowerTable(base, n_sq, max_bits, window_bits,
                                backend=backend)
                     if use_table else None)
        if stats is not None:
            stats["columns_table" if use_table
                  else "columns_plain"] += 1
            if use_table:
                stats["tables_built"] += 1
        neg_table = None
        inv_base = None
        powers: dict[int, int] = {}
        for j, w in uses:
            v = powers.get(w)
            if v is None:
                if w > 0:
                    v = (pos_table.pow(w) if pos_table
                         else powmod(base, w, n_sq))
                else:
                    if inv_base is None:
                        inv_base = backend.invert(base, n_sq)
                    if use_table and neg_table is None:
                        neg_table = PowerTable(inv_base, n_sq, max_bits,
                                               window_bits,
                                               backend=backend)
                        if stats is not None:
                            stats["tables_built"] += 1
                    v = (neg_table.pow(-w) if neg_table
                         else powmod(inv_base, -w, n_sq))
                powers[w] = v
                if stats is not None:
                    stats["table_pows" if use_table
                          else "plain_pows"] += 1
            elif stats is not None:
                stats["dedup_hits"] += 1
            out[j] = out[j] * v % modulus
    return [int(v) for v in out]


class PowerCache:
    """Bounded LRU of :class:`PowerTable` objects keyed by ciphertext.

    The sparse compressed paths (:meth:`PaillierEngine.fc_matvec` /
    :meth:`~PaillierEngine.conv_im2col`) reuse fixed-base tables
    *across calls*: repeated evaluations over the same input
    ciphertexts (multi-layer reuse, benchmark loops, retries) skip the
    table build entirely.  Ciphertexts are ~key-size integers and a
    table holds ``(2^w - 1) * positions`` of them, so an unbounded
    cache in a long-lived engine would be a slow leak; the LRU bound
    caps it, and the ``paillier_power_cache_entries`` gauge makes the
    occupancy observable.

    Inverse-base tables (negative weights) are stored under the
    *negated* ciphertext key, so a hit skips even the modular
    inversion.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions",
                 "_entries", "_gauge")

    def __init__(self, max_entries: int = DEFAULT_POWER_CACHE_ENTRIES,
                 gauge=None):
        if max_entries < 1:
            raise CryptoError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[int, PowerTable]" = OrderedDict()
        self._gauge = gauge

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: int) -> PowerTable | None:
        """Return the cached table for ``key`` (refreshing its LRU
        position) or ``None``."""
        table = self._entries.get(key)
        if table is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return table

    def put(self, key: int, table: PowerTable) -> None:
        """Insert a table, evicting least-recently-used past the bound."""
        self._entries[key] = table
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        if self._gauge is not None:
            self._gauge.set(len(self._entries))

    def reset(self) -> None:
        """Drop every cached table (e.g. between layers or requests)."""
        self._entries.clear()
        if self._gauge is not None:
            self._gauge.set(0)


def _sparse_partial(
    columns: Sequence[tuple],
    out_dim: int,
    n_sq: int,
    window_bits: int,
    backend: BigintBackend | None = None,
    cache: PowerCache | None = None,
    stats: dict | None = None,
) -> list[int]:
    """Bias-free sparse matvec over pre-indexed plan columns.

    ``columns`` pairs each input ciphertext with its
    :class:`~repro.crypto.sparse.SparseMatvecPlan` column — the
    distinct nonzero weights and the output rows using each.  Zero
    weights were dropped when the plan was built, so this loop touches
    only surviving (ciphertext, weight) pairs: one exponentiation per
    distinct pair, one modular multiply per additional use.

    Negative weights never cost a modular inversion per column: their
    ``base^|w|`` contributions accumulate into a per-row denominator
    and each output row pays at most ONE inversion at the end —
    ``num * den^-1`` is the same group element however the inverse
    factors were interleaved, so the result stays bit-identical while
    an inversion (~an order of magnitude pricier than a small pow)
    moves from per-(column, sign) to per-row.  With a ``cache``,
    positive fixed-base tables persist across calls keyed by the
    ciphertext value; inverse tables no longer exist.

    ``stats`` uses the same keys as :func:`_matvec_partial` plus
    ``reuse_mults`` (multiplies served by the per-cluster dedup).
    """
    if backend is None:
        backend = resolve_backend("python")
    modulus = backend.wrap(n_sq)
    out = [1] * out_dim
    den = [1] * out_dim
    # Exact intra-call amortization: one ciphertext value serves many
    # plan columns in a conv im2col matrix (one per kernel position it
    # lands in) but exactly one column in an FC layer — and bases are
    # fresh per request (re-randomized ciphertexts), so cross-call
    # cache hits cannot be assumed into the break-even.  Count this
    # call's uses per base up front; a windowed table is built only
    # when those uses beat the plain strategy below, which keeps
    # single-use FC columns from flooding the LRU with tables the
    # conv-style genuine reuse depends on.
    base_uses: dict[int, int] = {}
    base_cols: dict[int, int] = {}
    for base, groups in columns:
        base_uses[base] = base_uses.get(base, 0) + len(groups)
        base_cols[base] = base_cols.get(base, 0) + 1
    for base, groups in columns:
        max_bits = max(abs(groups[0][0]),
                       abs(groups[-1][0])).bit_length()
        positions = -(-max_bits // window_bits)
        build_cost = positions * ((1 << window_bits) - 2 + window_bits)
        if cache is not None:
            uses, cols = base_uses[base], base_cols[base]
        else:
            uses, cols = len(groups), 1
        # The plain strategy is a shared squaring chain per column
        # (max_bits squarings, then ~popcount multiplies per weight);
        # build a table only when this call's uses amortize it.
        chain_cost = cols * max_bits + uses * ((max_bits + 1) // 2)
        table_cost = build_cost + uses * positions
        pos_table = cache.peek(base) if cache is not None else None
        if pos_table is None and table_cost < chain_cost:
            pos_table = PowerTable(base, n_sq, max_bits, window_bits,
                                   backend=backend)
            if cache is not None:
                cache.put(base, pos_table)
            if stats is not None:
                stats["tables_built"] += 1
        if stats is not None:
            stats["columns_table" if pos_table is not None
                  else "columns_plain"] += 1
        chain: list | None = None
        for w, rows in groups:
            e = -w if w < 0 else w
            if pos_table is not None:
                v = pos_table.pow(e)
            else:
                if chain is None:
                    g = backend.wrap(base) % modulus
                    chain = [g]
                    for _ in range(max_bits - 1):
                        g = g * g % modulus
                        chain.append(g)
                v = 1
                index = 0
                while e:
                    if e & 1:
                        v = v * chain[index] % modulus
                    index += 1
                    e >>= 1
            if stats is not None:
                stats["table_pows" if pos_table is not None
                      else "plain_pows"] += 1
                stats["reuse_mults"] += len(rows) - 1
            target = den if w < 0 else out
            for j in rows:
                target[j] = target[j] * v % modulus
    invert = backend.invert
    return [int(num) if d == 1
            else int(num * invert(d, n_sq) % modulus)
            for num, d in zip(out, den)]


# ----------------------------------------------------------------------
# Offline blinding-factor pool.
# ----------------------------------------------------------------------

class BlindingPool:
    """FIFO pool of precomputed ``r^n mod n^2`` blinding factors.

    The pool owns a seeded RNG and draws ``r`` values from it in a
    fixed order, so the sequence of factors — and therefore every
    ciphertext built from them — is deterministic per seed regardless
    of refill batching, background production, or CRT acceleration.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        rng: random.Random,
        target_size: int = DEFAULT_POOL_SIZE,
        private_key: PaillierPrivateKey | None = None,
        executor_fn=None,
        obs: Observability | None = None,
        dispatch_min_items: int = DEFAULT_DISPATCH_MIN_ITEMS,
        backend: BigintBackend | None = None,
    ):
        self.public_key = public_key
        self.target_size = max(0, target_size)
        self.dispatch_min_items = max(1, dispatch_min_items)
        self.backend = backend if backend is not None \
            else resolve_backend("python")
        self._rng = rng
        self._factors: deque[int] = deque()
        # Instrumentation handles are resolved once here so the hot
        # draw path is one no-op (or one locked increment) per call.
        obs = obs if obs is not None else OBS_OFF
        registry = obs.registry
        self._registry = registry if obs.enabled else None
        self._m_hits = registry.counter("paillier_pool_draws",
                                        result="hit")
        self._m_misses = registry.counter("paillier_pool_draws",
                                          result="miss")
        self._m_refills = registry.counter("paillier_pool_refills")
        self._m_refill_size = registry.histogram(
            "paillier_pool_refill_factors", buckets=SIZE_BUCKETS
        )
        self._m_size = registry.gauge("paillier_pool_size")
        self._m_crt = registry.counter("paillier_blinding_factors",
                                       method="crt")
        self._m_plain = registry.counter("paillier_blinding_factors",
                                         method="plain")
        # One lock serializes (draw r's, exponentiate, append): two
        # concurrent refills would otherwise interleave RNG draws and
        # appends, breaking the deterministic order.
        self._refill_lock = threading.Lock()
        self._executor_fn = executor_fn
        self._producer: threading.Thread | None = None
        self._stop = threading.Event()
        self._crt: tuple[int, int, int, int, int] | None = None
        if private_key is not None:
            if private_key.public_key.n != public_key.n:
                raise KeyMismatchError(
                    "private key does not match the pool's public key"
                )
            p_sq = private_key.p * private_key.p
            q_sq = private_key.q * private_key.q
            n = public_key.n
            self._crt = (
                p_sq,
                q_sq,
                n % (p_sq - private_key.p),   # n mod lambda(p^2)
                n % (q_sq - private_key.q),   # n mod lambda(q^2)
                invmod(q_sq, p_sq),
            )

    def __len__(self) -> int:
        return len(self._factors)

    def _compute(self, rs: list[int]) -> list[int]:
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        name = self.backend.name
        if self._crt is not None:
            self._m_crt.inc(len(rs))
            p_sq, q_sq, exp_p, exp_q, q_sq_inv = self._crt
            return _pow_chunk_crt(
                (rs, p_sq, q_sq, exp_p, exp_q, q_sq_inv, name)
            )
        self._m_plain.inc(len(rs))
        executor = self._executor_fn() if self._executor_fn else None
        if executor is not None and len(rs) >= self.dispatch_min_items:
            return _run_chunked(executor, _pow_chunk, rs,
                                (n, n_sq, name), registry=self._registry,
                                op="blinding")
        return _pow_chunk((rs, n, n_sq, name))

    def refill(self, count: int | None = None) -> None:
        """Synchronously add ``count`` fresh factors (default: top up
        to the target size, at least one)."""
        with self._refill_lock:
            if count is None:
                count = max(1, self.target_size - len(self._factors))
            if count <= 0:
                return
            self._m_refills.inc()
            self._m_refill_size.observe(count)
            rs = [sample_coprime(self.public_key.n, self._rng)
                  for _ in range(count)]
            self._factors.extend(self._compute(rs))
            self._m_size.set(len(self._factors))

    def draw(self) -> int:
        """Pop the next factor, refilling synchronously when empty."""
        while True:
            try:
                factor = self._factors.popleft()
            except IndexError:
                self._m_misses.inc()
                self.refill(max(1, self.target_size // 2) or 1)
            else:
                self._m_hits.inc()
                return factor

    def draw_many(self, count: int) -> list[int]:
        missing = count - len(self._factors)
        if missing > 0:
            self.refill(max(missing, self.target_size // 2))
        return [self.draw() for _ in range(count)]

    # -- background producer -------------------------------------------

    def start_producer(self, poll_seconds: float = 0.05) -> None:
        """Start a daemon thread that keeps the pool topped up."""
        if self._producer is not None and self._producer.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.is_set():
                if len(self._factors) < self.target_size:
                    self.refill()
                else:
                    self._stop.wait(poll_seconds)

        self._producer = threading.Thread(
            target=run, name="repro-paillier-blinding-pool", daemon=True
        )
        self._producer.start()

    def stop_producer(self) -> None:
        self._stop.set()
        if self._producer is not None:
            self._producer.join(timeout=5.0)
            self._producer = None


# ----------------------------------------------------------------------
# Chunked dispatch helper.
# ----------------------------------------------------------------------

def _run_chunked(executor: ProcessPoolExecutor, fn, items: list,
                 extra: tuple, registry=None, op: str = "") -> list:
    """Map ``fn`` over ``items`` in contiguous chunks, preserving order.

    One chunk per worker (big-int exponentiation is uniform enough
    that finer-grained work stealing is not worth the extra pickling).
    When a metrics ``registry`` is passed, the dispatch is recorded:
    one ``paillier_dispatch_chunks`` increment per chunk and the chunk
    sizes into ``paillier_dispatch_chunk_items`` (both labelled with
    ``op``).
    """
    workers = executor._max_workers
    per = -(-len(items) // workers)
    chunks = [items[i:i + per] for i in range(0, len(items), per)]
    if registry is not None:
        registry.counter("paillier_dispatch_chunks",
                         op=op).inc(len(chunks))
        size_histogram = registry.histogram(
            "paillier_dispatch_chunk_items", buckets=SIZE_BUCKETS,
            op=op,
        )
        for chunk in chunks:
            size_histogram.observe(len(chunk))
    results = executor.map(fn, [(chunk,) + extra for chunk in chunks])
    out: list = []
    for part in results:
        out.extend(part)
    return out


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------

class PaillierEngine:
    """Bulk ciphertext kernels over one Paillier public key.

    Args:
        public_key: the key every batch operates under.
        private_key: optional matching private key.  Enables
            ``decrypt_many`` and CRT-accelerated blinding — only pass
            it on the data-provider (key holder) side.
        workers: process-pool size for chunked dispatch; ``0`` keeps
            everything in-process (the sequential engine).
        pool_size: target size of the offline blinding-factor pool.
        window_bits: window width of the fixed-base power tables.
        seed: seeds the pool RNG so pooled encryption is
            deterministic; ``rng`` overrides it.  With neither, the
            pool uses fresh OS randomness.
        rng: explicit randomness source for the pool.
        dispatch_min_items: process-dispatch break-even threshold —
            batches smaller than this run inline even when workers are
            available (``None`` uses
            :data:`DEFAULT_DISPATCH_MIN_ITEMS`).  ``force_parallel``
            drops it to 1 so tests can exercise the process path with
            tiny batches.
        backend: bigint backend name (``"auto"``/``"python"``/
            ``"gmpy2"``) or a :class:`~repro.crypto.backend
            .BigintBackend` instance.  All backends are bit-identical;
            ``auto`` picks gmpy2 when importable.
        power_cache_entries: LRU bound on the cross-call fixed-base
            power cache used by the compressed matvec paths.
        power_cache_labels: metric labels attached to the
            ``paillier_power_cache_entries`` gauge — fleet workers
            label each session engine's cache (``worker=``,
            ``tenant=``) so per-tenant cache sizes stay separable in
            a shared registry.  Empty labels keep the plain gauge.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        *,
        private_key: PaillierPrivateKey | None = None,
        workers: int = 0,
        pool_size: int = DEFAULT_POOL_SIZE,
        window_bits: int = DEFAULT_WINDOW_BITS,
        seed: int | None = None,
        rng: random.Random | None = None,
        force_parallel: bool = False,
        obs: Observability | None = None,
        dispatch_min_items: int | None = None,
        backend: str | BigintBackend = "auto",
        power_cache_entries: int = DEFAULT_POWER_CACHE_ENTRIES,
        power_cache_labels: dict | None = None,
    ):
        if workers < 0:
            raise CryptoError(f"workers must be >= 0, got {workers}")
        if private_key is not None \
                and private_key.public_key.n != public_key.n:
            raise KeyMismatchError("private key does not match public key")
        if dispatch_min_items is None:
            dispatch_min_items = DEFAULT_DISPATCH_MIN_ITEMS
        if dispatch_min_items < 1:
            raise CryptoError(
                f"dispatch_min_items must be >= 1, got {dispatch_min_items}"
            )
        self.public_key = public_key
        self.private_key = private_key
        self.workers = workers
        self.window_bits = window_bits
        self.dispatch_min_items = (1 if force_parallel
                                   else dispatch_min_items)
        self.backend = resolve_backend(backend)
        self.obs = obs if obs is not None else OBS_OFF
        # Process dispatch on a box with fewer cores than workers just
        # time-slices the same arithmetic plus fork/pickle overhead, so
        # the effective pool is capped at the core count.  Tests use
        # force_parallel to exercise the process path regardless.
        self.effective_workers = (
            workers if force_parallel
            else min(workers, os.cpu_count() or 1)
        )
        self._executor: ProcessPoolExecutor | None = None
        if rng is None:
            rng = random.Random(seed) if seed is not None else random.Random()
        self.pool = BlindingPool(
            public_key, rng, target_size=pool_size,
            private_key=private_key, executor_fn=self._maybe_executor,
            obs=self.obs, dispatch_min_items=self.dispatch_min_items,
            backend=self.backend,
        )
        # Batch-size histograms, resolved once (no-ops when disabled).
        registry = self.obs.registry
        self.power_cache = PowerCache(
            power_cache_entries,
            gauge=registry.gauge("paillier_power_cache_entries",
                                 **(power_cache_labels or {})),
        )
        self._m_encrypt_batch = registry.histogram(
            "paillier_batch_items", buckets=SIZE_BUCKETS, op="encrypt"
        )
        self._m_decrypt_batch = registry.histogram(
            "paillier_batch_items", buckets=SIZE_BUCKETS, op="decrypt"
        )
        self._m_matvec_cells = registry.histogram(
            "paillier_batch_items", buckets=SIZE_BUCKETS, op="matvec"
        )
        self._m_packed_lanes = registry.histogram(
            "paillier_packed_lanes", buckets=SIZE_BUCKETS
        )
        self._m_packed_encrypt = registry.counter(
            "paillier_packed_ops", op="encrypt"
        )
        self._m_packed_decrypt = registry.counter(
            "paillier_packed_ops", op="decrypt"
        )
        self._m_packed_matvec = registry.counter(
            "paillier_packed_ops", op="fc_matvec"
        )
        self._m_zero_skipped = registry.counter(
            "paillier_compress_zero_skipped"
        )
        self._m_compress_ops = {
            op: registry.counter("paillier_compress_ops", op=op)
            for op in ("fc_matvec", "conv_im2col")
        }

    # -- lifecycle ------------------------------------------------------

    def _maybe_executor(self) -> ProcessPoolExecutor | None:
        if self.effective_workers <= 1:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.effective_workers
            )
        return self._executor

    def prefill(self, count: int | None = None) -> None:
        """Precompute blinding factors now (the offline phase)."""
        target = self.pool.target_size if count is None else count
        missing = target - len(self.pool)
        if missing > 0:
            self.pool.refill(missing)

    def start_background_refill(self) -> None:
        self.pool.start_producer()

    def close(self) -> None:
        """Stop the producer thread and shut the process pool down."""
        self.pool.stop_producer()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "PaillierEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- encryption -----------------------------------------------------

    def _blinding_factors(self, count: int,
                          rng: random.Random | None) -> list[int]:
        if rng is None:
            return self.pool.draw_many(count)
        # Caller-supplied RNG: draw the r values in the exact order the
        # scalar path would, then batch the exponentiations — the
        # ciphertexts come out bit-identical to the scalar reference.
        n = self.public_key.n
        rs = [sample_coprime(n, rng) for _ in range(count)]
        return self.pool._compute(rs)

    def raw_encrypt_many(
        self,
        plaintexts: Sequence[int],
        rng: random.Random | None = None,
    ) -> list[int]:
        """Encrypt residues of Z_n to raw ciphertexts, in order.

        With ``rng`` the blinding factors are derived from it exactly
        as the scalar path would (bit-identical outputs); without it
        they are drawn from the offline pool (one modular multiply
        per ciphertext online).
        """
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        plaintexts = list(plaintexts)
        self._m_encrypt_batch.observe(len(plaintexts))
        for m in plaintexts:
            if not 0 <= m < n:
                raise EncryptionError(f"plaintext {m} out of range [0, n)")
        factors = self._blinding_factors(len(plaintexts), rng)
        return [
            (1 + n * m) % n_sq * r_n % n_sq
            for m, r_n in zip(plaintexts, factors)
        ]

    def encrypt_many(
        self,
        plaintexts: Iterable[int],
        rng: random.Random | None = None,
    ) -> List[EncryptedNumber]:
        """Batch :meth:`raw_encrypt_many`, wrapped in EncryptedNumbers."""
        key = self.public_key
        return [EncryptedNumber(key, c)
                for c in self.raw_encrypt_many(list(plaintexts), rng)]

    def encrypt(self, plaintext: int,
                rng: random.Random | None = None) -> EncryptedNumber:
        return self.encrypt_many([plaintext], rng)[0]

    # -- rerandomization ------------------------------------------------

    def rerandomize_many(
        self,
        ciphertexts: Sequence[int],
        rng: random.Random | None = None,
    ) -> list[int]:
        """Refresh randomness: multiply each by a pooled encryption of 0."""
        n_sq = self.public_key.n_squared
        factors = self._blinding_factors(len(ciphertexts), rng)
        return [c * r_n % n_sq for c, r_n in zip(ciphertexts, factors)]

    # -- decryption -----------------------------------------------------

    def raw_decrypt_many(self, ciphertexts: Sequence[int]) -> list[int]:
        """Batch CRT decryption (requires the private key)."""
        priv = self.private_key
        if priv is None:
            raise CryptoError("engine has no private key; cannot decrypt")
        ciphertexts = list(ciphertexts)
        self._m_decrypt_batch.observe(len(ciphertexts))
        executor = self._maybe_executor()
        if executor is not None \
                and len(ciphertexts) >= self.dispatch_min_items:
            extra = (
                self.public_key.n, priv.p, priv.q,
                priv.p * priv.p, priv.q * priv.q,
                priv._h_p, priv._h_q, priv._q_inv_p,
                self.backend.name,
            )
            return _run_chunked(
                executor, _decrypt_chunk, ciphertexts, extra,
                registry=self.obs.registry if self.obs.enabled
                else None,
                op="decrypt",
            )
        return [priv.raw_decrypt(c) for c in ciphertexts]

    def decrypt_many(
        self, encrypted: Sequence[EncryptedNumber]
    ) -> list[int]:
        for c in encrypted:
            if c.public_key.n != self.public_key.n:
                raise KeyMismatchError(
                    "ciphertext was produced under a different public key"
                )
        return self.raw_decrypt_many([c.ciphertext for c in encrypted])

    # -- linear algebra -------------------------------------------------

    def scalar_mul_many(self, ciphertexts: Sequence[int],
                        weights: Sequence[int]) -> list[int]:
        """Element-wise ``c_i^{w_i} mod n^2`` (one column each)."""
        if len(ciphertexts) != len(weights):
            raise CryptoError("scalar_mul_many length mismatch")
        rows = [[w if i == j else 0 for j, w in enumerate(weights)]
                for i in range(len(weights))]
        # Element-wise is the diagonal matvec; reuse the kernel without
        # building the dense diagonal when run inline.
        n_sq = self.public_key.n_squared
        powmod = self.backend.powmod
        invert = self.backend.invert
        out = []
        for c, w in zip(ciphertexts, weights):
            if w < 0:
                out.append(powmod(invert(c, n_sq), -w, n_sq))
            else:
                out.append(powmod(c, w, n_sq))
        return out

    def matvec(
        self,
        cells: Sequence[int],
        weights,
        bias: Sequence[int],
    ) -> list[int]:
        """Homomorphic ``y = W x + b`` over raw ciphertexts.

        Args:
            cells: input ciphertexts (length = in_dim).
            weights: integer matrix, shape (out_dim, in_dim); ndarray
                or nested sequences.
            bias: ciphertexts of the (already encrypted) bias,
                length = out_dim.

        Returns:
            raw output ciphertexts, length = out_dim.
        """
        rows = _int_rows(weights)
        cells = list(cells)
        bias = list(bias)
        if rows and len(rows[0]) != len(cells):
            raise CryptoError(
                f"weights row length {len(rows[0])} != input size "
                f"{len(cells)}"
            )
        if len(rows) != len(bias):
            raise CryptoError(
                f"weights rows {len(rows)} != bias size {len(bias)}"
            )
        n_sq = self.public_key.n_squared
        self._m_matvec_cells.observe(len(cells))
        executor = self._maybe_executor()
        if executor is not None and len(cells) >= self.dispatch_min_items:
            workers = executor._max_workers
            per = -(-len(cells) // workers)
            jobs = []
            for start in range(0, len(cells), per):
                stop = start + per
                jobs.append((
                    cells[start:stop],
                    [row[start:stop] for row in rows],
                    n_sq,
                    self.window_bits,
                    self.backend.name,
                ))
            if self.obs.enabled:
                registry = self.obs.registry
                registry.counter("paillier_dispatch_chunks",
                                 op="matvec").inc(len(jobs))
                size_histogram = registry.histogram(
                    "paillier_dispatch_chunk_items",
                    buckets=SIZE_BUCKETS, op="matvec",
                )
                for job in jobs:
                    size_histogram.observe(len(job[0]))
            partials = list(executor.map(_matvec_chunk, jobs))
            out = list(bias)
            for part in partials:
                out = [acc * v % n_sq for acc, v in zip(out, part)]
            return out
        # Power-cache decisions are only visible on the inline path
        # (worker processes would have to ship stats back); collect
        # them into counters when observability is on.
        stats = ({"columns_table": 0, "columns_plain": 0,
                  "tables_built": 0, "table_pows": 0, "plain_pows": 0,
                  "dedup_hits": 0}
                 if self.obs.enabled else None)
        partial = _matvec_partial(cells, rows, n_sq, self.window_bits,
                                  stats=stats, backend=self.backend)
        if stats is not None:
            registry = self.obs.registry
            for key, value in stats.items():
                if value:
                    registry.counter(f"paillier_power_cache_{key}") \
                        .inc(value)
        return [b * v % n_sq for b, v in zip(bias, partial)]

    # -- compression-aware paths ----------------------------------------

    def fc_matvec(
        self,
        cells: Sequence[int],
        weights=None,
        bias: Sequence[int] | None = None,
        *,
        plan: SparseMatvecPlan | None = None,
    ) -> list[int]:
        """Compression-aware ``y = W x + b`` for a fully-connected layer.

        Identical semantics to :meth:`matvec`, but evaluated through a
        :class:`~repro.crypto.sparse.SparseMatvecPlan`: zero weights
        are skipped outright (counted in
        ``paillier_compress_zero_skipped``), each distinct (ciphertext,
        cluster) pair is exponentiated once, and fixed-base tables
        persist across calls in the engine's bounded
        :class:`PowerCache`.  Pass a prebuilt ``plan`` to skip the
        per-call index build (the production path builds one per layer
        at rewrite time); otherwise one is derived from ``weights``.
        Bit-identical to :meth:`matvec` on the surviving weights.
        """
        return self._compressed_matvec(cells, weights, bias, plan,
                                       op="fc_matvec")

    def conv_im2col(
        self,
        cells: Sequence[int],
        weights=None,
        bias: Sequence[int] | None = None,
        *,
        plan: SparseMatvecPlan | None = None,
    ) -> list[int]:
        """Compression-aware convolution over an im2col weight matrix.

        The matrix rows are output positions and the columns im2col
        patches, exactly as :func:`repro.scaling.fixed_point
        ._conv_as_matrix` lays them out.  Convolutions benefit twice:
        the same kernel weight recurs across every output position
        (cluster dedup) and pruned kernels zero whole diagonals
        (sparsity).  Same engine semantics as :meth:`fc_matvec`.
        """
        return self._compressed_matvec(cells, weights, bias, plan,
                                       op="conv_im2col")

    def _compressed_matvec(self, cells, weights, bias, plan, op):
        cells = list(cells)
        bias = list(bias) if bias is not None else []
        if plan is None:
            if weights is None:
                raise CryptoError(
                    "compressed matvec needs weights or a prebuilt plan"
                )
            plan = SparseMatvecPlan.from_dense(weights)
        if plan.in_dim != len(cells):
            raise CryptoError(
                f"plan input size {plan.in_dim} != cells {len(cells)}"
            )
        if plan.out_dim != len(bias):
            raise CryptoError(
                f"plan output size {plan.out_dim} != bias {len(bias)}"
            )
        n_sq = self.public_key.n_squared
        self._m_matvec_cells.observe(len(cells))
        self._m_compress_ops[op].inc()
        skipped = plan.total - plan.nnz
        if skipped:
            self._m_zero_skipped.inc(skipped)
        columns = [(cells[i], groups) for i, groups in plan.columns]
        executor = self._maybe_executor()
        if executor is not None \
                and len(columns) >= self.dispatch_min_items:
            # Worker processes cannot share the engine's power cache;
            # each chunk builds (and drops) its own tables.
            workers = executor._max_workers
            per = -(-len(columns) // workers)
            jobs = [
                (columns[start:start + per], plan.out_dim, n_sq,
                 self.window_bits, self.backend.name)
                for start in range(0, len(columns), per)
            ]
            if self.obs.enabled:
                registry = self.obs.registry
                registry.counter("paillier_dispatch_chunks",
                                 op=op).inc(len(jobs))
                size_histogram = registry.histogram(
                    "paillier_dispatch_chunk_items",
                    buckets=SIZE_BUCKETS, op=op,
                )
                for job in jobs:
                    size_histogram.observe(len(job[0]))
            partials = list(executor.map(_sparse_chunk, jobs))
            modulus = self.backend.wrap(n_sq)
            out = list(bias)
            for part in partials:
                out = [int(acc * v % modulus)
                       for acc, v in zip(out, part)]
            return out
        stats = ({"columns_table": 0, "columns_plain": 0,
                  "tables_built": 0, "table_pows": 0, "plain_pows": 0,
                  "reuse_mults": 0}
                 if self.obs.enabled else None)
        partial = _sparse_partial(
            columns, plan.out_dim, n_sq, self.window_bits,
            backend=self.backend, cache=self.power_cache, stats=stats,
        )
        if stats is not None:
            registry = self.obs.registry
            for key, value in stats.items():
                if value:
                    registry.counter(f"paillier_power_cache_{key}") \
                        .inc(value)
        modulus = self.backend.wrap(n_sq)
        return [int(b * v % modulus) for b, v in zip(bias, partial)]

    def reset_power_cache(self) -> None:
        """Drop all cross-call fixed-base tables (frees their memory
        and zeroes the ``paillier_power_cache_entries`` gauge)."""
        self.power_cache.reset()

    # -- homomorphic addition -------------------------------------------

    def add_dispatch(self, count: int) -> bool:
        """Whether :meth:`add_many` would process-dispatch ``count``
        adds.  An add is one modular multiply — far below the pow-bound
        work ``dispatch_min_items`` was calibrated against — so the
        break-even batch is ``dispatch_min_items *``
        :data:`ADD_DISPATCH_FACTOR` (1 under ``force_parallel``)."""
        if self.effective_workers <= 1:
            return False
        if self.dispatch_min_items <= 1:
            return count >= 1
        return count >= self.dispatch_min_items * ADD_DISPATCH_FACTOR

    def add_many(self, lefts: Sequence[int],
                 rights: Sequence[int]) -> list[int]:
        """Pairwise homomorphic addition of raw ciphertexts
        (``E(a) * E(b) = E(a + b)``), process-dispatched only above
        the :meth:`add_dispatch` break-even."""
        if len(lefts) != len(rights):
            raise CryptoError("add_many length mismatch")
        n_sq = self.public_key.n_squared
        if self.add_dispatch(len(lefts)):
            executor = self._maybe_executor()
            if executor is not None:
                pairs = list(zip(lefts, rights))
                return _run_chunked(
                    executor, _mulmod_chunk, pairs,
                    (n_sq, self.backend.name),
                    registry=self.obs.registry if self.obs.enabled
                    else None,
                    op="add",
                )
        modulus = self.backend.wrap(n_sq)
        return [int(a * b % modulus)
                for a, b in zip(lefts, rights)]

    # -- lane-packed fast paths -----------------------------------------

    def add_plain_many(self, ciphertexts: Sequence[int],
                       residues: Sequence[int]) -> list[int]:
        """Homomorphically add a Z_n residue to each raw ciphertext.

        ``E(m) * (1 + n*r) = E(m + r)`` — one modular multiply per
        ciphertext, no blinding needed (the input's randomness already
        blinds the product).  This is the packed paths' rebias
        primitive, but works on any raw ciphertexts.
        """
        if len(ciphertexts) != len(residues):
            raise CryptoError("add_plain_many length mismatch")
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        return [
            c * (1 + n * (r % n)) % n_sq
            for c, r in zip(ciphertexts, residues)
        ]

    def encrypt_many_packed(
        self,
        batches: Sequence[Sequence[int]],
        packer: LanePacker,
        rng: random.Random | None = None,
    ) -> List[EncryptedNumber]:
        """Encrypt lane-packed batches: one ciphertext per position.

        ``batches[i]`` holds the signed per-lane (batch-axis) values of
        tensor position ``i``; each becomes one ciphertext carrying all
        of them.  Blinding factors come from the pool (or ``rng``)
        exactly as in :meth:`encrypt_many` — B lanes share one factor.
        """
        if packer.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "packer was built for a different public key"
            )
        residues = []
        for values in batches:
            values = list(values)
            self._m_packed_lanes.observe(len(values))
            residues.append(packer.pack(values))
        raw = self.raw_encrypt_many(residues, rng)
        self._m_packed_encrypt.inc(len(raw))
        key = self.public_key
        return [EncryptedNumber(key, c) for c in raw]

    def decrypt_many_packed(
        self,
        encrypted: Sequence[EncryptedNumber],
        packer: LanePacker,
        count: int | None = None,
        lane_offset: int | None = None,
    ) -> list[list[int]]:
        """Decrypt packed ciphertexts and unpack each into lane values.

        One CRT decryption serves all B lanes of a position.  Pass the
        ``lane_offset`` the ciphertexts currently carry if they are not
        at the canonical offset (see :class:`LanePacker`).
        """
        residues = self.decrypt_many(encrypted)
        self._m_packed_decrypt.inc(len(residues))
        return [packer.unpack(r, count=count, lane_offset=lane_offset)
                for r in residues]

    def fc_matvec_packed(
        self,
        cells: Sequence[int],
        weights,
        bias: Sequence[int],
        packer: LanePacker,
        *,
        input_offset: int | None = None,
        bias_offset: int | None = None,
        plan: SparseMatvecPlan | None = None,
    ) -> list[int]:
        """Packed homomorphic ``y = W x + b``: one pow serves B lanes.

        Reuses :meth:`matvec` wholesale (process dispatch, power
        tables, weight dedup), then repairs the lane offsets: row ``j``
        of the raw product carries each lane at ``t_j + input_offset *
        S_j + bias_offset`` where ``S_j`` is the signed row weight sum,
        so one plaintext add of :meth:`LanePacker.rebias_residue` per
        output cell brings every lane back to the canonical offset.
        Intermediate "virtually negative" lane states are exact mod n;
        only the final residue's lanes must be in range.

        Args:
            cells: raw packed input ciphertexts (length = in_dim) at
                per-lane offset ``input_offset`` (default: canonical).
            weights: integer matrix, shape (out_dim, in_dim).
            bias: raw packed ciphertexts of the bias (length =
                out_dim) at per-lane offset ``bias_offset`` (default:
                canonical).
            plan: optional sparse plan — routes the product through
                the compressed :meth:`fc_matvec` path (zero-skip,
                cluster dedup, power cache) and takes the row weight
                sums the rebias needs from the plan.  ``weights`` may
                then be ``None``.

        Returns:
            raw packed output ciphertexts at the canonical offset.
        """
        if packer.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "packer was built for a different public key"
            )
        if plan is not None:
            out = self.fc_matvec(cells, weights, bias, plan=plan)
            row_sums: Sequence[int] = plan.row_weight_sums
        else:
            rows = _int_rows(weights)
            out = self.matvec(cells, rows, bias)
            row_sums = [sum(row) for row in rows]
        in_off = packer.offset if input_offset is None else input_offset
        b_off = packer.offset if bias_offset is None else bias_offset
        target = packer.offset
        rebias = [
            packer.rebias_residue(target - (in_off * row_sum + b_off))
            for row_sum in row_sums
        ]
        out = self.add_plain_many(out, rebias)
        self._m_packed_matvec.inc(len(out))
        return out


def _int_rows(weights) -> list[list[int]]:
    """Normalize a weight matrix to a list of rows of Python ints."""
    arr = np.asarray(weights)
    if arr.ndim != 2:
        raise CryptoError(f"weights must be 2-D, got shape {arr.shape}")
    rows = arr.tolist()
    if arr.dtype == object:
        rows = [[int(w) for w in row] for row in rows]
    return rows


# ----------------------------------------------------------------------
# Default (sequential) engines, one per public key: existing scalar
# callers route through these and pick the batched kernels up for free.
# ----------------------------------------------------------------------

_default_engines: dict[int, PaillierEngine] = {}


def default_engine(public_key: PaillierPublicKey) -> PaillierEngine:
    """The shared sequential engine for a public key.

    ``workers`` comes from :data:`repro.config.DEFAULT_CONFIG` (0 by
    default, so no processes are spawned behind anyone's back); parties
    that want parallelism construct their own engine from their config.
    """
    engine = _default_engines.get(public_key.n)
    if engine is None:
        from ..config import DEFAULT_CONFIG

        engine = PaillierEngine(
            public_key,
            workers=DEFAULT_CONFIG.workers,
            pool_size=DEFAULT_CONFIG.blinding_pool_size,
            window_bits=DEFAULT_CONFIG.power_window_bits,
            dispatch_min_items=DEFAULT_CONFIG.dispatch_min_items,
            backend=DEFAULT_CONFIG.bigint_backend,
            power_cache_entries=DEFAULT_CONFIG.power_cache_entries,
        )
        _default_engines[public_key.n] = engine
    return engine
