"""Sparse, compression-aware matvec plans (the Popcorn direction).

A pruned-and-clustered layer gives the Paillier engine two structural
gifts:

* **Sparsity** — zero weights need no work at all: no exponentiation,
  no multiply, not even a scan.  A dense matvec kernel pays a Python
  loop iteration per (row, column) cell just to discover the zeros;
  at 70% sparsity that is 70% of the traversal wasted on every
  request.
* **Few distinct values** — weight clustering collapses a layer to k
  distinct scalars, so within one column (one input ciphertext) the
  same exponent recurs across many output rows.  Each distinct
  (ciphertext, cluster) pair costs exactly one modular exponentiation;
  every further use is a single modular multiply.

:class:`SparseMatvecPlan` precomputes both structures **once per
layer**: for every input column, the nonzero output rows grouped by
their (clustered) weight value.  The engine's ``fc_matvec`` /
``conv_im2col`` then iterate only nonzero (patch, weight) pairs, with
the per-cluster dedup already materialized — no per-call dense scans,
no per-call dictionaries.

The plan is pure structure: it holds no ciphertexts and no key
material, so one plan serves every request through a layer (and can be
built next to the model, shipped with the stage assignment, or derived
on the fly from a dense matrix).  Evaluation through a plan is
bit-identical to the dense engine path on the surviving weights —
modular products do not care about the order zeros were skipped in.

:meth:`SparseMatvecPlan.compression_stats` exports the density and
cluster structure as a :class:`repro.costs.CompressionStats`, which is
how the planner's cost model learns that a compressed layer is cheap
(:func:`repro.planner.profiling.profile_primitive_times`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..costs import CompressionStats
from ..errors import CryptoError

#: Type of one plan column: (input index, ((weight, (rows...)), ...)).
PlanColumn = Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]

#: Structural break-even gates for :func:`plan_if_worthwhile`.  A
#: compressed evaluation only clearly beats the dense matvec when a
#: real fraction of the cells vanish, or when cluster dedup removes at
#: least half the exponentiations; near break-even the dense path's
#: thread partitioning and simplicity win, and accidental small-int
#: weight collisions in an uncompressed model must not reroute it.
WORTHWHILE_MIN_SPARSITY = 0.25
WORTHWHILE_MAX_PAIR_RATIO = 0.5


def plan_if_worthwhile(weights) -> "SparseMatvecPlan | None":
    """A :class:`SparseMatvecPlan` for ``weights`` when its structure
    makes the compressed kernel the clear winner, else ``None``.

    This is the session-setup gate: :class:`~repro.protocol.roles
    .ModelProvider` calls it once per linear layer, so pruned or
    clustered models automatically run compressed everywhere a linear
    stage executes, while dense models keep the dense kernels (and
    their tensor partitioning) untouched.
    """
    plan = SparseMatvecPlan.from_dense(weights)
    if plan.nnz == 0:
        return plan
    if plan.sparsity >= WORTHWHILE_MIN_SPARSITY:
        return plan
    if plan.distinct_pairs <= WORTHWHILE_MAX_PAIR_RATIO * plan.nnz:
        return plan
    return None


class SparseMatvecPlan:
    """Per-layer sparse column index for compressed homomorphic matvecs.

    Attributes:
        in_dim, out_dim: dense shape of the underlying weight matrix.
        columns: nonzero columns only; each entry is ``(i, groups)``
            where ``groups`` is a tuple of ``(weight, rows)`` pairs —
            the distinct nonzero weights of column ``i`` (ascending)
            and the output rows using each.  Ascending weight order is
            part of the plan's deterministic identity: two plans built
            from equal matrices are equal structure.
        nnz: number of nonzero weight cells.
        distinct_values: number of distinct nonzero weight values in
            the whole matrix (== cluster count for a clustered layer).
        row_weight_sums: per-output-row sum of all weights (the packed
            path's rebias needs it; zeros contribute nothing, so the
            sparse sum equals the dense sum).
        max_weight_bits: bit length of the largest |weight|.
    """

    __slots__ = ("in_dim", "out_dim", "columns", "nnz",
                 "distinct_values", "distinct_pairs",
                 "row_weight_sums", "max_weight_bits")

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        columns: Sequence[PlanColumn],
        row_weight_sums: Sequence[int],
    ):
        if in_dim < 0 or out_dim < 0:
            raise CryptoError("plan dimensions must be non-negative")
        if len(row_weight_sums) != out_dim:
            raise CryptoError(
                f"row_weight_sums length {len(row_weight_sums)} != "
                f"out_dim {out_dim}"
            )
        values: set[int] = set()
        seen_columns: set[int] = set()
        nnz = 0
        pairs = 0
        max_abs = 0
        for i, groups in columns:
            if not 0 <= i < in_dim:
                raise CryptoError(f"plan column {i} out of range")
            if i in seen_columns:
                # A repeated column would silently apply that input
                # twice — reject it here, where a tampered wire plan
                # surfaces as a clean decode error.
                raise CryptoError(f"plan column {i} appears twice")
            seen_columns.add(i)
            for weight, rows in groups:
                if weight == 0:
                    raise CryptoError("plan must not contain zero weights")
                values.add(weight)
                pairs += 1
                nnz += len(rows)
                max_abs = max(max_abs, abs(weight))
                for j in rows:
                    if not 0 <= j < out_dim:
                        raise CryptoError(f"plan row {j} out of range")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.columns = tuple(
            (i, tuple((w, tuple(rows)) for w, rows in groups))
            for i, groups in columns
        )
        self.nnz = nnz
        self.distinct_values = len(values)
        #: Total distinct (column, weight) pairs == exponentiations the
        #: engine performs per evaluation of this plan.
        self.distinct_pairs = pairs
        self.row_weight_sums = tuple(int(s) for s in row_weight_sums)
        self.max_weight_bits = max_abs.bit_length()

    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, weights) -> "SparseMatvecPlan":
        """Build the plan from a dense integer matrix (ndarray or
        nested sequences; object dtype for arbitrary precision)."""
        arr = np.asarray(weights)
        if arr.ndim != 2:
            raise CryptoError(
                f"weights must be 2-D, got shape {arr.shape}"
            )
        rows = arr.tolist()
        if arr.dtype == object:
            rows = [[int(w) for w in row] for row in rows]
        out_dim = len(rows)
        in_dim = len(rows[0]) if rows else 0
        columns: list[PlanColumn] = []
        for i in range(in_dim):
            by_weight: dict[int, list[int]] = {}
            for j in range(out_dim):
                w = rows[j][i]
                if w:
                    by_weight.setdefault(w, []).append(j)
            if by_weight:
                groups = tuple(
                    (w, tuple(by_weight[w])) for w in sorted(by_weight)
                )
                columns.append((i, groups))
        row_sums = [sum(row) for row in rows]
        return cls(in_dim, out_dim, columns, row_sums)

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        """Dense cell count of the underlying matrix."""
        return self.in_dim * self.out_dim

    @property
    def density(self) -> float:
        """Fraction of nonzero cells (1.0 for a dense matrix)."""
        return self.nnz / self.total if self.total else 1.0

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    @property
    def distinct_per_column(self) -> float:
        """Mean distinct weights per *nonzero* column — the number of
        exponentiations one input ciphertext costs."""
        if not self.columns:
            return 0.0
        return self.distinct_pairs / len(self.columns)

    def compression_stats(self) -> CompressionStats:
        """Export the structure the planner cost model consumes."""
        return CompressionStats(
            density=self.density,
            clusters=self.distinct_values or None,
            distinct_per_column=self.distinct_per_column or None,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseMatvecPlan):
            return NotImplemented
        return (self.in_dim == other.in_dim
                and self.out_dim == other.out_dim
                and self.columns == other.columns)

    def __hash__(self) -> int:
        return hash((self.in_dim, self.out_dim, self.columns))

    def __repr__(self) -> str:
        return (
            f"SparseMatvecPlan(shape=({self.out_dim}, {self.in_dim}), "
            f"nnz={self.nnz}/{self.total}, "
            f"distinct_values={self.distinct_values})"
        )
