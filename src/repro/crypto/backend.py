"""Pluggable bigint backend: one seam for modular arithmetic.

Every ciphertext operation in this package bottoms out in three
primitives over arbitrary-precision integers — modular exponentiation,
modular inversion, and modular multiplication.  CPython's built-in
``pow`` is correct but leaves a large constant factor on the table
compared to GMP; the paper's C++ prototype uses GMP directly.  This
module abstracts the three primitives behind :class:`BigintBackend` so
the same engine code runs on:

* :class:`PythonBackend` — pure CPython ``pow`` / ``%``.  Always
  available, the reference implementation.
* :class:`Gmpy2Backend` — GMP via ``gmpy2`` when the package is
  importable.  Auto-detected at import; never required.

Both backends return plain Python ``int`` values and are **bit
identical** by construction (GMP computes the same residues), so
switching backends never changes a ciphertext, only how fast it is
produced.  The property tests assert the equivalence whenever gmpy2 is
installed.

Selection:

* :func:`resolve_backend` maps a name (``"auto"`` / ``"python"`` /
  ``"gmpy2"``) to a backend instance; ``"auto"`` prefers gmpy2.
* :func:`active_backend` / :func:`set_active_backend` hold the
  process-wide default used by the scalar reference path
  (:mod:`repro.crypto.paillier`, :mod:`repro.crypto.math_utils`).
* :class:`repro.crypto.engine.PaillierEngine` takes a per-engine
  ``backend`` argument, defaulting to the
  :attr:`repro.config.RuntimeConfig.bigint_backend` knob.

Hot loops additionally use :meth:`BigintBackend.wrap` to lift operands
into the backend's native representation once (``gmpy2.mpz`` keeps the
whole accumulation inside GMP; the Python backend's wrap is identity),
then run ordinary ``*``/``%``/``pow`` operators on the wrapped values.
"""

from __future__ import annotations

from ..errors import ConfigurationError, CryptoError

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI
    _gmpy2 = None

#: True when the gmpy2 backend can be offered.
HAVE_GMPY2 = _gmpy2 is not None

#: Names :func:`resolve_backend` accepts.
BACKEND_NAMES = ("auto", "python", "gmpy2")


class BigintBackend:
    """Abstract modular-arithmetic primitives (see module docstring)."""

    name: str = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` (exponent may be -1)."""
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        """Modular inverse; raises :class:`CryptoError` if none exists."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        """``a * b mod modulus``."""
        raise NotImplementedError

    def wrap(self, value: int):
        """Lift ``value`` into the backend's native integer type."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class PythonBackend(BigintBackend):
    """CPython's built-in arbitrary-precision integers (the reference)."""

    name = "python"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        try:
            return pow(base, exponent, modulus)
        except ValueError as exc:
            raise CryptoError(
                f"{base} is not invertible modulo {modulus}"
            ) from exc

    def invert(self, a: int, modulus: int) -> int:
        try:
            return pow(a, -1, modulus)
        except ValueError as exc:
            raise CryptoError(
                f"{a} is not invertible modulo {modulus}"
            ) from exc

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return a * b % modulus


class Gmpy2Backend(BigintBackend):
    """GMP-backed primitives via gmpy2 (bit-identical, much faster)."""

    name = "gmpy2"

    def __init__(self) -> None:
        if _gmpy2 is None:  # pragma: no cover - guarded by resolve
            raise ConfigurationError(
                "gmpy2 backend requested but gmpy2 is not importable"
            )

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        try:
            return int(_gmpy2.powmod(base, exponent, modulus))
        except (ZeroDivisionError, ValueError) as exc:
            raise CryptoError(
                f"{base} is not invertible modulo {modulus}"
            ) from exc

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(_gmpy2.invert(a, modulus))
        except ZeroDivisionError as exc:
            raise CryptoError(
                f"{a} is not invertible modulo {modulus}"
            ) from exc

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(_gmpy2.mpz(a) * b % modulus)

    def wrap(self, value: int):
        return _gmpy2.mpz(value)


_PYTHON = PythonBackend()
_GMPY2 = Gmpy2Backend() if HAVE_GMPY2 else None


def available_backends() -> tuple[str, ...]:
    """Concrete backend names usable in this interpreter."""
    return ("python", "gmpy2") if HAVE_GMPY2 else ("python",)


def resolve_backend(name: "str | BigintBackend" = "auto") -> BigintBackend:
    """Map a backend name (or pass an instance through) to a backend.

    ``"auto"`` prefers gmpy2 when importable and falls back to pure
    Python — the default everywhere, so installing gmpy2 is the only
    step needed to accelerate the whole package.

    Raises:
        ConfigurationError: unknown name, or ``"gmpy2"`` requested
            explicitly where gmpy2 is not installed.
    """
    if isinstance(name, BigintBackend):
        return name
    if name == "auto":
        return _GMPY2 if _GMPY2 is not None else _PYTHON
    if name == "python":
        return _PYTHON
    if name == "gmpy2":
        if _GMPY2 is None:
            raise ConfigurationError(
                "bigint backend 'gmpy2' requested but gmpy2 is not "
                "installed (use 'auto' to fall back silently)"
            )
        return _GMPY2
    raise ConfigurationError(
        f"unknown bigint backend {name!r}; expected one of "
        f"{BACKEND_NAMES}"
    )


_active: BigintBackend = resolve_backend("auto")


def active_backend() -> BigintBackend:
    """The process-wide default backend (scalar reference path)."""
    return _active


def set_active_backend(name: "str | BigintBackend") -> BigintBackend:
    """Replace the process-wide default; returns the new backend."""
    global _active
    _active = resolve_backend(name)
    return _active
