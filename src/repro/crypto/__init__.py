"""Cryptographic substrate: Paillier PHE, encodings, encrypted tensors.

The paper (Section III-B) protects linear operations with Paillier's
partially homomorphic encryption.  This subpackage implements the full
cryptosystem from scratch — key generation over probable primes, the
``g = n + 1`` encryption optimization, CRT-accelerated decryption — plus
the signed/fixed-point encodings needed to push neural-network values
through a cryptosystem that only understands residues mod ``n``, and a
tensor wrapper that lifts the homomorphic operations to whole arrays.
"""

from .math_utils import (
    crt_pair,
    generate_prime,
    invmod,
    is_probable_prime,
    lcm,
)
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from .encoding import (
    DEFAULT_GUARD_BITS,
    FixedPointEncoder,
    LanePacker,
    SignedEncoder,
)
from .backend import (
    BigintBackend,
    HAVE_GMPY2,
    available_backends,
    resolve_backend,
)
from .engine import (
    BlindingPool,
    PaillierEngine,
    PowerCache,
    PowerTable,
    default_engine,
)
from .sparse import SparseMatvecPlan
from .tensor import EncryptedTensor, PackedEncryptedTensor
from .serialize import (
    private_key_from_json,
    private_key_to_json,
    public_key_from_json,
    public_key_to_json,
    tensor_from_bytes,
    tensor_to_bytes,
)

__all__ = [
    "crt_pair",
    "generate_prime",
    "invmod",
    "is_probable_prime",
    "lcm",
    "EncryptedNumber",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
    "SignedEncoder",
    "FixedPointEncoder",
    "DEFAULT_GUARD_BITS",
    "LanePacker",
    "BigintBackend",
    "HAVE_GMPY2",
    "available_backends",
    "resolve_backend",
    "BlindingPool",
    "PaillierEngine",
    "PowerCache",
    "PowerTable",
    "SparseMatvecPlan",
    "default_engine",
    "EncryptedTensor",
    "PackedEncryptedTensor",
    "private_key_from_json",
    "private_key_to_json",
    "public_key_from_json",
    "public_key_to_json",
    "tensor_from_bytes",
    "tensor_to_bytes",
]
