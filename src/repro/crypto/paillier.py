"""Paillier's partially homomorphic cryptosystem (EUROCRYPT 1999).

This is the cryptosystem the paper uses for privacy-preserving linear
operations (Section III-B).  Supported homomorphisms:

* addition of two ciphertexts:        ``E(m1) * E(m2) = E(m1 + m2)``
* scalar multiplication by plaintext: ``E(m) ** w     = E(w * m)``

Implementation notes, matching standard practice (and the paper's GMP
prototype):

* ``g = n + 1`` so encryption needs no modular exponentiation for the
  message part: ``g^m = 1 + n*m (mod n^2)``.
* Decryption uses the Chinese Remainder Theorem over ``p^2`` and ``q^2``,
  roughly a 4x speedup over the textbook formula.
* Encryption is probabilistic (fresh random ``r`` per ciphertext), which
  is what makes the scheme semantically secure; re-encryption of the same
  plaintext yields a different ciphertext, a property the protocol tests
  rely on.
"""

from __future__ import annotations

import numbers
import random
from dataclasses import dataclass
from typing import Iterable, Tuple

from ..errors import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)
from .backend import active_backend
from .math_utils import invmod, keypair_primes, sample_coprime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus ``n`` (``g`` is fixed to ``n + 1``).

    Attributes:
        n: RSA-style modulus ``p * q``.
        key_size: bit length of ``n``.
    """

    n: int
    key_size: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        """Largest raw plaintext residue (``n - 1``)."""
        return self.n - 1

    def raw_encrypt(self, plaintext: int, rng: random.Random) -> int:
        """Encrypt a residue of Z_n into a ciphertext in Z_{n^2}.

        Args:
            plaintext: integer in ``[0, n)``.
            rng: randomness source for the blinding factor ``r``.

        Raises:
            EncryptionError: if the plaintext is out of range.
        """
        if not 0 <= plaintext < self.n:
            raise EncryptionError(
                f"plaintext {plaintext} out of range [0, n)"
            )
        n_sq = self.n_squared
        # g^m = (1 + n)^m = 1 + n*m (mod n^2) because (n)^2 = 0 (mod n^2).
        g_m = (1 + self.n * plaintext) % n_sq
        r = sample_coprime(self.n, rng)
        r_n = active_backend().powmod(r, self.n, n_sq)
        return (g_m * r_n) % n_sq

    def raw_add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: multiply ciphertexts mod ``n^2``."""
        return (c1 * c2) % self.n_squared

    def raw_scalar_mul(self, c: int, w: int) -> int:
        """Homomorphic scalar multiplication: ``c^w mod n^2``.

        Negative scalars are mapped through the ciphertext inverse,
        matching the signed encoding in :mod:`repro.crypto.encoding`.
        """
        if w < 0:
            c = invmod(c, self.n_squared)
            w = -w
        return active_backend().powmod(c, w, self.n_squared)

    def encrypt(self, plaintext: int, rng: random.Random) -> "EncryptedNumber":
        """Encrypt a residue and wrap it in an :class:`EncryptedNumber`."""
        return EncryptedNumber(self, self.raw_encrypt(plaintext, rng))

    def rerandomize(self, ciphertext: int, rng: random.Random) -> int:
        """Refresh a ciphertext's randomness without changing its
        plaintext: multiply by a fresh encryption of zero.  Makes
        ciphertexts unlinkable across rounds even when values repeat."""
        return self.raw_add(ciphertext, self.raw_encrypt(0, rng))


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key with the precomputed CRT constants.

    Attributes:
        public_key: the matching public key.
        p, q: prime factors of ``n``.
    """

    public_key: PaillierPublicKey
    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p * self.q != self.public_key.n:
            raise KeyGenerationError("p * q does not match the public modulus")
        object.__setattr__(self, "_p_squared", self.p * self.p)
        object.__setattr__(self, "_q_squared", self.q * self.q)
        object.__setattr__(self, "_q_inv_p", invmod(self.q, self.p))
        # h_p = L_p(g^{p-1} mod p^2)^{-1} mod p  with g = n + 1.
        object.__setattr__(
            self, "_h_p", self._h_function(self.p, self._p_squared)
        )
        object.__setattr__(
            self, "_h_q", self._h_function(self.q, self._q_squared)
        )

    def _h_function(self, prime: int, prime_squared: int) -> int:
        n = self.public_key.n
        g = n + 1
        u = pow(g, prime - 1, prime_squared)
        l_value = (u - 1) // prime
        return invmod(l_value % prime, prime)

    def raw_decrypt(self, ciphertext: int) -> int:
        """Decrypt a raw ciphertext to its residue in Z_n via CRT.

        Raises:
            DecryptionError: if the ciphertext is out of range.
        """
        n_sq = self.public_key.n_squared
        if not 0 < ciphertext < n_sq:
            raise DecryptionError(
                "ciphertext out of range (0, n^2)"
            )
        m_p = self._decrypt_mod_prime(ciphertext, self.p, self._p_squared,
                                      self._h_p)
        m_q = self._decrypt_mod_prime(ciphertext, self.q, self._q_squared,
                                      self._h_q)
        # Garner recombination of m mod p and m mod q into m mod n.
        h = ((m_p - m_q) * self._q_inv_p) % self.p
        return (m_q + self.q * h) % self.public_key.n

    def _decrypt_mod_prime(
        self, ciphertext: int, prime: int, prime_squared: int, h: int
    ) -> int:
        u = active_backend().powmod(ciphertext, prime - 1, prime_squared)
        l_value = (u - 1) // prime
        return (l_value * h) % prime

    def decrypt(self, encrypted: "EncryptedNumber") -> int:
        """Decrypt an :class:`EncryptedNumber` to its residue in Z_n."""
        if encrypted.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "ciphertext was produced under a different public key"
            )
        return self.raw_decrypt(encrypted.ciphertext)


class EncryptedNumber:
    """A Paillier ciphertext bound to its public key.

    Supports ``+`` between two ciphertexts (homomorphic addition) and
    ``*`` by a plaintext integer (homomorphic scalar multiplication), the
    exact operations Eq. (1)-(3) of the paper build linear layers from.
    """

    __slots__ = ("public_key", "ciphertext")

    def __init__(self, public_key: PaillierPublicKey, ciphertext: int):
        self.public_key = public_key
        self.ciphertext = ciphertext

    def __add__(self, other: "EncryptedNumber") -> "EncryptedNumber":
        if not isinstance(other, EncryptedNumber):
            return NotImplemented
        if other.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "cannot add ciphertexts under different keys"
            )
        return EncryptedNumber(
            self.public_key,
            self.public_key.raw_add(self.ciphertext, other.ciphertext),
        )

    def __mul__(self, scalar: int) -> "EncryptedNumber":
        # numbers.Integral rather than int so NumPy integer scalars
        # (np.int64 etc., which are not int subclasses) work too.
        if not isinstance(scalar, numbers.Integral):
            return NotImplemented
        return EncryptedNumber(
            self.public_key,
            self.public_key.raw_scalar_mul(self.ciphertext, int(scalar)),
        )

    __rmul__ = __mul__

    def rerandomized(self, rng: random.Random) -> "EncryptedNumber":
        """A fresh-randomness ciphertext of the same plaintext."""
        return EncryptedNumber(
            self.public_key,
            self.public_key.rerandomize(self.ciphertext, rng),
        )

    def __repr__(self) -> str:
        return (
            f"EncryptedNumber(key_size={self.public_key.key_size}, "
            f"ciphertext=0x{self.ciphertext:x})"
        )


def generate_keypair(
    key_size: int, rng: random.Random | None = None, seed: int | None = None
) -> Tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``key_size``-bit modulus.

    Args:
        key_size: modulus size in bits (the paper uses 2048).
        rng: randomness source; if omitted one is built from ``seed``.
        seed: seed for a fresh RNG when ``rng`` is omitted; a
            non-deterministic RNG is used if both are None.

    Raises:
        KeyGenerationError: if prime generation fails.
    """
    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    try:
        p, q = keypair_primes(key_size, rng)
    except Exception as exc:
        raise KeyGenerationError(str(exc)) from exc
    public = PaillierPublicKey(n=p * q, key_size=key_size)
    private = PaillierPrivateKey(public_key=public, p=p, q=q)
    return public, private


def encrypt_many(
    public_key: PaillierPublicKey,
    plaintexts: Iterable[int],
    rng: random.Random | None = None,
) -> list[EncryptedNumber]:
    """Encrypt an iterable of residues, preserving order.

    Routed through the shared :class:`repro.crypto.engine.PaillierEngine`
    for the public key: with ``rng`` the blinding factors are derived
    from it exactly as the scalar loop would (bit-identical output);
    without it they come from the engine's offline pool.
    """
    from .engine import default_engine

    return default_engine(public_key).encrypt_many(plaintexts, rng=rng)
